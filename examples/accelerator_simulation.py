"""Drive the VEDA accelerator model end to end.

Shows, on Llama-2 7B shapes:

1. the Fig. 6(a) timeline contrast (conventional vs element-serial),
2. the Fig. 8 (center) dataflow ablation,
3. the Fig. 8 (right) eviction speedups,
4. Table I (area/power) and the Table II end-to-end rows.

Run:  python examples/accelerator_simulation.py
"""

from repro.accel import (
    AcceleratorSimulator,
    ablation_configs,
    attention_timeline,
    veda_config,
)
from repro.config import llama2_7b_shapes
from repro.experiments import fig8_center, fig8_right, table1, table2
from repro.experiments.common import format_table


def render_timeline(segments, total, width=64):
    """ASCII Fig. 6(a): one lane per engine."""
    lanes = {"pe_array": [" "] * width, "sfu": [" "] * width}
    for seg in segments:
        start = int(seg.start / total * (width - 1))
        end = max(int(seg.end / total * (width - 1)), start + 1)
        char = "#" if seg.engine == "pe_array" else "~"
        for i in range(start, min(end, width)):
            lanes[seg.engine][i] = char
    for engine, lane in lanes.items():
        print(f"  {engine:9s} |{''.join(lane)}| ")


def main():
    print("=== Fig. 6(a): element-serial scheduling removes the stall ===")
    for label, hw in (
        ("conventional", veda_config(element_serial=False)),
        ("element-serial", veda_config()),
    ):
        segments, total = attention_timeline(512, 128, hw)
        print(f"{label}: attention op takes {total:.0f} cycles")
        render_timeline(segments, total)

    print("\n=== Fig. 8 (center): dataflow ablation ===")
    print(fig8_center.run().to_table())

    print("\n=== Fig. 8 (right): voting-eviction speedup ===")
    print(fig8_right.run().to_table())

    print("\n=== Table I: area/power ===")
    print(table1.run().to_table())

    print("\n=== Table II: comparison ===")
    t2 = table2.run()
    print(t2.to_table())
    print(format_table(t2.end_to_end, title="End-to-end vs RTX 4090"))

    print("\n=== Decode throughput vs KV budget (prompt 512, gen 256) ===")
    sim = AcceleratorSimulator(veda_config(), llama2_7b_shapes())
    for budget in (None, 256, 154, 102):
        tps = sim.tokens_per_second(512, 256, kv_budget=budget)
        label = "no eviction" if budget is None else f"budget {budget}"
        print(f"  {label:12s} {tps:6.2f} tokens/s")


if __name__ == "__main__":
    main()

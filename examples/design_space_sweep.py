"""Design-space exploration with the parametric hardware models.

Sweeps the architecture knobs the paper fixes — PE array size, on-chip
buffer capacity, HBM bandwidth, compression ratio — and reports decode
throughput, area, and power for each point.  This is the kind of study
the paper's parametric models enable beyond the published design point.

Run:  python examples/design_space_sweep.py
"""

from repro.accel import AcceleratorSimulator, AreaPowerModel, veda_config
from repro.config import llama2_7b_shapes
from repro.experiments.common import format_table


def sweep_pe_arrays(model):
    rows = []
    for arrays in (1, 2, 4, 8):
        hw = veda_config(pe_arrays=arrays)
        sim = AcceleratorSimulator(hw, model)
        ap = AreaPowerModel(hw)
        rows.append(
            {
                "pe_arrays": arrays,
                "MACs": hw.n_pe,
                "peak_GOPS": hw.peak_gops,
                "decode_tok/s": sim.tokens_per_second(512, 128, kv_budget=256),
                "prefill_GOPS": sim.achieved_gops(sim.prefill(512)),
                "area_mm2": ap.total_area_mm2(),
                "power_mW": ap.total_power_w() * 1e3,
            }
        )
    return rows


def sweep_bandwidth(model):
    rows = []
    for bw in (128.0, 256.0, 512.0, 1024.0):
        hw = veda_config(hbm_bandwidth_gb_s=bw)
        sim = AcceleratorSimulator(hw, model)
        rows.append(
            {
                "HBM_GB/s": bw,
                "decode_tok/s": sim.tokens_per_second(512, 128, kv_budget=256),
            }
        )
    return rows


def sweep_compression(model):
    sim = AcceleratorSimulator(veda_config(), model)
    baseline = sim.run(512, 512).mean_decode_attention()
    rows = []
    for ratio in (1.0, 0.5, 0.4, 0.3, 0.2, 0.1):
        budget = None if ratio >= 1.0 else int(512 * ratio)
        stats = sim.run(512, 512, kv_budget=budget)
        rows.append(
            {
                "kv_ratio": ratio,
                "attention_speedup": baseline / stats.mean_decode_attention(),
                "decode_tok/s": sim.tokens_per_second(512, 128, kv_budget=budget),
            }
        )
    return rows


def main():
    model = llama2_7b_shapes()
    print(format_table(sweep_pe_arrays(model), title="PE array scaling"))
    print()
    print(format_table(sweep_bandwidth(model), title="HBM bandwidth scaling"))
    print()
    print(format_table(sweep_compression(model), title="KV compression ratio"))
    print("\nTakeaway: decode is bandwidth-bound (PE scaling saturates), so "
          "KV eviction and bandwidth are the levers that move tokens/s — "
          "the premise of the paper's algorithm/dataflow co-design.")


if __name__ == "__main__":
    main()

"""Train a tiny Llama-style language model from scratch with repro.nn.

Demonstrates the full substrate without any cached checkpoints: corpus
generation, tokenization, book-aligned windowing, training with AdamW +
cosine schedule, and a before/after sample.

Run:  python examples/train_tiny_lm.py
"""

import numpy as np

from repro.config import TrainingConfig, tiny_config
from repro.core import FullCachePolicy, GenerationEngine
from repro.data import BookConfig, WordTokenizer, generate_corpus
from repro.data.datasets import book_aligned_windows
from repro.models import CachedTransformer, TransformerLM
from repro.training import Trainer


def main():
    print("Generating corpus...")
    book_config = BookConfig(n_characters=3, n_sentences=40, recall_probability=0.3)
    documents = generate_corpus(80, config=book_config, seed=3)
    tokenizer = WordTokenizer.from_corpus(documents)
    print(f"  {len(documents)} books, vocab {tokenizer.vocab_size}")

    config = tiny_config(vocab_size=tokenizer.vocab_size, max_seq_len=192)
    model = TransformerLM(config, seed=1)
    print(f"  model: {model.num_parameters():,} parameters")

    windows = book_aligned_windows(documents, tokenizer, seq_len=129)
    training = TrainingConfig(seq_len=128, batch_size=8, steps=150, lr=5e-3, seed=0)
    print(f"  {windows.shape[0]} training windows of length {windows.shape[1]}")

    print("\nTraining...")
    result = Trainer(model, training).fit(windows, log_every=30)
    print(f"loss {result.initial_loss:.3f} -> {result.final_loss:.3f} "
          f"in {result.seconds:.1f}s")

    print("\nSampling from the trained model:")
    inference = CachedTransformer.from_module(model)
    engine = GenerationEngine(inference, FullCachePolicy(config.n_layers))
    prompt = tokenizer.encode(documents[0])[:24]
    generated = engine.generate(prompt, max_new_tokens=30)
    print("  prompt :", tokenizer.decode(prompt, skip_specials=True))
    print("  output :", tokenizer.decode(generated.tokens, skip_specials=True))


if __name__ == "__main__":
    main()

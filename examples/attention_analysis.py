"""Attention-trace and FP16-datapath analysis on the trained model.

Validates the empirical premises of the paper's design on real traces:

1. attention sinks (why the voting algorithm reserves a prefix R),
2. attention sparsity (why evicting most of the KV cache is viable),
3. FP16 datapath error (why a 16-bit accelerator datapath is acceptable),
4. the algorithm/hardware co-simulation (joint quality + latency).

Run:  python examples/attention_analysis.py
"""

import numpy as np

from repro.core import GenerationEngine, VotingPolicy
from repro.core.analysis import attention_sparsity, row_entropy, sink_mass
from repro.cosim import CoSimulator
from repro.experiments.plotting import ascii_bar_chart
from repro.numerics.error_analysis import (
    gemv_error_sweep,
    model_logit_error,
    softmax_error,
)
from repro.zoo import default_corpus, get_pretrained


def main():
    model, tokenizer, _ = get_pretrained("small")
    _, documents = default_corpus("eval")
    tokens = tokenizer.encode(documents[0])[:256]

    cache = model.new_cache()
    prefill = model.prefill(tokens, cache)

    print("=== Attention sinks (motivates reserved length R) ===")
    masses = sink_mass(prefill.attention, sink_length=4)
    print(ascii_bar_chart(
        {f"layer {i}": m for i, m in enumerate(masses)},
        title="mean attention mass on the first 4 positions",
    ))

    print("\n=== Attention sparsity (motivates eviction itself) ===")
    fractions = attention_sparsity(prefill.attention, mass=0.95)
    entropies = row_entropy(prefill.attention)
    for layer, (frac, ent) in enumerate(zip(fractions, entropies)):
        print(f"  layer {layer}: {frac:5.1%} of entries cover 95% of mass "
              f"(row entropy {ent:.2f})")

    print("\n=== FP16 datapath error (the accelerator's number format) ===")
    for row in gemv_error_sweep(k_values=(64, 1024)):
        print(f"  GEMV k={row['k']:5d}: inner {row['inner_rel_error']:.2e}, "
              f"outer {row['outer_rel_error']:.2e} relative error")
    for row in softmax_error(lengths=(128, 1024)):
        print(f"  softmax l={row['length']:5d}: {row['max_abs_error']:.2e} "
              "max abs error")

    print("\n=== Co-simulation: quality and cycles from one run ===")
    # NOTE: full-precision weight comparison needs the training module;
    # get_pretrained returns the inference model, so we re-quantize its
    # own state — illustrated with the prefill logit check instead.
    engine = GenerationEngine(
        model, VotingPolicy(model.config.n_layers, reserved_length=8), budget=48
    )
    cosim = CoSimulator(engine)
    result = cosim.run(tokens[:128], 32)
    print(f"  generated {len(result.tokens)} tokens, "
          f"{result.num_evictions} evictions, cache peaked at "
          f"{max(result.cache_lengths)}")
    print(f"  mean attention cycles/step: {result.mean_attention_cycles:,.0f}")
    print(f"  total decode cycles: {result.total_decode_cycles:,.0f}")


if __name__ == "__main__":
    main()

"""Multi-replica serving fleet demo: prefix-affinity routing and
tensor-parallel cycle pricing.

Serves one shared multi-turn arrival stream on a two-replica
:class:`repro.serve.ServingFleet` under round-robin and prefix-affinity
placement.  Every request's tokens are asserted bit-identical to a
single engine serving the same stream — routing changes *where* a
request runs, never *what* it generates — so the hit-rate and makespan
differences between the rows are pure placement.

The second demo prices one replica's trace with the tensor-parallel
cycle model: ``tp=1`` is asserted cycle-identical to the single-device
co-simulator, and ``tp=4`` shows sharded GEMM cycles traded against
priced ring all-reduces on the modeled interconnect.

Run:  python examples/serving_fleet.py
"""

from dataclasses import replace

from repro.accel.config import veda_config
from repro.config import llama2_7b_shapes, tiny_config
from repro.experiments.common import format_table
from repro.experiments.serving import make_workload
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import ServingCoSimulator, ServingEngine, ServingFleet


def _engine_kwargs():
    return dict(max_batch_size=4, paged=True, block_size=4)


def placement_demo(model, workload):
    """Round-robin vs prefix-affinity on the same conversation stream."""
    print("=== placement policies: same stream, same tokens (asserted) ===")

    # Single-engine reference: the ground truth every fleet must match.
    solo = ServingEngine(model, **_engine_kwargs())
    reference = {h.request_id: h.result() for h in solo.play(workload)}

    rows = []
    for placement in ("round_robin", "prefix_affinity"):
        fleet = ServingFleet(
            model, replicas=2, placement=placement, **_engine_kwargs()
        )
        handles = fleet.play(workload)
        assert {h.request_id: h.result() for h in handles} == reference, (
            "placement must never change generated tokens"
        )
        report = fleet.report()
        rows.append(
            {
                "placement": placement,
                "rounds": report.total_rounds,
                "by_replica": "/".join(
                    str(t) for t in report.tokens_per_replica
                ),
                "imbalance": report.load_imbalance,
                "token_hit_rate": report.prefix_token_hit_rate,
            }
        )
        # Later turns of conversation req-0 land on the replica that
        # already holds its earlier turns only under affinity routing.
        placed = {
            rid: fleet.replica_of(rid)
            for rid in ("req-0", "req-0.t1", "req-0.t2")
        }
        print(f"  {placement:>16}: req-0 turns placed on replicas {placed}")

    print(format_table(rows, title="2 replicas, 3-turn conversations"))
    print(
        "\naffinity routing sends a conversation's later turns back to "
        "the replica whose radix trie holds its earlier turns, so the "
        "cross-fleet prefix hit rate rises "
        f"({rows[0]['token_hit_rate']:.3f} -> "
        f"{rows[1]['token_hit_rate']:.3f}) with no token change."
    )
    print()


def tensor_parallel_demo(model, workload):
    """Price one replica's trace at tp=1 (exact) and tp=4 (sharded)."""
    print("=== tensor-parallel pricing of one replica's trace ===")
    fleet = ServingFleet(model, replicas=1, **_engine_kwargs())
    fleet.play(workload)

    hw = veda_config()
    shapes = llama2_7b_shapes()
    single = ServingCoSimulator(
        scheduler=fleet.engines[0].scheduler, hw=hw, hw_model=shapes
    ).replay()
    rows = []
    for tp in (1, 2, 4):
        priced = fleet.cosim(hw=hw, hw_model=shapes, tp=tp)
        rows.append(
            {
                "tp": tp,
                "fleet_cycles": priced.fleet_cycles,
                "allreduce_cyc": priced.interconnect_cycles,
                "allreduce_mb": priced.interconnect_bytes / 2**20,
                "tokens/s": priced.tokens_per_second,
            }
        )
    assert rows[0]["fleet_cycles"] == single.total_cycles, (
        "tp=1 must be cycle-identical to the single-device co-simulator"
    )
    print(format_table(rows, title="Llama-2 7B shapes, VEDA hw config"))

    slow = replace(hw, interconnect_gb_s=hw.interconnect_gb_s / 8)
    cheap = fleet.cosim(hw=slow, hw_model=shapes, tp=4)
    print(
        "\ntp=1 matches the single-device cycle count exactly "
        f"({single.total_cycles:,.0f} cycles); tp=4 shards every GEMM but "
        f"pays {rows[2]['allreduce_mb']:.1f} MB of all-reduce traffic — "
        f"cut the interconnect 8x and the same trace takes "
        f"{cheap.fleet_cycles / rows[2]['fleet_cycles']:.2f}x the cycles."
    )


def main():
    model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    workload = make_workload(
        n_requests=6,
        turns=3,
        compression_ratio=None,
        vocab=model.config.vocab_size,
        seed=0,
    )
    placement_demo(model, workload)
    tensor_parallel_demo(model, workload)


if __name__ == "__main__":
    main()

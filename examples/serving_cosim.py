"""Serving-scale hardware co-simulation with phase-aware dataflow.

Serves a small multi-tenant workload through the continuous-batching
:class:`repro.serve.Scheduler` (dense and paged with a shared system
prompt), then replays the recorded per-round trace through the VEDA
accelerator cycle model on Llama-2 7B shapes:

1. per-round cycle counts and batched hardware tokens/s for the dense
   and the paged run (prefix-cache hits price fewer prefill rows);
2. the dataflow comparison — the flexible PE array reconfiguring per
   phase ("auto") vs pinning it to the tiled ("prefill") or streaming
   ("decode") mapping for the whole run;
3. the batch-size-1 anchor: a solo request served alone is priced
   cycle-identically to `repro.cosim.CoSimulator`.

Run:  python examples/serving_cosim.py
"""

import numpy as np

from repro.config import llama2_7b_shapes, tiny_config
from repro.core.engine import GenerationEngine, budget_from_ratio
from repro.core.policies import VotingPolicy
from repro.cosim import CoSimulator
from repro.experiments.common import format_table
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, Scheduler, ServingCoSimulator, compare_dataflows


def build_workload(model, rng, n_requests=6, shared_prefix=16):
    prefix = rng.integers(0, model.config.vocab_size, size=shared_prefix)
    requests = []
    for i in range(n_requests):
        unique = rng.integers(0, model.config.vocab_size, size=int(rng.integers(12, 32)))
        prompt = np.concatenate([prefix, unique])
        requests.append(
            Request(
                request_id=f"user-{i}",
                prompt=prompt,
                max_new_tokens=int(rng.integers(8, 16)),
                arrival_time=2 * i,
                seed=i,
                budget=budget_from_ratio(0.5, prompt.shape[0], minimum=8),
            )
        )
    return requests


def serve(model, requests, paged):
    scheduler = Scheduler(
        model,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=4,
        paged=paged,
        block_size=4,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


def main():
    model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    rng = np.random.default_rng(42)
    requests = build_workload(model, rng)
    shapes = llama2_7b_shapes()

    # ------------------------------------------------------------------
    # 1. Dense vs paged, priced on 7B shapes.
    # ------------------------------------------------------------------
    dense_sched, _ = serve(model, requests, paged=False)
    paged_sched, paged_report = serve(model, requests, paged=True)
    dense_hw = ServingCoSimulator(dense_sched, hw_model=shapes).replay()
    paged_hw = ServingCoSimulator(paged_sched, hw_model=shapes).replay()

    print(format_table(dense_hw.rounds, title="Per-round cycles (dense)"))
    print()
    rows = [
        {"run": "dense", **{k: v for k, v in dense_hw.summary().items() if k != "dataflow"}},
        {"run": "paged", **{k: v for k, v in paged_hw.summary().items() if k != "dataflow"}},
    ]
    print(format_table(rows, title="Dense vs paged on the accelerator"))
    print(
        f"\nPrefix sharing saved {paged_report.prefill_tokens_saved} prefill "
        f"rows -> {dense_hw.prefill_cycles - paged_hw.prefill_cycles:,.0f} "
        "prefill cycles; decode work identical "
        f"({paged_hw.decode_cycles == dense_hw.decode_cycles})."
    )

    # ------------------------------------------------------------------
    # 2. Dataflow flexibility on the mixed trace.
    # ------------------------------------------------------------------
    reports = compare_dataflows(dense_sched, hw_model=shapes)
    print()
    print(
        format_table(
            [r.summary() for r in reports.values()],
            title="PE-array mapping selection on the same trace",
        )
    )
    auto = reports["auto"].total_cycles
    print(
        f"\nFlexibility wins: pinned-prefill pays "
        f"{reports['prefill'].total_cycles / auto:.4f}x, pinned-decode "
        f"{reports['decode'].total_cycles / auto:.4f}x the flexible cycles."
    )

    # ------------------------------------------------------------------
    # 3. Batch-size-1 anchor against the solo co-simulator.
    # ------------------------------------------------------------------
    solo_request = requests[0]
    solo_sched = Scheduler(
        model,
        policy_factory=lambda: VotingPolicy(model.config.n_layers, reserved_length=4),
        max_batch_size=1,
    )
    solo_sched.submit(solo_request)
    solo_sched.run()
    serving_cycles = ServingCoSimulator(solo_sched, hw_model=shapes).replay()
    engine = GenerationEngine(
        model,
        VotingPolicy(model.config.n_layers, reserved_length=4),
        budget=solo_request.budget,
    )
    solo = CoSimulator(engine, hw_model=shapes).run(
        solo_request.prompt, solo_request.max_new_tokens, seed=solo_request.seed
    )
    print(
        f"\nBatch-1 anchor: serving decode cycles "
        f"{serving_cycles.decode_cycles:,.0f} == solo co-simulator "
        f"{solo.total_decode_cycles:,.0f} -> "
        f"{serving_cycles.decode_cycles == solo.total_decode_cycles}"
    )


if __name__ == "__main__":
    main()

"""Quickstart: generate text with voting-based KV cache eviction.

Loads the zoo's small trained language model (training it on first run),
then generates a continuation twice — once with the full KV cache and
once with the voting policy holding the cache at a quarter of the
context — and reports the cache trajectory and agreement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import FullCachePolicy, GenerationEngine, VotingPolicy
from repro.zoo import default_corpus, get_pretrained


def main():
    print("Loading the trained small LM (first run trains it)...")
    model, tokenizer, metadata = get_pretrained("small")
    print(f"  model: {metadata['name']}, final training loss "
          f"{metadata['final_loss']:.3f}")

    # A held-out book opening as the prompt.
    _, documents = default_corpus("eval")
    prompt = tokenizer.encode(documents[0])[:192]
    print(f"  prompt: {len(prompt)} tokens")
    print(" ", tokenizer.decode(prompt[:40], skip_specials=True), "…")

    n_layers = model.config.n_layers
    budget = 48

    full_engine = GenerationEngine(model, FullCachePolicy(n_layers))
    full = full_engine.generate(prompt, max_new_tokens=40)

    voting_engine = GenerationEngine(
        model, VotingPolicy(n_layers, reserved_length=8), budget=budget
    )
    compressed = voting_engine.generate(prompt, max_new_tokens=40)

    print(f"\nFull cache  (len {full.cache_lengths[-1]}):")
    print(" ", tokenizer.decode(full.tokens, skip_specials=True))
    print(f"\nVoting, budget {budget} (len {compressed.cache_lengths[-1]}, "
          f"{compressed.num_evictions} evictions):")
    print(" ", tokenizer.decode(compressed.tokens, skip_specials=True))

    agree = sum(a == b for a, b in zip(full.tokens, compressed.tokens))
    print(f"\nToken agreement under 4x cache compression: "
          f"{agree}/{len(full.tokens)}")
    print(f"Cache stayed <= {max(compressed.cache_lengths)} "
          f"(vs {max(full.cache_lengths)} uncompressed)")


if __name__ == "__main__":
    main()

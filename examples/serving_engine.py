"""Async serving engine demo: streaming submission, chunked prefill,
SLA-aware admission.

Drives :class:`repro.serve.ServingEngine` the way a server front-end
would: the loop is already running (``run_forever`` generator) when
requests stream in from a bursty arrival process, tokens are retrieved
incrementally through per-request handles as they are produced, and a
long "tail" prompt arrives mid-run to show chunked prefill interleaving
its admission with the live decode batch instead of stalling it.

The same workload is then served whole-prompt vs chunked and priced on
the accelerator cycle model: tokens are bit-identical, but chunking caps
the worst single-round cycle cost (the head-of-line prefill spike).

Run:  python examples/serving_engine.py
"""

import numpy as np

from repro.config import llama2_7b_shapes, tiny_config
from repro.core.engine import budget_from_ratio
from repro.experiments.common import format_table
from repro.experiments.serving import make_workload
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, ServingEngine


def streaming_demo(model):
    """Submit requests *while* the loop runs; stream tokens back."""
    print("=== streaming submission (chunked prefill, EDF admission) ===")
    engine = ServingEngine(
        model, admission="edf", prefill_chunk=8, max_batch_size=4
    )
    loop = engine.run_forever()
    rng = np.random.default_rng(7)

    # Two interactive requests with tight deadlines...
    handles = [
        engine.submit(
            Request(
                request_id=f"chat-{i}",
                prompt=rng.integers(0, model.config.vocab_size, size=12),
                max_new_tokens=6,
                deadline=engine.now + 30,
                seed=i,
            )
        )
        for i in range(2)
    ]
    for _ in range(3):
        next(loop)

    # ... then a long-prompt batch job lands mid-run.  Its prompt is
    # prefilled in 8-token chunks between the chat requests' decode
    # steps — no round ever carries the whole 96-row prompt.
    prompt_len = 96
    handles.append(
        engine.submit(
            Request(
                request_id="batch-job",
                prompt=rng.integers(0, model.config.vocab_size, size=prompt_len),
                max_new_tokens=8,
                budget=budget_from_ratio(0.5, prompt_len, minimum=8),
                priority=-1,
                seed=99,
            )
        )
    )
    streamed = {h.request_id: [] for h in handles}
    engine.close()
    for tick in loop:  # drain, collecting tokens as they appear
        for handle in handles:
            fresh = handle.new_tokens()
            if fresh:
                streamed[handle.request_id].extend(fresh)

    for handle in handles:
        assert streamed[handle.request_id] == handle.result()
        print(
            f"  {handle.request_id:>10}: {len(handle.result())} tokens "
            f"streamed, ttft={handle.ttft_rounds} rounds, "
            f"status={handle.status}, deadline_missed={handle.deadline_missed}"
        )
    report = engine.report()
    print(format_table([report.summary()], title="engine report"))
    print()


def chunking_demo(model):
    """Whole-prompt vs chunked prefill on a heavy-tailed workload."""
    print("=== chunked prefill vs whole-prompt, priced in cycles ===")
    workload = make_workload(
        n_requests=6,
        prompt_dist="lognormal",
        arrival="bursty",
        deadline_slack=2.0,
        vocab=model.config.vocab_size,
        seed=3,
    )
    rows = []
    tokens = {}
    for chunk in (None, 16):
        engine = ServingEngine(model, prefill_chunk=chunk, max_batch_size=4)
        handles = engine.play(workload)
        tokens[chunk] = {h.request_id: h.result() for h in handles}
        report = engine.report()
        hw = engine.cosim(hw_model=llama2_7b_shapes())
        rows.append(
            {
                "chunk": "whole" if chunk is None else chunk,
                "rounds": report.total_rounds,
                "tokens": report.total_tokens,
                "mean_ttft_rounds": report.mean_ttft,
                "miss_rate": report.deadline_miss_rate,
                "max_round_cyc": hw.max_round_cycles,
                "mean_ttft_cyc": hw.mean_ttft_cycles,
            }
        )
    assert tokens[None] == tokens[16], "chunking must never change tokens"
    print(format_table(rows, title="same workload, same tokens (asserted)"))
    print(
        "\nchunked prefill caps the worst round "
        f"({rows[0]['max_round_cyc']:,.0f} -> {rows[1]['max_round_cyc']:,.0f} "
        "cycles): long prompts no longer head-of-line-block the batch."
    )


def main():
    model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    streaming_demo(model)
    chunking_demo(model)


if __name__ == "__main__":
    main()

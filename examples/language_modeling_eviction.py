"""Language-modeling comparison of eviction policies (paper Fig. 8 left).

Sweeps cache budgets and reports perplexity for StreamingLLM, H2O, and
the voting policy — plus a *recall-token* breakdown that makes the
long-range mechanism visible: the synthetic books re-state facts bound
hundreds of tokens earlier, and a policy that evicts the binding pays on
exactly those tokens.

Run:  python examples/language_modeling_eviction.py
"""

import numpy as np

from repro.core import (
    FullCachePolicy,
    GenerationEngine,
    H2OPolicy,
    StreamingLLMPolicy,
    VotingPolicy,
)
from repro.experiments import fig8_left
from repro.zoo import default_corpus, get_pretrained


def recall_positions(tokenizer, token_ids):
    """Indices of the fact tokens in recall sentences."""
    words = [tokenizer.word(t) for t in token_ids]
    found = []
    for i in range(3, len(words)):
        if words[i - 3] == "saw" and words[i - 1] == "the":
            found.append(i)  # profession slot
        elif words[i - 2] == "stayed" and words[i - 1] == "in":
            found.append(i)  # city slot
        elif words[i - 2] == "kept" and words[i - 1] == "the":
            found.append(i)  # object slot
    return found


def recall_nll(engine, token_ids, positions, prefill_length):
    result = engine.perplexity(token_ids, prefill_length=prefill_length)
    nll = np.array(result.nll_per_token)
    picked = [nll[p - prefill_length] for p in positions if p > prefill_length]
    return float(np.mean(picked)), result.perplexity


def main():
    print("=== Fig. 8 (left) reproduction ===")
    result = fig8_left.run(n_windows=4)
    print(result.to_table())
    print(result.notes)

    print("\n=== Recall-token breakdown (budget 48, eval length 512) ===")
    model, tokenizer, _ = get_pretrained("small")
    _, documents = default_corpus("eval")
    token_ids = tokenizer.encode(documents[0])[:512]
    positions = recall_positions(tokenizer, token_ids)
    print(f"{len(positions)} recall tokens in the window")

    n_layers = model.config.n_layers
    budget, prefill = 48, 64
    policies = {
        "full cache": (FullCachePolicy(n_layers), None),
        "streaming": (StreamingLLMPolicy(n_layers, n_sinks=4), budget),
        "h2o": (H2OPolicy(n_layers, recent_window=budget // 4), budget),
        "voting": (VotingPolicy(n_layers, reserved_length=8), budget),
    }
    for name, (policy, policy_budget) in policies.items():
        engine = GenerationEngine(model, policy, budget=policy_budget)
        nll, ppl = recall_nll(engine, token_ids, positions, prefill)
        print(f"  {name:12s} recall NLL {nll:6.3f}   overall ppl {ppl:6.3f}")


if __name__ == "__main__":
    main()

"""Reproduce the paper's Fig. 2 analysis: three biases of accumulation-
based eviction, and how voting fixes them.

Part 1 uses a constructed 8-token attention matrix (the worked example);
part 2 replays *real* attention traces from the trained model through
both rules and reports how often they disagree.

Run:  python examples/voting_bias_analysis.py
"""

import numpy as np

from repro.core.stats import (
    accumulated_importance,
    criteria_spread,
    figure2_example,
    item_count_bias,
    outlier_contribution,
    vote_counts_from_rows,
)
from repro.zoo import default_corpus, get_pretrained


def part1_worked_example():
    print("=== Part 1: constructed example (paper Fig. 2) ===")
    ex = figure2_example()
    imp = ex["accumulated_importance"]
    counts = ex["vote_counts"]
    print("position             :", "  ".join(f"{i:5d}" for i in range(8)))
    print("item count (bias ①)  :", "  ".join(f"{c:5d}" for c in ex["item_counts"]))
    print("accumulated score    :", "  ".join(f"{v:5.2f}" for v in imp))
    print("vote counts          :", "  ".join(f"{c:5d}" for c in counts))
    print(f"accumulation evicts position {ex['accumulation_victim']} "
          "(the newest token — item-count bias)")
    print(f"voting evicts position {ex['voting_victim']} "
          "(the genuinely unimportant one)")
    print("row means (bias ②)   :",
          "  ".join(f"{v:5.2f}" for v in ex["row_means"]))
    print("outlier share (bias ③):",
          "  ".join(f"{v:5.2f}" for v in ex["outlier_fraction"]))


def part2_real_traces():
    print("\n=== Part 2: real attention traces from the trained model ===")
    model, tokenizer, _ = get_pretrained("small")
    _, documents = default_corpus("eval")
    token_ids = tokenizer.encode(documents[0])[:256]

    cache = model.new_cache()
    prefill = model.prefill(token_ids, cache)

    disagreements = 0
    for layer, attn in enumerate(prefill.attention):
        head_mean = attn.mean(axis=0)  # (L, L) causal
        imp = accumulated_importance(head_mean)
        votes = vote_counts_from_rows(head_mean, reserved_length=8)
        acc_victim = int(np.argmin(imp[8:]) + 8)
        vote_victim = int(np.argmax(votes[8:]) + 8)
        marker = "  <-- disagree" if acc_victim != vote_victim else ""
        print(f"  layer {layer}: accumulation evicts {acc_victim:4d}, "
              f"voting evicts {vote_victim:4d}{marker}")
        disagreements += acc_victim != vote_victim

    print(f"\npolicies disagree on {disagreements}/{len(prefill.attention)} "
          "layers — the biases are live in real traces")
    last_layer = prefill.attention[-1].mean(axis=0)
    spread = criteria_spread(last_layer)
    print(f"row-mean spread across the window (bias ②): "
          f"{spread.max():.3f} .. {spread.min():.4f}")
    outlier = outlier_contribution(last_layer)
    print(f"max single-row share of a column's importance (bias ③): "
          f"{outlier[8:].max():.2f}")


if __name__ == "__main__":
    part1_worked_example()
    part2_real_traces()

"""Serving simulation: continuous batching vs one-at-a-time generation.

Submits a burst of concurrent requests to the continuous-batching
:class:`repro.serve.Scheduler` (each request evicting from its own KV
cache via the voting policy), then replays every request alone through
``GenerationEngine.generate`` to show two things:

1. the batched path returns *exactly* the same tokens per request
   (batch-invariant decode — see ``repro.models.inference.batch_matmul``),
2. batching amortizes per-step work: fewer scheduler rounds and higher
   wall-clock tokens/s than the sequential replay.

Run:  python examples/serving_simulation.py
"""

import time

import numpy as np

from repro.config import tiny_config
from repro.core.engine import GenerationEngine, budget_from_ratio
from repro.core.policies import VotingPolicy
from repro.experiments.common import format_table
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, Scheduler


def main():
    model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    n_layers = model.config.n_layers
    rng = np.random.default_rng(42)

    # A burst of 6 concurrent requests plus 2 late arrivals.
    requests = []
    for i in range(8):
        prompt_len = int(rng.integers(16, 48))
        requests.append(
            Request(
                request_id=f"user-{i}",
                prompt=rng.integers(0, model.config.vocab_size, size=prompt_len),
                max_new_tokens=int(rng.integers(10, 24)),
                arrival_time=0 if i < 6 else 5 * (i - 5),
                seed=i,
                budget=budget_from_ratio(0.5, prompt_len, minimum=8),
            )
        )

    policy_factory = lambda: VotingPolicy(n_layers, reserved_length=4)

    print("=== continuous batching (max_batch=6) ===")
    scheduler = Scheduler(model, policy_factory=policy_factory, max_batch_size=6)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    print(format_table(report.requests, title="per-request timeline (rounds)"))
    print()
    print(format_table([report.summary()], title="aggregate"))

    print("\n=== sequential replay (one request at a time) ===")
    start = time.perf_counter()
    solo_tokens = {}
    for request in requests:
        engine = GenerationEngine(
            model, policy_factory(), budget=request.budget
        )
        result = engine.generate(
            request.prompt, request.max_new_tokens, seed=request.seed,
            eos=request.eos,
        )
        solo_tokens[request.request_id] = result.tokens
    sequential_wall = time.perf_counter() - start

    matches = sum(
        scheduler.tokens_for(rid) == tokens for rid, tokens in solo_tokens.items()
    )
    total = sum(len(t) for t in solo_tokens.values())
    print(f"sequential: {total} tokens in {sequential_wall:.3f}s "
          f"({total / sequential_wall:,.0f} tok/s)")
    print(f"batched:    {report.total_tokens} tokens in "
          f"{report.wall_seconds:.3f}s ({report.tokens_per_second:,.0f} tok/s, "
          f"{report.tokens_per_round:.2f} tok/round)")
    print(f"\nper-request token match (batched vs solo): {matches}/{len(requests)}")
    print(f"batched speedup: {sequential_wall / report.wall_seconds:.2f}x")


if __name__ == "__main__":
    main()

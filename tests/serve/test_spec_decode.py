"""Speculative decoding: rollback primitives, verify exactness, scheduler
bit-identity, resource conservation, report metrics, and co-sim pricing."""

import numpy as np
import pytest

from repro.accel.config import veda_config
from repro.config import llama2_7b_shapes, tiny_config
from repro.core.kv_cache import LayerKVCache
from repro.core.policies.h2o import H2OPolicy
from repro.core.policies.voting import VotingPolicy
from repro.experiments.serving import spec_draft_7b_shapes
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import (
    BlockPool,
    PagedLayerKVCache,
    Request,
    Scheduler,
    ServingCoSimulator,
)


def make_requests(rng, n=3, prompt_range=(10, 24), max_new_range=(5, 10), **kw):
    return [
        Request(
            request_id=f"r{i}",
            prompt=rng.integers(0, 64, size=int(rng.integers(*prompt_range))),
            max_new_tokens=int(rng.integers(*max_new_range)),
            seed=i,
            **kw,
        )
        for i in range(n)
    ]


def serve(model, requests, draft_model=None, spec_k=4, policy="voting", **kw):
    if policy == "voting":
        factory = lambda: VotingPolicy(model.config.n_layers, reserved_length=2)
    else:
        factory = lambda: H2OPolicy(model.config.n_layers, recent_window=4)
    scheduler = Scheduler(
        model,
        policy_factory=factory,
        max_batch_size=kw.pop("max_batch_size", 2),
        draft_model=draft_model,
        spec_k=spec_k,
        **kw,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


def assert_same_outcome(base_sched, spec_sched, requests):
    base = {s.request_id: s for s in base_sched.results()}
    spec = {s.request_id: s for s in spec_sched.results()}
    for request in requests:
        b, s = base[request.request_id], spec[request.request_id]
        assert s.tokens == b.tokens
        assert s.evictions == b.evictions
        assert s.cache_lengths == b.cache_lengths
        assert s.finish_reason == b.finish_reason


class TestTruncate:
    def test_dense_truncate_drops_only_the_tail(self, rng):
        cache = LayerKVCache(n_heads=2, head_dim=3, capacity=10)
        pairs = [
            (rng.normal(size=(2, 3)), rng.normal(size=(2, 3))) for _ in range(7)
        ]
        for position, (k, v) in enumerate(pairs):
            cache.append(k, v, position)
        keys_before = cache.keys[:, :4].copy()
        cache.truncate(4)
        assert cache.length == 4
        assert np.array_equal(cache.keys, keys_before)
        assert list(cache.positions) == [0, 1, 2, 3]
        # Re-append overwrites the stale suffix slot-by-slot.
        cache.append(*pairs[0], 4)
        assert cache.length == 5

    def test_dense_truncate_rejects_growth_and_negative(self):
        cache = LayerKVCache(n_heads=1, head_dim=2, capacity=4)
        cache.append(np.zeros((1, 2)), np.zeros((1, 2)), 0)
        with pytest.raises(ValueError):
            cache.truncate(2)
        with pytest.raises(ValueError):
            cache.truncate(-1)

    def test_paged_truncate_returns_tail_blocks_to_the_pool(self, rng):
        pool = BlockPool(n_heads=2, head_dim=3, block_size=4, num_blocks=8)
        cache = PagedLayerKVCache(pool, capacity=32)
        for position in range(10):  # 3 blocks
            cache.append(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), position)
        assert pool.num_used == 3
        cache.truncate(5)  # back to 2 blocks
        assert cache.length == 5
        assert pool.num_used == 2
        cache.truncate(0)
        assert pool.num_used == 0

    def test_paged_truncate_never_releases_a_shared_prefix(self, rng):
        pool = BlockPool(n_heads=2, head_dim=3, block_size=4, num_blocks=8)
        writer = PagedLayerKVCache(pool, capacity=32)
        for position in range(4):  # exactly one full block
            writer.append(
                rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), position
            )
        shared = list(writer._table)
        reader = PagedLayerKVCache(pool, capacity=32)
        reader.attach_blocks(shared, 4)
        for position in range(4, 9):  # provisional suffix on the reader
            reader.append(
                rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), position
            )
        used_before = pool.num_used
        reader.truncate(4)
        # The suffix blocks are gone; the shared block survives for both.
        assert pool.num_used < used_before
        assert np.array_equal(reader.keys, writer.keys)


class TestVerifyExactness:
    def test_verify_rows_bitwise_match_sequential_steps(self, tiny_inference, rng):
        prompt = rng.integers(0, 64, size=18)
        tokens = [int(t) for t in rng.integers(0, 64, size=5)]
        verify_cache = tiny_inference.new_cache()
        step_cache = tiny_inference.new_cache()
        tiny_inference.prefill(prompt, verify_cache)
        tiny_inference.prefill(prompt, step_cache)
        result = tiny_inference.verify(
            np.asarray(tokens), verify_cache, start_position=len(prompt)
        )
        for i, token in enumerate(tokens):
            step = tiny_inference.step(token, len(prompt) + i, step_cache)
            assert np.array_equal(result.logits[i], step.logits)
            for layer in range(tiny_inference.config.n_layers):
                assert np.array_equal(
                    result.attention[layer][i], step.attention[layer]
                )

    def test_rollback_restores_the_sequential_cache_exactly(
        self, tiny_inference, rng
    ):
        prompt = rng.integers(0, 64, size=12)
        tokens = [int(t) for t in rng.integers(0, 64, size=4)]
        accept = 2
        verify_cache = tiny_inference.new_cache()
        step_cache = tiny_inference.new_cache()
        tiny_inference.prefill(prompt, verify_cache)
        tiny_inference.prefill(prompt, step_cache)
        tiny_inference.verify(
            np.asarray(tokens), verify_cache, start_position=len(prompt)
        )
        verify_cache.truncate(len(prompt) + accept)
        for i in range(accept):
            tiny_inference.step(tokens[i], len(prompt) + i, step_cache)
        for layer in range(tiny_inference.config.n_layers):
            assert np.array_equal(
                verify_cache[layer].keys, step_cache[layer].keys
            )
            assert np.array_equal(
                verify_cache[layer].values, step_cache[layer].values
            )
            assert np.array_equal(
                verify_cache[layer].positions, step_cache[layer].positions
            )


class TestSchedulerBitIdentity:
    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("policy", ["voting", "h2o"])
    def test_tokens_and_eviction_logs_match_non_spec(
        self, tiny_inference, draft_inference, rng, paged, policy
    ):
        requests = make_requests(rng, n=4, budget=20)
        base_sched, _ = serve(
            tiny_inference, requests, policy=policy, paged=paged, block_size=4
        )
        spec_sched, report = serve(
            tiny_inference,
            requests,
            draft_model=draft_inference,
            policy=policy,
            paged=paged,
            block_size=4,
        )
        assert report.verify_passes > 0
        assert_same_outcome(base_sched, spec_sched, requests)

    def test_self_draft_accepts_everything(self, tiny_inference, rng):
        requests = make_requests(rng, n=2)
        base_sched, _ = serve(tiny_inference, requests)
        spec_sched, report = serve(
            tiny_inference, requests, draft_model=tiny_inference
        )
        assert report.accept_rate == 1.0
        assert report.tokens_per_target_pass > 1.0
        assert_same_outcome(base_sched, spec_sched, requests)

    def test_eos_inside_the_verify_window_clips_it(self, tiny_inference, rng):
        probe = make_requests(rng, n=1, max_new_range=(8, 9))[0]
        base_sched, _ = serve(tiny_inference, [probe])
        tokens = base_sched.tokens_for("r0")
        eos = tokens[4]  # retire mid-trajectory, mid-window under spec
        expected = tokens[: tokens.index(eos) + 1]
        requests = [
            Request("r0", probe.prompt, max_new_tokens=8, seed=0, eos=eos)
        ]
        base_sched, _ = serve(tiny_inference, requests)
        spec_sched, _ = serve(
            tiny_inference, requests, draft_model=tiny_inference
        )
        assert base_sched.tokens_for("r0") == expected
        assert_same_outcome(base_sched, spec_sched, requests)
        (state,) = spec_sched.results()
        assert state.finish_reason == "eos"

    def test_length_cap_inside_the_verify_window_clips_it(
        self, tiny_inference, rng
    ):
        prompt = rng.integers(0, 64, size=14)
        requests = [Request("r0", prompt, max_new_tokens=3, seed=0)]
        base_sched, _ = serve(tiny_inference, requests)
        spec_sched, report = serve(
            tiny_inference, requests, draft_model=tiny_inference, spec_k=4
        )
        assert_same_outcome(base_sched, spec_sched, requests)
        (state,) = spec_sched.results()
        assert state.finish_reason == "length"
        # The window was clipped to the remaining token budget.
        assert 0 < report.spec_proposed < 4

    def test_tight_budget_falls_back_to_plain_decode(self, tiny_inference, rng):
        # prior + k + 1 > budget from the first decode on: never speculates.
        requests = make_requests(rng, n=2, prompt_range=(16, 20), budget=12)
        base_sched, _ = serve(tiny_inference, requests)
        spec_sched, report = serve(
            tiny_inference, requests, draft_model=tiny_inference, spec_k=8
        )
        assert report.verify_passes == 0
        assert report.accept_rate == 0.0
        assert_same_outcome(base_sched, spec_sched, requests)


class TestResourceConservation:
    def test_paged_run_returns_every_block(self, tiny_inference, draft_inference, rng):
        requests = make_requests(rng, n=4)
        scheduler, report = serve(
            tiny_inference,
            requests,
            draft_model=draft_inference,
            paged=True,
            block_size=4,
            prefix_caching=False,
        )
        assert report.verify_passes > 0
        assert scheduler.block_pool.num_used == 0

    def test_finish_inside_window_frees_provisional_blocks(
        self, tiny_inference, rng
    ):
        prompt = rng.integers(0, 64, size=10)
        requests = [Request("r0", prompt, max_new_tokens=3, seed=0)]
        scheduler, _ = serve(
            tiny_inference,
            requests,
            draft_model=tiny_inference,
            spec_k=4,
            paged=True,
            block_size=4,
            prefix_caching=False,
        )
        (state,) = scheduler.results()
        assert state.finish_reason == "length"
        assert scheduler.block_pool.num_used == 0


class TestReportMetrics:
    def test_spec_counters_and_summary(self, tiny_inference, rng):
        requests = make_requests(rng, n=3)
        _, report = serve(tiny_inference, requests, draft_model=tiny_inference)
        assert report.spec_accepted == report.spec_proposed > 0
        assert report.spec_tokens >= report.spec_accepted
        assert (
            report.tokens_per_target_pass
            == report.spec_tokens / report.verify_passes
        )
        summary = report.summary()
        assert summary["verify_passes"] == report.verify_passes
        assert "accept_rate" in summary

    def test_non_spec_report_has_zeroed_spec_fields(self, tiny_inference, rng):
        requests = make_requests(rng, n=2)
        _, report = serve(tiny_inference, requests)
        assert report.verify_passes == 0
        assert report.accept_rate == 0.0
        assert report.tokens_per_target_pass == 0.0
        assert "verify_passes" not in report.summary()


class TestSchedulerValidation:
    def test_spec_requires_greedy_sampler(self, tiny_inference):
        def sampler(logits, rng):
            return int(np.argmax(logits))

        with pytest.raises(ValueError, match="greedy"):
            Scheduler(
                tiny_inference,
                policy_factory=lambda: VotingPolicy(2, reserved_length=2),
                draft_model=tiny_inference,
                sampler=sampler,
            )

    def test_spec_requires_matching_vocab(self, tiny_inference):
        other = CachedTransformer.from_module(
            TransformerLM(tiny_config(vocab_size=32), seed=0)
        )
        with pytest.raises(ValueError, match="vocab"):
            Scheduler(
                tiny_inference,
                policy_factory=lambda: VotingPolicy(2, reserved_length=2),
                draft_model=other,
            )


class TestCoSimSpecPricing:
    def replay(self, scheduler, **kw):
        return ServingCoSimulator(
            scheduler,
            hw=veda_config(hbm_bandwidth_gb_s=32.0),
            hw_model=llama2_7b_shapes(),
            **kw,
        ).replay()

    def test_spec_trace_prices_verifies_and_draft_work(
        self, tiny_inference, draft_inference, rng
    ):
        requests = make_requests(rng, n=3)
        scheduler, report = serve(
            tiny_inference, requests, draft_model=draft_inference
        )
        hw_report = self.replay(scheduler, hw_draft_model=spec_draft_7b_shapes())
        assert hw_report.verify_passes == report.verify_passes > 0
        assert hw_report.spec_proposed == report.spec_proposed
        assert hw_report.spec_accepted == report.spec_accepted
        assert hw_report.accept_rate == report.accept_rate
        assert hw_report.draft_cycles > 0
        assert hw_report.total_tokens == report.total_tokens
        summary = hw_report.summary()
        assert summary["verify_passes"] == report.verify_passes
        assert "tokens/pass" in summary

    def test_spec_trace_without_draft_shapes_is_rejected(
        self, tiny_inference, draft_inference, rng
    ):
        requests = make_requests(rng, n=2)
        scheduler, _ = serve(
            tiny_inference, requests, draft_model=draft_inference
        )
        # A bare-trace replay has no scheduler to borrow draft shapes
        # from, so the guard fires.
        with pytest.raises(ValueError, match="draft"):
            ServingCoSimulator(
                hw=veda_config(), hw_model=llama2_7b_shapes()
            ).replay(scheduler.trace)

    def test_full_acceptance_beats_baseline_on_starved_hbm(
        self, tiny_inference, rng
    ):
        """The headline mechanism: at a weight-fetch-bound operating
        point, amortizing the round's weight fetch over k+1 verify rows
        makes the spec trace strictly cheaper per token."""
        requests = make_requests(rng, n=3, max_new_range=(16, 17))
        base_sched, base_report = serve(
            tiny_inference, requests, max_batch_size=4
        )
        spec_sched, spec_report = serve(
            tiny_inference,
            requests,
            draft_model=tiny_inference,
            spec_k=4,
            max_batch_size=4,
        )
        assert spec_report.total_tokens == base_report.total_tokens
        base_hw = self.replay(base_sched)
        spec_hw = self.replay(spec_sched, hw_draft_model=spec_draft_7b_shapes())
        assert spec_hw.total_tokens == base_hw.total_tokens
        assert spec_hw.tokens_per_second > 1.2 * base_hw.tokens_per_second

    def test_misfiled_dead_flags_are_rejected(self, tiny_inference, rng):
        requests = make_requests(rng, n=2, max_new_range=(4, 5))
        scheduler, _ = serve(tiny_inference, requests)
        live = next(
            e for record in scheduler.trace for e in record.decodes
        )
        live.dead = True
        with pytest.raises(ValueError, match="misfiled"):
            self.replay(scheduler)
        live.dead = False
        dead = next(
            e for record in scheduler.trace for e in record.dead_steps
        )
        dead.dead = False
        with pytest.raises(ValueError, match="misfiled"):
            self.replay(scheduler)

"""Unit tests for the paged KV storage layer (pool, caches, prefix cache)."""

import numpy as np
import pytest

from repro.core.kv_cache import LayerKVCache
from repro.serve.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    PagedLayerKVCache,
)
from repro.serve.prefix_cache import PrefixCache


@pytest.fixture()
def pool():
    return BlockPool(n_heads=2, head_dim=3, block_size=4, num_blocks=16)


def fill(cache, n, rng, start=0):
    """Append n random kv entries; returns what was appended."""
    keys = rng.normal(size=(2, n, 3))
    values = rng.normal(size=(2, n, 3))
    positions = np.arange(start, start + n)
    cache.append_block(keys, values, positions)
    return keys, values, positions


class TestBlockPool:
    def test_allocate_release_roundtrip(self, pool):
        assert pool.num_free == 16
        a = pool.allocate()
        b = pool.allocate()
        assert a != b
        assert pool.num_used == 2
        assert pool.refcount(a) == 1
        pool.release(a)
        pool.release(b)
        assert pool.num_free == 16

    def test_refcounting(self, pool):
        block = pool.allocate()
        pool.retain(block)
        assert pool.refcount(block) == 2
        assert pool.release(block) == 1
        assert pool.num_used == 1  # still held
        assert pool.release(block) == 0
        assert pool.num_free == 16

    def test_release_of_free_block_rejected(self, pool):
        block = pool.allocate()
        pool.release(block)
        with pytest.raises(ValueError):
            pool.release(block)
        with pytest.raises(ValueError):
            pool.retain(block)

    def test_fixed_pool_exhaustion(self):
        pool = BlockPool(1, 2, 2, num_blocks=3)
        for _ in range(3):
            pool.allocate()
        with pytest.raises(BlockPoolExhausted):
            pool.allocate()

    def test_growable_pool_grows(self):
        pool = BlockPool(1, 2, 2)
        seen = {pool.allocate() for _ in range(100)}
        assert len(seen) == 100
        assert pool.num_blocks >= 100
        assert pool.peak_in_use == 100

    def test_reclaimer_called_under_pressure(self):
        pool = BlockPool(1, 2, 2, num_blocks=2)
        held = [pool.allocate(), pool.allocate()]

        def reclaimer(needed):
            pool.release(held.pop())
            return 1

        pool.reclaimer = reclaimer
        assert pool.allocate() is not None
        assert len(held) == 1

    def test_copy_block_copies_contents(self, pool):
        block = pool.allocate()
        pool.keys[block][:] = 7.0
        pool.positions[block][:] = 3
        clone = pool.copy_block(block)
        assert clone != block
        assert np.all(pool.keys[clone] == 7.0)
        assert np.all(pool.positions[clone] == 3)
        assert pool.cow_copies == 1


@pytest.mark.parametrize("block_size", [1, 3, 4, 16])
class TestPagedLayerKVCache:
    def test_matches_dense_views(self, block_size, rng):
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=40)
        dense = LayerKVCache(2, 3, capacity=40)
        keys, values, positions = fill(paged, 11, np.random.default_rng(0))
        dense.append_block(keys, values, positions)
        for single in range(3):
            k = rng.normal(size=(2, 3))
            v = rng.normal(size=(2, 3))
            paged.append(k, v, 11 + single)
            dense.append(k, v, 11 + single)
        np.testing.assert_array_equal(paged.keys, dense.keys)
        np.testing.assert_array_equal(paged.values, dense.values)
        np.testing.assert_array_equal(paged.positions, dense.positions)
        assert len(paged) == len(dense) == 14

    def test_evict_compacts_like_dense(self, block_size, rng):
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=40)
        dense = LayerKVCache(2, 3, capacity=40)
        keys, values, positions = fill(paged, 13, np.random.default_rng(1))
        dense.append_block(keys, values, positions)
        for index in (0, 5, 10, 3):
            assert paged.evict(index) == dense.evict(index)
            np.testing.assert_array_equal(paged.keys, dense.keys)
            np.testing.assert_array_equal(paged.values, dense.values)
            np.testing.assert_array_equal(paged.positions, dense.positions)

    def test_eviction_frees_tail_blocks(self, block_size, rng):
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=4 * block_size)
        fill(paged, 4 * block_size, np.random.default_rng(2))
        before = pool.num_used
        for _ in range(2 * block_size):
            paged.evict(0)
        assert pool.num_used == before - 2
        assert paged.num_blocks == 2

    def test_release_returns_everything(self, block_size, rng):
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=40)
        fill(paged, 9, np.random.default_rng(3))
        paged.release()
        assert pool.num_free == pool.num_blocks
        assert len(paged) == 0

    def test_overflow_raises(self, block_size, rng):
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=4)
        fill(paged, 4, np.random.default_rng(4))
        with pytest.raises(RuntimeError, match="overflow"):
            paged.append(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), 4)


class TestCopyOnWrite:
    def test_shared_block_is_copied_before_write(self, rng):
        pool = BlockPool(2, 3, 4)
        writer = PagedLayerKVCache(pool, capacity=40)
        fill(writer, 8, np.random.default_rng(5))  # two full blocks
        shared = writer.block_ids
        reader = PagedLayerKVCache(pool, capacity=40)
        reader.attach_blocks(shared, 8)
        snapshot_keys = reader.keys.copy()
        snapshot_positions = reader.positions.copy()

        writer.evict(1)  # compacts through both blocks -> CoW both
        assert pool.cow_copies >= 1
        assert writer.block_ids != shared
        np.testing.assert_array_equal(reader.keys, snapshot_keys)
        np.testing.assert_array_equal(reader.positions, snapshot_positions)

    def test_append_into_shared_partial_block_cows(self, rng):
        pool = BlockPool(2, 3, 4)
        writer = PagedLayerKVCache(pool, capacity=40)
        fill(writer, 6, np.random.default_rng(6))  # block 1 half full
        reader = PagedLayerKVCache(pool, capacity=40)
        # Simulate a fork: reader shares both blocks at length 6.
        for block in writer.block_ids:
            pool.retain(block)
            reader._table.append(block)
        reader.length = 6
        before = reader.keys.copy()
        writer.append(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), 6)
        np.testing.assert_array_equal(reader.keys, before)

    def test_attach_requires_empty_and_length_in_last_block(self, rng):
        pool = BlockPool(2, 3, 4)
        owner = PagedLayerKVCache(pool, capacity=40)
        fill(owner, 8, np.random.default_rng(7))
        cache = PagedLayerKVCache(pool, capacity=40)
        with pytest.raises(ValueError):
            cache.attach_blocks(owner.block_ids, 4)  # last block unused
        with pytest.raises(ValueError):
            cache.attach_blocks(owner.block_ids, 9)  # past the last block
        cache.attach_blocks(owner.block_ids, 8)
        with pytest.raises(RuntimeError):
            cache.attach_blocks(owner.block_ids, 8)  # non-empty

    def test_attach_partial_last_block_cows_on_first_append(self, rng):
        """A radix-trie tail hit adopts the divergent block mid-way: the
        adopter's first append lands at a non-zero offset and must CoW,
        leaving the resident rows bit-intact for other adopters."""
        pool = BlockPool(2, 3, 4)
        owner = PagedLayerKVCache(pool, capacity=40)
        fill(owner, 8, np.random.default_rng(7))
        before = owner.keys.copy()
        cache = PagedLayerKVCache(pool, capacity=40)
        cache.attach_blocks(owner.block_ids, 6)  # 1 full block + 2 rows
        assert cache.length == 6
        assert pool.refcount(owner.block_ids[1]) == 2
        copies = pool.cow_copies
        cache.append(rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), 6)
        assert pool.cow_copies == copies + 1
        np.testing.assert_array_equal(owner.keys, before)
        # Adopted rows below the write offset were carried into the copy.
        np.testing.assert_array_equal(cache.keys[:, :6], before[:, :6])


class TestPagedKVCache:
    def test_layer_independence_and_release(self, rng):
        pool = BlockPool(2, 3, 4)
        cache = PagedKVCache(pool, n_layers=3, capacity=20)
        assert cache.n_layers == 3
        for layer in cache:
            fill(layer, 5, np.random.default_rng(8))
        cache[0].evict(2)
        assert cache.lengths == [4, 5, 5]
        cache.release()
        assert pool.num_free == pool.num_blocks


class TestPrefixCache:
    def make_entry_blocks(self, pool, n_layers=2):
        blocks = [pool.allocate() for _ in range(n_layers)]
        return blocks

    def test_match_then_insert_roundtrip(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(11)  # 2 full blocks + 3 tail tokens
        miss = cache.match(prompt, policy_key="p")
        assert miss.nodes == [] and miss.shared_length == 0
        blocks0 = self.make_entry_blocks(pool)
        parent = cache.insert(miss.parent, prompt[:4], blocks0, None, pool)
        blocks1 = self.make_entry_blocks(pool)
        cache.insert(parent, prompt[4:8], blocks1, None, pool)
        assert all(pool.refcount(b) == 2 for b in blocks0 + blocks1)

        hit = cache.match(prompt, policy_key="p")
        assert [n.layer_block_ids for n in hit.nodes] == [blocks0, blocks1]
        assert hit.shared_length == 8
        assert cache.hit_rate == 0.5  # one miss, one hit

    def test_policy_key_partitions_tries(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(9)
        miss = cache.match(prompt, policy_key="a")
        cache.insert(miss.parent, prompt[:4], self.make_entry_blocks(pool), None, pool)
        assert cache.match(prompt, policy_key="b").shared_length == 0

    def test_last_token_never_shared(self):
        cache = PrefixCache(block_size=4)
        prompt = np.arange(8)  # exactly 2 blocks: only 1 fully eligible
        pool = BlockPool(2, 3, 4, num_blocks=32)
        miss = cache.match(prompt, policy_key="p")
        parent = cache.insert(
            miss.parent, prompt[:4], self.make_entry_blocks(pool), None, pool
        )
        cache.insert(parent, prompt[4:8], self.make_entry_blocks(pool), None, pool)
        hit = cache.match(prompt, policy_key="p")
        # The second block is resident but the last row must stay live:
        # it is adopted only partially (3 of 4 rows).
        assert len(hit.nodes) == 1
        assert hit.tail_length == 3
        assert hit.shared_length == 7

    def test_reclaim_drops_leaves_before_parents(self):
        """Reclaiming a parent would orphan its children (unmatchable yet
        still pinning blocks); chains must shed from the tip."""
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(9)
        miss = cache.match(prompt, policy_key="p")
        first = self.make_entry_blocks(pool)
        parent = cache.insert(miss.parent, prompt[:4], first, None, pool)
        second = self.make_entry_blocks(pool)
        cache.insert(parent, prompt[4:8], second, None, pool)
        for block in first + second:
            pool.release(block)  # the registering request retires

        assert cache.reclaim(pool, 2) == 2  # the child (newer!) goes
        hit = cache.match(prompt, policy_key="p")
        assert len(hit.nodes) == 1  # the parent still matches
        assert cache.num_blocks_held == 2
        # A deeper deficit drains the rest, parent included.
        assert cache.reclaim(pool, 10) == 2
        assert pool.num_free == pool.num_blocks

    def test_reclaim_respects_live_references_and_lru(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(5)
        miss = cache.match(prompt, policy_key="p")
        blocks = self.make_entry_blocks(pool)
        cache.insert(miss.parent, prompt[:4], blocks, None, pool)
        # Blocks still referenced by their "sequence" (refcount 2).
        assert cache.reclaim(pool, 10) == 0
        for block in blocks:
            pool.release(block)
        assert cache.reclaim(pool, 10) == 2
        assert cache.num_entries == 0
        assert pool.num_free == pool.num_blocks

    def test_max_blocks_bound_sheds_lru(self):
        pool = BlockPool(2, 3, 4, num_blocks=64)
        cache = PrefixCache(block_size=4, max_blocks=4)
        for i in range(4):
            prompt = np.arange(i * 100, i * 100 + 5)
            miss = cache.match(prompt, policy_key="p")
            blocks = self.make_entry_blocks(pool)
            cache.insert(miss.parent, prompt[:4], blocks, None, pool)
            for block in blocks:  # the sequence retires
                pool.release(block)
        assert cache.num_blocks_held <= 4

    def test_clear_releases_all(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(5)
        miss = cache.match(prompt, policy_key="p")
        blocks = self.make_entry_blocks(pool)
        cache.insert(miss.parent, prompt[:4], blocks, None, pool)
        for block in blocks:
            pool.release(block)
        cache.clear(pool)
        assert pool.num_free == pool.num_blocks

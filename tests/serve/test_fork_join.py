"""Differential fork/join harness: parallel sampling and beam search.

The fork surface's contract is *equivalence*: branch ``i`` of a
``Request(n=k, seed=s)`` family must be bit-identical — tokens,
eviction logs, per-layer cache lengths, finish reason — to an
independent request with ``seed = s + i``, across every serving
configuration: dense and paged KV, voting and H2O eviction, chunked
and whole-prompt prefill, and all three preemption modes.  What forking
buys is *memory*, which the report must expose: a family's peak block
usage stays strictly below ``width x`` the single-sample run because
prompt blocks are shared copy-on-write, and the co-simulator prices
dense forks' slab copies while paged CoW forks are free.

Beam search is checked against ground truth: with ``beam_width >=
vocab ** max_new_tokens`` the beam can never prune the optimal path, so
it must recover the exhaustive-search argmax continuation exactly.
"""

import itertools

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.policies import H2OPolicy, VotingPolicy
from repro.core.sampling import temperature_sampler
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, Scheduler, ServingCoSimulator

N_BRANCHES = 3


def policy_factory(model, policy):
    if policy == "voting":
        return lambda: VotingPolicy(model.config.n_layers, reserved_length=4)
    return lambda: H2OPolicy(model.config.n_layers, recent_window=4)


def family_requests(model, n_roots=2, n=N_BRANCHES, budget=None, eos=5):
    """Fork-family requests with distinct prompts and staggered arrivals."""
    rng = np.random.default_rng(5)
    vocab = model.config.vocab_size
    return [
        Request(
            f"fam{i}",
            rng.integers(0, vocab, size=int(rng.integers(10, 18))),
            max_new_tokens=6,
            arrival_time=i,
            eos=eos,
            seed=10 * (i + 1),
            budget=budget,
            n=n,
        )
        for i in range(n_roots)
    ]


def independent_twins(requests):
    """One plain request per branch: same prompt, seed shifted by the
    branch index — the stream the forked branch must reproduce."""
    return [
        Request(
            f"{r.request_id}~{i}",
            r.prompt,
            max_new_tokens=r.max_new_tokens,
            arrival_time=r.arrival_time,
            eos=r.eos,
            seed=r.seed + i,
            budget=r.budget,
        )
        for r in requests
        for i in range(r.n)
    ]


def branch_id(request, index):
    """Branch 0 is the root itself; later branches get ``#i`` suffixes."""
    return (
        request.request_id
        if index == 0
        else f"{request.request_id}#{index}"
    )


def outcome(scheduler, request_id):
    """Everything observable about one retired sequence."""
    for state in scheduler.results():
        if state.request_id == request_id:
            return (
                tuple(state.tokens),
                tuple(tuple(e) for e in state.evictions),
                tuple(state.cache_lengths),
                state.finish_reason,
            )
    raise AssertionError(f"request {request_id!r} did not retire")


class TestDifferentialForkJoin:
    """The headline matrix: fork == independent, everywhere."""

    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("policy", ["voting", "h2o"])
    @pytest.mark.parametrize("chunk", [None, 4])
    @pytest.mark.parametrize(
        "preempt,budget",
        [("off", 12), ("recompute", None), ("swap", 12)],
    )
    def test_forked_sampling_matches_independent_requests(
        self, model, serve_requests, paged, policy, chunk, preempt, budget
    ):
        requests = family_requests(model, budget=budget)
        kwargs = dict(
            policy_factory=policy_factory(model, policy),
            sampler=temperature_sampler(0.8),
            max_batch_size=8,
            prefill_chunk=chunk,
            preempt=preempt,
            paged=paged,
            block_size=4,
        )
        forked, report = serve_requests(model, requests, **kwargs)
        singles, _ = serve_requests(model, independent_twins(requests), **kwargs)

        assert report.forks == sum(r.n - 1 for r in requests)
        for request in requests:
            for i in range(request.n):
                assert outcome(forked, branch_id(request, i)) == outcome(
                    singles, f"{request.request_id}~{i}"
                ), (
                    f"branch {i} of {request.request_id!r} diverged from "
                    f"its independent twin under {paged=} {policy=} "
                    f"{chunk=} {preempt=}"
                )

    def test_samples_for_returns_branch_ordered_streams(
        self, model, serve_requests
    ):
        requests = family_requests(model, n_roots=1)
        scheduler, _ = serve_requests(
            model,
            requests,
            sampler=temperature_sampler(0.8),
            max_batch_size=8,
            paged=True,
            block_size=4,
        )
        (request,) = requests
        samples = scheduler.samples_for(request.request_id)
        assert len(samples) == request.n
        for i, sample in enumerate(samples):
            assert sample == scheduler.tokens_for(branch_id(request, i))

    def test_fork_survives_preemption_pressure(self, model, serve_requests):
        """An undersized fixed pool forces real swap preemptions; the
        differential contract holds anyway (swap restores bit-exactly),
        and every block drains back to the pool."""
        requests = [
            Request(
                r.request_id,
                r.prompt,
                max_new_tokens=10,
                eos=None,
                seed=r.seed,
                budget=r.budget,
                n=r.n,
            )
            for r in family_requests(model, n_roots=3, budget=12)
        ]
        kwargs = dict(
            sampler=temperature_sampler(0.8),
            max_batch_size=8,
            preempt="swap",
            paged=True,
            block_size=4,
        )
        probe = Scheduler(model, **kwargs)
        worst = max(
            probe.manager.sequence_worst_blocks(
                r.prompt.shape[0], r.max_new_tokens, r.budget
            )
            for r in requests
        )
        # The submit-time minimum: exactly one worst-case family fits,
        # so two-way over-commitment must stall and preempt.
        forked, report = serve_requests(
            model,
            requests,
            num_blocks=worst * N_BRANCHES,
            prefix_caching=False,
            **kwargs,
        )
        singles, _ = serve_requests(
            model, independent_twins(requests), **kwargs
        )
        assert report.preemptions > 0
        for request in requests:
            for i in range(request.n):
                assert outcome(forked, branch_id(request, i)) == outcome(
                    singles, f"{request.request_id}~{i}"
                )
        pool = forked.block_pool
        assert pool.num_free == pool.num_blocks


class TestSharedPromptMemory:
    """Forking must be visibly cheaper than independent serving."""

    def test_family_peak_blocks_below_scaled_single(
        self, model, serve_requests
    ):
        width = 4
        requests = family_requests(model, n_roots=2, n=1, eos=None)
        kwargs = dict(
            sampler=temperature_sampler(0.8),
            max_batch_size=2 * width,
            paged=True,
            block_size=4,
        )
        _, single = serve_requests(model, requests, **kwargs)
        forked_requests = [
            Request(
                r.request_id,
                r.prompt,
                max_new_tokens=r.max_new_tokens,
                arrival_time=r.arrival_time,
                seed=r.seed,
                n=width,
            )
            for r in requests
        ]
        _, forked = serve_requests(model, forked_requests, **kwargs)
        assert forked.forks == 2 * (width - 1)
        assert forked.fork_shared_blocks > 0
        assert forked.peak_blocks < width * single.peak_blocks
        assert forked.fork_copied_slots == 0  # paged forks copy nothing

    def test_dense_forks_copy_slots(self, model, serve_requests):
        requests = family_requests(model, n_roots=1)
        _, report = serve_requests(
            model,
            requests,
            sampler=temperature_sampler(0.8),
            max_batch_size=8,
        )
        (request,) = requests
        # Each fork copies at least the prompt's KV rows.
        assert report.fork_copied_slots >= (request.n - 1) * (
            request.prompt.shape[0]
        )
        assert report.fork_shared_blocks == 0


class TestCoSimForkPricing:
    def test_paged_forks_free_dense_forks_priced(self, model, serve_requests):
        requests = family_requests(model, n_roots=1, eos=None)
        kwargs = dict(
            sampler=temperature_sampler(0.8),
            max_batch_size=8,
        )
        dense_sched, dense_report = serve_requests(model, requests, **kwargs)
        paged_sched, _ = serve_requests(
            model, requests, paged=True, block_size=4,
            prefix_caching=False, **kwargs
        )
        dense = ServingCoSimulator(dense_sched).replay()
        paged = ServingCoSimulator(paged_sched).replay()
        assert dense.fork_events == paged.fork_events == dense_report.forks
        assert paged.fork_cycles == 0 and paged.fork_bytes == 0
        assert dense.fork_cycles > 0 and dense.fork_bytes > 0
        # Identical model work (tokens are bit-identical): the dense
        # trace's extra cycles are exactly its fork copies.
        assert dense.total_cycles == pytest.approx(
            paged.total_cycles + dense.fork_cycles
        )


class TestBeamSearch:
    def test_beam_recovers_exhaustive_argmax(self):
        """With the beam wide enough to hold every continuation, beam
        search IS exhaustive search; pinned as the decoding-correctness
        regression."""
        config = tiny_config(vocab_size=3, d_model=16, d_ff=32)
        model = CachedTransformer.from_module(TransformerLM(config, seed=3))
        prompt = np.array([0, 1, 2, 1])
        steps = 3
        width = config.vocab_size**steps  # 27: nothing can be pruned
        scheduler = Scheduler(model, max_batch_size=width + 1)
        scheduler.submit(
            Request("beam", prompt, max_new_tokens=steps, beam_width=width)
        )
        scheduler.run()
        tokens, score = scheduler.beam_result_for("beam")

        def normalized(logits):
            peak = logits.max()
            return logits - (peak + np.log(np.exp(logits - peak).sum()))

        best_tokens, best_score = None, -np.inf
        for continuation in itertools.product(
            range(config.vocab_size), repeat=steps
        ):
            cache = model.new_cache()
            result = model.prefill(prompt, cache)
            position = prompt.shape[0]
            total = 0.0
            for token in continuation:
                total += float(normalized(result.logits)[token])
                result = model.step(token, position, cache)
                position += 1
            if total > best_score:
                best_tokens, best_score = list(continuation), total
        assert tokens == best_tokens
        assert score == pytest.approx(best_score)

    def test_beam_prunes_through_the_join_path(self, model, serve_requests):
        rng = np.random.default_rng(8)
        request = Request(
            "b0",
            rng.integers(0, model.config.vocab_size, size=12),
            max_new_tokens=6,
            beam_width=4,
        )
        scheduler, report = serve_requests(
            model, [request], max_batch_size=8, paged=True, block_size=4
        )
        tokens, score = scheduler.beam_result_for("b0")
        assert len(tokens) == 6
        assert score < 0.0
        assert report.forks > 0
        # Pruned losers retired through join, not plain finish.
        assert report.joins == sum(
            1
            for s in scheduler.results()
            if s.finish_reason == "beam_pruned"
        )
        pool = scheduler.block_pool
        scheduler.release_prefix_cache()
        assert pool.num_free == pool.num_blocks

    def test_beam_matches_across_dense_and_paged(self, model, serve_requests):
        rng = np.random.default_rng(9)
        request = Request(
            "b0",
            rng.integers(0, model.config.vocab_size, size=14),
            max_new_tokens=5,
            beam_width=3,
        )
        dense, _ = serve_requests(model, [request], max_batch_size=6)
        paged, _ = serve_requests(
            model, [request], max_batch_size=6, paged=True, block_size=4
        )
        assert dense.beam_result_for("b0") == paged.beam_result_for("b0")


class TestSubmitValidation:
    def test_fork_family_rejects_draft_model(self, model, draft_inference):
        scheduler = Scheduler(model, draft_model=draft_inference)
        with pytest.raises(ValueError, match="speculative"):
            scheduler.submit(
                Request("r0", np.arange(8), max_new_tokens=4, n=2)
            )

    def test_family_wider_than_batch_rejected(self, model):
        scheduler = Scheduler(model, max_batch_size=3)
        with pytest.raises(ValueError, match="batch slots"):
            scheduler.submit(
                Request("r0", np.arange(8), max_new_tokens=4, beam_width=4)
            )

    def test_fixed_pool_scales_worst_case_by_branches(self, model):
        """A family that fits per-branch but not width-times-over is
        rejected up front instead of deadlocking the pool."""
        kwargs = dict(paged=True, block_size=4, max_batch_size=8)
        probe = Scheduler(model, **kwargs)
        worst = probe.manager.sequence_worst_blocks(8, 4, None)
        scheduler = Scheduler(model, num_blocks=2 * worst, **kwargs)
        scheduler.submit(Request("ok", np.arange(8), max_new_tokens=4))
        with pytest.raises(ValueError, match="blocks"):
            scheduler.submit(
                Request("fam", np.arange(8), max_new_tokens=4, n=3)
            )
        report = scheduler.report()
        assert [r["request_id"] for r in report.rejections] == ["fam"]


class TestLengthPenalty:
    """GNMT-style length normalization: rank finished hypotheses by
    ``cum_logprob / len ** alpha``.  Raw scores are still what the
    scheduler accumulates — normalization is a rank-time transform — so
    ``alpha=0`` is bit-identical to unpenalized beam search."""

    STEPS, EOS, WIDTH = 3, 1, 27  # width = vocab**steps: nothing pruned

    @staticmethod
    def _tiny3(seed=3):
        config = tiny_config(vocab_size=3, d_model=16, d_ff=32)
        return CachedTransformer.from_module(TransformerLM(config, seed=seed))

    def _beam(self, model, alpha):
        scheduler = Scheduler(model, max_batch_size=self.WIDTH + 1)
        scheduler.submit(
            Request(
                "beam",
                np.array([0, 1, 2, 1]),
                max_new_tokens=self.STEPS,
                beam_width=self.WIDTH,
                eos=self.EOS,
                length_penalty=alpha,
            )
        )
        scheduler.run()
        return scheduler

    def _oracle(self, model, prompt, alpha):
        """Exhaustive search over every *terminated* continuation
        (EOS-ended early, or full length with no interior EOS), ranked
        by the normalized score; returns (tokens, raw score)."""

        def normalized(logits):
            peak = logits.max()
            return logits - (peak + np.log(np.exp(logits - peak).sum()))

        vocab = model.config.vocab_size
        best, best_rank, best_raw = None, -np.inf, -np.inf
        for length in range(1, self.STEPS + 1):
            for seq in itertools.product(range(vocab), repeat=length):
                if any(t == self.EOS for t in seq[:-1]):
                    continue
                if length < self.STEPS and seq[-1] != self.EOS:
                    continue
                cache = model.new_cache()
                result = model.prefill(prompt, cache)
                position = prompt.shape[0]
                total = 0.0
                for token in seq:
                    total += float(normalized(result.logits)[token])
                    result = model.step(token, position, cache)
                    position += 1
                rank = total if alpha == 0 else total / length**alpha
                if rank > best_rank:
                    best, best_rank, best_raw = list(seq), rank, total
        return best, best_raw

    @pytest.mark.parametrize("alpha", [0.0, 1.0, 3.0])
    def test_oracle_recovers_normalized_argmax(self, alpha):
        """With the beam wide enough to hold every continuation, the
        ranked winner must be the exhaustive normalized argmax; the
        reported score stays the *raw* cumulative logprob."""
        model = self._tiny3()
        scheduler = self._beam(model, alpha)
        tokens, score = scheduler.beam_result_for("beam")
        best, best_raw = self._oracle(model, np.array([0, 1, 2, 1]), alpha)
        assert tokens == best
        assert score == pytest.approx(best_raw)
        # Different-length finished hypotheses exist, so normalization
        # was actually exercised (not vacuous).
        lengths = {
            len(s.tokens)
            for s in scheduler.results()
            if s.finish_reason == "eos"
        }
        assert len(lengths) > 1

    def test_penalty_changes_the_winner(self):
        """For this untrained model the raw argmax is immediate EOS;
        normalizing by length promotes a full-length hypothesis — the
        knob observably does something."""
        model = self._tiny3()
        short, _ = self._beam(model, 0.0).beam_result_for("beam")
        long, _ = self._beam(model, 3.0).beam_result_for("beam")
        assert len(short) < len(long)

    def test_alpha_zero_is_bit_identical_to_default(self, model):
        rng = np.random.default_rng(12)
        prompt = rng.integers(0, model.config.vocab_size, size=10)

        def run(**extra):
            scheduler = Scheduler(model, max_batch_size=8)
            scheduler.submit(
                Request(
                    "b0", prompt, max_new_tokens=5, beam_width=3, **extra
                )
            )
            scheduler.run()
            return (
                scheduler.beam_result_for("b0"),
                [(s.tokens, s.finish_reason) for s in scheduler.results()],
            )

        assert run(length_penalty=0.0) == run()

    def test_penalized_beam_matches_across_dense_and_paged(self, model):
        rng = np.random.default_rng(13)
        request = Request(
            "b0",
            rng.integers(0, model.config.vocab_size, size=12),
            max_new_tokens=5,
            beam_width=3,
            eos=5,
            length_penalty=0.8,
        )
        dense = Scheduler(model, max_batch_size=6)
        dense.submit(request)
        dense.run()
        paged = Scheduler(model, max_batch_size=6, paged=True, block_size=4)
        paged.submit(request)
        paged.run()
        assert dense.beam_result_for("b0") == paged.beam_result_for("b0")

    def test_validation_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="length_penalty"):
            Request("r0", np.arange(6), max_new_tokens=2, length_penalty=-0.5)
        with pytest.raises(ValueError, match="length_penalty"):
            Request(
                "r0", np.arange(6), max_new_tokens=2, length_penalty=np.nan
            )

"""Continuous-batching scheduler: solo equivalence + scheduling behaviour.

The load-bearing test is :class:`TestSoloEquivalence`: a request served
inside a concurrent batch must generate exactly the tokens it would
generate alone through ``GenerationEngine.generate`` (same weights, same
seed, greedy sampling).  That is the contract that lets the serving path
replace the one-at-a-time engine without changing any result.
"""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.engine import GenerationEngine, budget_from_ratio
from repro.core.policies import VotingPolicy
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import FINISHED, Request, Scheduler


@pytest.fixture(scope="module")
def model():
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))


def make_requests(model, count, seed=3, arrival=lambda i: 0):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(count):
        prompt_len = int(rng.integers(12, 40))
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=rng.integers(0, model.config.vocab_size, size=prompt_len),
                max_new_tokens=int(rng.integers(6, 14)),
                arrival_time=arrival(i),
                seed=i,
                budget=budget_from_ratio(0.5, prompt_len, minimum=8),
            )
        )
    return requests


def policy_factory_for(model):
    return lambda: VotingPolicy(model.config.n_layers, reserved_length=4)


class TestSoloEquivalence:
    def test_concurrent_batch_matches_solo_engine(self, model):
        """≥4 concurrent requests under VotingPolicy eviction generate,
        per sequence, exactly the solo-engine tokens."""
        requests = make_requests(model, 6)
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=6
        )
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        assert report.peak_concurrency >= 4

        for request in requests:
            engine = GenerationEngine(
                model,
                policy_factory_for(model)(),
                budget=request.budget,
            )
            solo = engine.generate(
                request.prompt, request.max_new_tokens, seed=request.seed
            )
            assert scheduler.tokens_for(request.request_id) == solo.tokens

    def test_equivalence_with_staggered_arrivals(self, model):
        """Batch composition changes round to round; tokens must not."""
        requests = make_requests(model, 5, seed=11, arrival=lambda i: 3 * i)
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=3
        )
        for request in requests:
            scheduler.submit(request)
        scheduler.run()

        for request in requests:
            engine = GenerationEngine(
                model, policy_factory_for(model)(), budget=request.budget
            )
            solo = engine.generate(
                request.prompt, request.max_new_tokens, seed=request.seed
            )
            assert scheduler.tokens_for(request.request_id) == solo.tokens

    def test_eos_retires_like_solo(self, model):
        """EOS stops a batched sequence exactly where it stops solo."""
        requests = make_requests(model, 4, seed=5)
        eos = 7  # tiny vocab: greedy will plausibly hit it
        for request in requests:
            request.eos = eos
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=4
        )
        for request in requests:
            scheduler.submit(request)
        scheduler.run()

        for request in requests:
            engine = GenerationEngine(
                model, policy_factory_for(model)(), budget=request.budget
            )
            solo = engine.generate(
                request.prompt, request.max_new_tokens,
                seed=request.seed, eos=eos,
            )
            assert scheduler.tokens_for(request.request_id) == solo.tokens


class TestScheduling:
    def test_batch_cap_respected(self, model):
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=2
        )
        for request in make_requests(model, 5):
            scheduler.submit(request)
        while not scheduler.done:
            scheduler.run_round()
            assert scheduler.num_running <= 2
        assert len(scheduler.results()) == 5

    def test_retirement_frees_slot_for_queued_request(self, model):
        """Iteration-level scheduling: a queued request is admitted the
        round a running one retires, not when the whole batch drains."""
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=2
        )
        requests = make_requests(model, 3)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        rows = {row["request_id"]: row for row in report.requests}
        finish_rounds = sorted(row["finished"] for row in rows.values())
        late = rows["req-2"]
        # The third request waited for a slot, then was admitted right
        # when the earliest finisher retired.
        assert late["admitted"] >= finish_rounds[0]
        assert late["admitted"] <= finish_rounds[0] + 1

    def test_idle_gap_fast_forwards(self, model):
        """A lone far-future arrival doesn't burn empty rounds."""
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=2
        )
        request = make_requests(model, 1, arrival=lambda i: 50)[0]
        scheduler.submit(request)
        report = scheduler.run()
        row = report.requests[0]
        assert row["admitted"] == 50
        assert row["wait_rounds"] == 0

    def test_duplicate_request_id_rejected(self, model):
        scheduler = Scheduler(model, max_batch_size=2)
        request = make_requests(model, 1)[0]
        scheduler.submit(request)
        with pytest.raises(KeyError):
            scheduler.submit(
                Request(
                    request_id=request.request_id,
                    prompt=np.array([1, 2, 3]),
                    max_new_tokens=2,
                )
            )

    def test_report_accounting(self, model):
        requests = make_requests(model, 4)
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=4
        )
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        assert len(report.requests) == 4
        assert report.total_tokens == sum(
            row["tokens"] for row in report.requests
        )
        assert report.total_tokens == sum(
            len(scheduler.tokens_for(r.request_id)) for r in requests
        )
        assert 0 < report.tokens_per_round <= 4
        assert report.peak_concurrency == 4
        summary = report.summary()
        assert summary["requests"] == 4
        assert summary["tokens"] == report.total_tokens

    def test_finished_state_releases_heavy_references(self, model):
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=2
        )
        scheduler.submit(make_requests(model, 1)[0])
        scheduler.run()
        (state,) = scheduler.results()
        assert state.status == FINISHED
        assert state.cache is None and state.policy is None
        assert len(scheduler.cache_bank) == 0

    def test_finished_request_id_stays_reserved(self, model):
        scheduler = Scheduler(
            model, policy_factory=policy_factory_for(model), max_batch_size=2
        )
        request = make_requests(model, 1)[0]
        scheduler.submit(request)
        scheduler.run()
        with pytest.raises(KeyError):
            scheduler.submit(
                Request(
                    request_id=request.request_id,
                    prompt=np.array([1, 2, 3]),
                    max_new_tokens=2,
                )
            )

    def test_invalid_evictions_per_step_rejected(self, model):
        with pytest.raises(ValueError):
            Scheduler(model, evictions_per_step=0)

"""Equivalence suite: paged serving is bit-identical to dense serving.

The contract the paged allocator must honor: for every request in a
trace, the generated token stream is *bitwise identical* whether its KV
state lives in a dense per-sequence slab or in pool blocks — across
block sizes (including the degenerate block_size=1), with voting
eviction enabled, and whether or not the prompt scores a prefix-cache
hit.  Eviction counts and cache-length traces must match too, since the
voting state is part of the contract.
"""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.engine import GenerationEngine, budget_from_ratio
from repro.core.policies import H2OPolicy, VotingPolicy
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, Scheduler

BLOCK_SIZES = (1, 4, 16)


@pytest.fixture(scope="module")
def model():
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))


def policy_factory_for(model):
    return lambda: VotingPolicy(model.config.n_layers, reserved_length=4)


def make_requests(model, count, seed=3, arrival=lambda i: 0, shared_prefix=0):
    rng = np.random.default_rng(seed)
    prefix = rng.integers(0, model.config.vocab_size, size=shared_prefix)
    requests = []
    for i in range(count):
        unique = rng.integers(
            0, model.config.vocab_size, size=int(rng.integers(6, 24))
        )
        prompt = np.concatenate([prefix, unique])
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=prompt,
                max_new_tokens=int(rng.integers(6, 14)),
                arrival_time=arrival(i),
                seed=i,
                budget=budget_from_ratio(0.5, prompt.shape[0], minimum=8),
            )
        )
    return requests


def serve(model, requests, **scheduler_kwargs):
    scheduler = Scheduler(
        model,
        policy_factory=scheduler_kwargs.pop(
            "policy_factory", policy_factory_for(model)
        ),
        max_batch_size=scheduler_kwargs.pop("max_batch_size", 4),
        **scheduler_kwargs,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


class TestPagedVsDense:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_bit_identical_tokens_with_eviction(self, model, block_size):
        """Every request decodes to the same tokens dense vs paged."""
        requests = make_requests(model, 6)
        dense, _ = serve(model, requests)
        paged, _ = serve(model, requests, paged=True, block_size=block_size)
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_eviction_traces_match(self, model, block_size):
        """Same victims at the same steps: the policy sees identical state."""
        requests = make_requests(model, 4, seed=9)
        dense, _ = serve(model, requests)
        paged, _ = serve(model, requests, paged=True, block_size=block_size)
        for state_d, state_p in zip(dense.results(), paged.results()):
            assert state_d.request_id == state_p.request_id
            assert state_d.evictions == state_p.evictions
            assert state_d.cache_lengths == state_p.cache_lengths

    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_matches_solo_engine(self, model, block_size):
        """Transitively: paged batched serving == the solo engine."""
        requests = make_requests(model, 4, seed=5, arrival=lambda i: 2 * i)
        paged, _ = serve(model, requests, paged=True, block_size=block_size)
        for request in requests:
            engine = GenerationEngine(
                model, policy_factory_for(model)(), budget=request.budget
            )
            solo = engine.generate(
                request.prompt, request.max_new_tokens, seed=request.seed
            )
            assert paged.tokens_for(request.request_id) == solo.tokens


class TestPrefixHitsPreserveOutputs:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_hits_do_not_change_tokens(self, model, block_size):
        """Shared-prefix requests: the later (hit) requests decode the
        same tokens as under dense serving — the import-snapshot path is
        exact, not approximate."""
        # Prefix spans at least one full block at every tested size.
        requests = make_requests(
            model, 6, seed=21, arrival=lambda i: 3 * i, shared_prefix=16
        )
        dense, _ = serve(model, requests)
        paged, report = serve(
            model, requests, paged=True, block_size=block_size
        )
        assert report.prefix_hits > 0
        assert report.prefill_tokens_saved > 0
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )

    def test_prefix_caching_off_still_equivalent(self, model):
        requests = make_requests(model, 4, seed=2, shared_prefix=12)
        dense, _ = serve(model, requests)
        paged, report = serve(
            model, requests, paged=True, block_size=4, prefix_caching=False
        )
        assert report.prefix_hits == 0
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )

    def test_h2o_policy_shares_prefix_exactly(self, model):
        """The snapshot contract generalizes beyond voting: H2O's float
        accumulation also survives the export/import path bitwise."""
        factory = lambda: H2OPolicy(model.config.n_layers, recent_window=4)
        requests = make_requests(model, 4, seed=13, shared_prefix=12)
        dense, _ = serve(model, requests, policy_factory=factory)
        paged, report = serve(
            model, requests, policy_factory=factory, paged=True, block_size=4
        )
        assert report.prefix_hits > 0
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )

    def test_non_shareable_policy_never_shares(self, model):
        """A policy without state export must fall back to full prefill
        (correctness over reuse) — and still match dense."""
        from repro.core.policies.extensions import TOVAPolicy

        factory = lambda: TOVAPolicy(model.config.n_layers)
        requests = make_requests(model, 3, seed=17, shared_prefix=12)
        dense, _ = serve(model, requests, policy_factory=factory)
        paged, report = serve(
            model, requests, policy_factory=factory, paged=True, block_size=4
        )
        assert report.prefix_hits == 0
        assert report.prefill_tokens_saved == 0
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )


class TestPagedReporting:
    def test_report_carries_paged_metrics(self, model):
        requests = make_requests(model, 5, seed=31, shared_prefix=12)
        _, report = serve(model, requests, paged=True, block_size=4)
        assert report.paged
        assert report.block_size == 4
        assert report.peak_blocks > 0
        assert report.peak_kv_slots == report.peak_blocks * 4
        assert 0.0 < report.mean_block_utilization <= 2.0
        assert 0.0 <= report.prefix_hit_rate <= 1.0
        summary = report.summary()
        assert summary["block_size"] == 4
        assert summary["prefill_saved"] == report.prefill_tokens_saved

    def test_dense_report_has_no_paged_extras(self, model):
        requests = make_requests(model, 3, seed=37)
        _, report = serve(model, requests)
        assert not report.paged
        assert report.peak_kv_slots > 0
        assert "block_size" not in report.summary()

    def test_shared_prefix_reduces_peak_memory(self, model):
        """The headline win: a shared-prefix trace peaks lower paged."""
        requests = make_requests(
            model, 8, seed=41, arrival=lambda i: 2 * i, shared_prefix=24
        )
        _, dense_report = serve(model, requests, max_batch_size=8)
        _, paged_report = serve(
            model,
            requests,
            max_batch_size=8,
            paged=True,
            block_size=4,
            prefix_cache_blocks=16,
        )
        assert paged_report.peak_kv_slots < dense_report.peak_kv_slots

"""Chunked prefill: bit-identical tokens at every chunk budget.

The contract under test: splitting a prompt's prefill into fixed
token-budget chunks interleaved with decode rounds changes *when* work
happens, never *what* is generated — chunk budgets 1 / 16 / whole-prompt,
dense and paged, voting and H2O must all produce exactly the tokens of
the legacy one-round admission path.  The trace and co-simulation suites
below pin down the latency-shape win: no round's computed prefill rows
exceed the budget, so the worst per-round cycle cost (the head-of-line
prefill spike) drops while total work stays honest.
"""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.engine import budget_from_ratio
from repro.core.policies import H2OPolicy, VotingPolicy
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, Scheduler, ServingCoSimulator


@pytest.fixture(scope="module")
def model():
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))


POLICY_FACTORIES = {
    "voting": lambda n_layers: (
        lambda: VotingPolicy(n_layers, reserved_length=4)
    ),
    "h2o": lambda n_layers: (lambda: H2OPolicy(n_layers, recent_window=4)),
}


def make_requests(model, count=4, seed=11, long_tail=False):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(count):
        prompt_len = int(rng.integers(70, 90)) if long_tail and i == 0 else int(
            rng.integers(10, 30)
        )
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=rng.integers(0, model.config.vocab_size, size=prompt_len),
                max_new_tokens=int(rng.integers(5, 10)),
                arrival_time=2 * i,
                seed=i,
                budget=budget_from_ratio(0.5, prompt_len, minimum=8),
            )
        )
    return requests


def serve(model, requests, policy_name="voting", chunk=None, paged=False):
    scheduler = Scheduler(
        model,
        policy_factory=POLICY_FACTORIES[policy_name](model.config.n_layers),
        max_batch_size=3,
        prefill_chunk=chunk,
        paged=paged,
        block_size=4,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


class TestChunkedEquivalence:
    @pytest.mark.parametrize("policy_name", ["voting", "h2o"])
    @pytest.mark.parametrize("paged", [False, True], ids=["dense", "paged"])
    @pytest.mark.parametrize("chunk", [1, 16, None], ids=["c1", "c16", "whole"])
    def test_tokens_bit_identical(self, model, policy_name, paged, chunk):
        """The full matrix of the issue's equivalence claim: chunk
        budgets 1/16/whole × dense/paged × voting/H2O."""
        requests = make_requests(model)
        baseline, _ = serve(model, requests, policy_name=policy_name)
        scheduler, report = serve(
            model, requests, policy_name=policy_name, chunk=chunk, paged=paged
        )
        for request in requests:
            assert scheduler.tokens_for(request.request_id) == baseline.tokens_for(
                request.request_id
            )
        assert report.total_tokens == sum(
            len(baseline.tokens_for(r.request_id)) for r in requests
        )

    def test_eviction_logs_identical(self, model):
        """Chunking must not shift a single eviction decision either."""
        requests = make_requests(model)
        baseline, _ = serve(model, requests)
        chunked, _ = serve(model, requests, chunk=4)
        base_logs = {s.request_id: s.evictions for s in baseline.results()}
        for state in chunked.results():
            assert state.evictions == base_logs[state.request_id]


class TestChunkedTraceAccounting:
    def test_per_round_prefill_rows_capped(self, model):
        """No round computes more prompt rows than the chunk budget."""
        requests = make_requests(model, long_tail=True)
        for chunk in (1, 5, 16):
            scheduler, _ = serve(model, requests, chunk=chunk)
            assert all(
                record.computed_prefill_tokens <= chunk
                for record in scheduler.trace
            )
            assert max(
                record.computed_prefill_tokens for record in scheduler.trace
            ) == chunk

    def test_chunks_partition_prompts_with_single_final(self, model):
        """Per request: chunk rows sum to the prompt, prefix lengths
        chain contiguously, and exactly the last event is final."""
        requests = make_requests(model, long_tail=True)
        scheduler, _ = serve(model, requests, chunk=7)
        events = {}
        for record in scheduler.trace:
            for event in record.prefills:
                events.setdefault(event.request_id, []).append(event)
        for request in requests:
            chain = events[request.request_id]
            assert sum(e.computed_tokens for e in chain) == request.prompt.shape[0]
            resident = 0
            for event in chain:
                assert event.prefix_length == resident
                resident += event.computed_tokens
            assert [e.final for e in chain] == [False] * (len(chain) - 1) + [True]

    def test_round_tokens_count_only_final_prefills(self, model):
        """A non-final chunk produces no sampleable logits, so it must
        not count as a token in the trace (cosim throughput honesty)."""
        requests = make_requests(model, long_tail=True)
        scheduler, report = serve(model, requests, chunk=6)
        assert sum(r.tokens for r in scheduler.trace) == report.total_tokens
        # Every request contributes exactly one final prefill.
        finals = sum(
            1 for r in scheduler.trace for e in r.prefills if e.final
        )
        assert finals == len(requests)

    def test_paged_chunked_prefix_sharing_still_registers_blocks(self, model):
        """Chunked paged prefill keeps registering prefix blocks: a
        follow-up identical prompt hits the cache even when the first
        prefill was chunked."""
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, model.config.vocab_size, size=24)
        requests = [
            Request("a", prompt, max_new_tokens=4, seed=0),
            Request("b", prompt, max_new_tokens=4, arrival_time=12, seed=1),
        ]
        scheduler, report = serve(model, requests, chunk=5, paged=True)
        assert report.prefix_hits >= 1
        assert report.prefill_tokens_saved > 0
        baseline, _ = serve(model, requests)
        for request in requests:
            assert scheduler.tokens_for(request.request_id) == baseline.tokens_for(
                request.request_id
            )


class TestChunkedCosim:
    def test_chunking_caps_head_of_line_round_cycles(self, model):
        """The acceptance criterion: on a long-prompt workload the worst
        per-round cycle cost drops under chunked prefill, total tokens
        unchanged, and TTFT-in-cycles is reported per request."""
        requests = make_requests(model, long_tail=True)
        whole, _ = serve(model, requests)
        chunked, _ = serve(model, requests, chunk=8)
        whole_hw = ServingCoSimulator(scheduler=whole).replay()
        chunked_hw = ServingCoSimulator(scheduler=chunked).replay()
        assert chunked_hw.max_round_cycles < whole_hw.max_round_cycles
        assert chunked_hw.total_tokens == whole_hw.total_tokens
        for request in requests:
            assert request.request_id in chunked_hw.ttft_cycles
            assert chunked_hw.ttft_cycles[request.request_id] > 0
        assert chunked_hw.mean_ttft_cycles > 0
        assert chunked_hw.max_ttft_cycles >= chunked_hw.mean_ttft_cycles

    def test_ttft_cycles_anchored_at_arrival(self, model):
        """A late-arriving request's TTFT excludes cycles spent before
        it arrived."""
        rng = np.random.default_rng(9)
        vocab = model.config.vocab_size
        requests = [
            Request("early", rng.integers(0, vocab, size=20), max_new_tokens=12,
                    seed=0),
            Request("late", rng.integers(0, vocab, size=20), max_new_tokens=4,
                    arrival_time=6, seed=1),
        ]
        scheduler, _ = serve(model, requests)
        report = ServingCoSimulator(scheduler=scheduler).replay()
        # Anchored TTFT must be smaller than the trace-relative one.
        bare = ServingCoSimulator(
            hw_model=model.config
        ).replay(scheduler.trace)
        assert report.ttft_cycles["late"] < bare.ttft_cycles["late"]
        assert report.ttft_cycles["early"] == bare.ttft_cycles["early"]

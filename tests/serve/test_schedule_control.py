"""Cost-model-guided scheduling: the co-sim as the controller.

Contract under test:

- Adaptive prefill chunking, per-victim modeled preemption, and
  cycle-priced EDF admission change *when* work runs, never *what* it
  computes — per-request tokens stay bit-identical to the static runs.
- ``preempt="model"`` resolves each victim to swap or recompute from
  the predicted cycle cost and accounts the split in the report.
- The memoized co-sim replay is bit-identical to the full simulator and
  every hardware report carries a joules/token figure.
- ``CycleEDFAdmission`` ranks same-deadline requests by predicted
  prefill cycles (longer prompt first).
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.accel.config import veda_config
from repro.accel.predictor import RoundCostPredictor
from repro.config import llama2_7b_shapes
from repro.core.policies.voting import VotingPolicy
from repro.experiments import serving
from repro.serve import (
    CycleEDFAdmission,
    Request,
    Scheduler,
    ServingCoSimulator,
    ServingEngine,
    best_dataflow,
)


@pytest.fixture(scope="module")
def cost_model():
    return RoundCostPredictor(veda_config(), llama2_7b_shapes())


@pytest.fixture(scope="module")
def overload(model):
    """The scheduling benchmark's regime: an unbudgeted overload burst
    against a pool sized below the aggregate worst case."""
    workload = serving.make_workload(
        n_requests=6,
        preset="overload",
        prompt_range=(16, 24),
        compression_ratio=None,
        vocab=model.config.vocab_size,
        seed=3,
    )
    num_blocks = serving.overload_pool_blocks(
        workload, block_size=4, n_layers=model.config.n_layers, fraction=0.4
    )
    return workload, num_blocks


def run_engine(model, workload, num_blocks, cost_model=None, **kwargs):
    engine = ServingEngine(
        model,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=4,
        paged=True,
        block_size=4,
        num_blocks=num_blocks,
        prefix_caching=False,
        cost_model=cost_model,
        **kwargs,
    )
    engine.play(workload, drain=False)
    while not engine.drained:
        engine.step()
    return engine


def tokens_of(engine, workload):
    return {r.request_id: tuple(engine.tokens_for(r.request_id)) for r in workload}


class TestConstructorValidation:
    def test_adaptive_requires_chunk(self, model, cost_model):
        with pytest.raises(ValueError, match="prefill_chunk"):
            Scheduler(model, adaptive_chunk=True, cost_model=cost_model)

    def test_adaptive_requires_cost_model(self, model):
        with pytest.raises(ValueError, match="cost_model"):
            Scheduler(model, adaptive_chunk=True, prefill_chunk=8)

    def test_model_preempt_requires_cost_model(self, model):
        with pytest.raises(ValueError, match="cost_model"):
            Scheduler(model, preempt="model", paged=True, num_blocks=64)


class TestSchedulingIsTokenNeutral:
    def test_adaptive_chunk_tokens_bit_identical(
        self, model, overload, cost_model
    ):
        workload, num_blocks = overload
        static = run_engine(
            model, workload, num_blocks, prefill_chunk=8, preempt="swap"
        )
        adaptive = run_engine(
            model,
            workload,
            num_blocks,
            cost_model=cost_model,
            prefill_chunk=8,
            adaptive_chunk=True,
            preempt="swap",
        )
        assert tokens_of(adaptive, workload) == tokens_of(static, workload)

    def test_model_preempt_tokens_bit_identical(
        self, model, overload, cost_model
    ):
        workload, num_blocks = overload
        swap = run_engine(
            model, workload, num_blocks, prefill_chunk=8, preempt="swap"
        )
        modeled = run_engine(
            model,
            workload,
            num_blocks,
            cost_model=cost_model,
            prefill_chunk=8,
            preempt="model",
        )
        assert tokens_of(modeled, workload) == tokens_of(swap, workload)

    def test_model_preempt_split_accounted(self, model, overload, cost_model):
        workload, num_blocks = overload
        engine = run_engine(
            model,
            workload,
            num_blocks,
            cost_model=cost_model,
            prefill_chunk=8,
            preempt="model",
        )
        report = engine.report()
        assert report.preemptions > 0
        assert report.model_swaps + report.model_recomputes == report.preemptions
        summary = report.summary()
        assert summary["model_swaps"] == report.model_swaps
        assert summary["model_recomputes"] == report.model_recomputes


class TestPerVictimChoice:
    def victim(self, prompt_len, generated, cache_len, budget=None):
        return SimpleNamespace(
            request=SimpleNamespace(
                prompt=np.zeros(prompt_len, dtype=np.int64), budget=budget
            ),
            num_generated=generated,
            cache=[SimpleNamespace(length=cache_len)],
        )

    def chooser(self, model, cost_model):
        return Scheduler(
            model,
            paged=True,
            num_blocks=64,
            preempt="model",
            cost_model=cost_model,
        )

    def test_budgeted_victim_always_swaps(self, model, cost_model):
        scheduler = self.chooser(model, cost_model)
        assert (
            scheduler._choose_preempt_mode(self.victim(16, 4, 20, budget=12))
            == "swap"
        )

    def test_cheap_swap_wins(self, model, cost_model):
        """On 7B shapes a short victim's KV is a few host-link KB while
        its re-prefill streams the full weights — swap wins."""
        scheduler = self.chooser(model, cost_model)
        assert scheduler._choose_preempt_mode(self.victim(16, 4, 20)) == "swap"

    def test_starved_host_link_flips_to_recompute(self, model):
        """Throttle the host link until paging out costs more than the
        re-prefill: the per-victim choice must flip."""
        starved = RoundCostPredictor(
            veda_config(host_link_gb_s=1e-6), llama2_7b_shapes()
        )
        scheduler = self.chooser(model, starved)
        assert (
            scheduler._choose_preempt_mode(self.victim(16, 4, 20)) == "recompute"
        )


class TestMemoizedReplay:
    def test_memoized_cosim_bit_identical(self, model, overload, cost_model):
        workload, num_blocks = overload
        engine = run_engine(
            model, workload, num_blocks, prefill_chunk=8, preempt="swap"
        )
        hw_model = llama2_7b_shapes()
        cold = ServingCoSimulator(
            scheduler=engine.scheduler, hw_model=hw_model
        ).replay()
        warm = ServingCoSimulator(
            scheduler=engine.scheduler, hw_model=hw_model, memoize=True
        ).replay()
        assert warm.total_cycles == cold.total_cycles
        assert warm.macs == cold.macs
        assert warm.hbm_bytes == cold.hbm_bytes
        assert warm.energy_joules == cold.energy_joules
        assert warm.ttft_cycles == cold.ttft_cycles

    def test_report_carries_energy(self, model, overload):
        workload, num_blocks = overload
        engine = run_engine(
            model, workload, num_blocks, prefill_chunk=8, preempt="swap"
        )
        report = engine.cosim(hw_model=llama2_7b_shapes(), memoize=True)
        assert report.energy_joules > 0
        assert report.joules_per_token > 0
        assert report.p95_ttft_cycles > 0
        summary = report.summary()
        assert summary["joules/token"] == report.joules_per_token


class TestBestDataflow:
    def reports(self):
        return {
            "auto": SimpleNamespace(total_cycles=100.0, energy_joules=9.0),
            "prefill": SimpleNamespace(total_cycles=120.0, energy_joules=5.0),
        }

    def test_cycles_objective(self):
        name, report = best_dataflow(self.reports(), objective="cycles")
        assert name == "auto" and report.total_cycles == 100.0

    def test_energy_objective(self):
        name, report = best_dataflow(self.reports(), objective="energy")
        assert name == "prefill" and report.energy_joules == 5.0

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            best_dataflow(self.reports(), objective="carbon")


class TestCycleEDFAdmission:
    def request(self, rid, prompt_len, deadline=None, arrival=0):
        return Request(
            rid,
            np.zeros(prompt_len, dtype=np.int64),
            max_new_tokens=4,
            arrival_time=arrival,
            deadline=deadline,
        )

    def test_longer_prompt_wins_equal_deadline(self, cost_model):
        """The cycle-priced refinement over plain EDF: same deadline,
        bigger prefill, smaller laxity, admitted first."""
        policy = CycleEDFAdmission(cost_model=cost_model)
        short = self.request("short", 8, deadline=20)
        long = self.request("long", 64, deadline=20)
        assert policy.key(long, now=0) < policy.key(short, now=0)

    def test_deadlines_rank_ahead_of_fifo(self, cost_model):
        policy = CycleEDFAdmission(cost_model=cost_model)
        dated = self.request("dated", 8, deadline=1000, arrival=9)
        undated = self.request("undated", 8, arrival=0)
        assert policy.key(dated, now=0) < policy.key(undated, now=0)

    def test_laxity_shrinks_as_deadline_nears(self, cost_model):
        policy = CycleEDFAdmission(cost_model=cost_model)
        request = self.request("r", 16, deadline=50)
        assert policy.key(request, now=40) < policy.key(request, now=0)

    def test_invalid_cycles_per_round_rejected(self, cost_model):
        with pytest.raises(ValueError, match="cycles_per_round"):
            CycleEDFAdmission(cost_model=cost_model, cycles_per_round=0)

    def test_registered_by_name(self, model, overload, cost_model):
        """The engine accepts admission='edf_cycles' end to end."""
        workload, num_blocks = overload
        engine = run_engine(
            model,
            workload,
            num_blocks,
            prefill_chunk=8,
            preempt="swap",
            admission=CycleEDFAdmission(cost_model=cost_model),
        )
        assert len(engine.report().requests) == len(workload)


class TestScheduleExperiment:
    def test_run_cosim_schedule_grid(self):
        """The bench's own invariants (token identity, memoized
        bit-identity) are asserted inside the run; here: the grid shape,
        the priced columns, and the measured replay speedup."""
        result, extra = serving.run_cosim_schedule(
            n_requests=6, static_chunks=(4, 8), seed=1
        )
        assert result.experiment_id == "serving_schedule"
        assert len(result.rows) == 5  # 2 chunks x 2 preempts + adaptive
        adaptive = result.rows[-1]
        assert adaptive["policy"] == "adaptive"
        assert adaptive["preempt"] == "model"
        for row in result.rows:
            assert row["hw_tokens/s"] > 0
            assert row["joules/token"] > 0
            assert row["p95_ttft_cyc"] > 0
        assert result.replay_speedup > 1.0
        assert "replay speedup" in extra.lower()

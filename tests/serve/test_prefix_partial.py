"""End-to-end partial-block prefix sharing through the scheduler.

The radix trie's token-granular matching must change *work*, never
*outputs*: an unbudgeted sequence sharing all-but-one token with a
cached prompt re-prefills exactly the divergent rows (copy-on-write
adopting the partial block), its generated tokens and eviction logs
stay bit-identical to a cold dense serve for both snapshot-bearing
policies (voting, H2O), budgeted sequences keep the PR-2 block-aligned
semantics untouched, speculative provisional tokens never enter the
trie, and the token-weighted report metrics expose the coverage the
per-request hit rate hides.
"""

import numpy as np
import pytest

from repro.core.policies import H2OPolicy, VotingPolicy
from repro.serve import Request, Scheduler, compare_dataflows

BLOCK_SIZE = 4


def voting_factory(model):
    return lambda: VotingPolicy(model.config.n_layers, reserved_length=4)


def h2o_factory(model):
    return lambda: H2OPolicy(model.config.n_layers, recent_window=4)


def serve(model, requests, *, paged, factory=None, **kwargs):
    scheduler = Scheduler(
        model,
        policy_factory=(factory or voting_factory(model)),
        max_batch_size=kwargs.pop("max_batch_size", 4),
        paged=paged,
        block_size=kwargs.pop("block_size", BLOCK_SIZE),
        **kwargs,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


def prefill_events_for(scheduler, request_id):
    return [
        event
        for record in scheduler.trace
        for event in record.prefills
        if event.request_id == request_id
    ]


def almost_twin_requests(model, prompt_len=8, budget=None):
    """Two unbudgeted requests differing only in the last prompt token."""
    rng = np.random.default_rng(11)
    base = rng.integers(0, model.config.vocab_size, size=prompt_len)
    twin = base.copy()
    twin[-1] = (twin[-1] + 1) % model.config.vocab_size
    return [
        Request("warm", base, max_new_tokens=4, seed=0, budget=budget),
        Request(
            "twin", twin, max_new_tokens=4, arrival_time=1, seed=1,
            budget=budget,
        ),
    ]


class TestPartialTailEndToEnd:
    def test_all_but_one_token_reprefills_only_divergent_row(self, model):
        """7 of 8 prompt tokens adopted (one full block + a 3-row partial
        tail); the admission prefill computes exactly the last row, and
        the adopted partial block is CoW'd once per layer."""
        requests = almost_twin_requests(model)
        scheduler, report = serve(model, requests, paged=True)
        events = prefill_events_for(scheduler, "twin")
        assert sum(event.computed_tokens for event in events) == 1
        assert events[0].prefix_length == 7
        # The warm request CoWs nothing (it allocated its own blocks);
        # the twin CoWs the one partially adopted block, per layer.
        assert scheduler.block_pool.cow_copies == model.config.n_layers
        assert report.prefill_tokens_saved == 7

    @pytest.mark.parametrize("factory", [voting_factory, h2o_factory])
    def test_partial_hit_bit_identical_to_cold_dense(self, model, factory):
        """Tokens AND eviction logs match a cold dense serve for both
        snapshot-bearing policies — the partial tail changes compute,
        never outputs."""
        requests = almost_twin_requests(model)
        dense, _ = serve(model, requests, paged=False, factory=factory(model))
        paged, _ = serve(model, requests, paged=True, factory=factory(model))
        assert paged.prefix_cache.tokens_hit > 0
        for state_d, state_p in zip(dense.results(), paged.results()):
            assert state_d.request_id == state_p.request_id
            assert state_d.tokens == state_p.tokens
            assert state_d.evictions == state_p.evictions
            assert state_d.cache_lengths == state_p.cache_lengths

    @pytest.mark.parametrize("factory", [voting_factory, h2o_factory])
    def test_misaligned_shared_prefix_bit_identical(self, model, factory):
        """A 10-token shared prefix over 4-slot blocks (2-token partial
        tail) across several unbudgeted requests: paged/token-mode serve
        is bit-identical to dense."""
        rng = np.random.default_rng(23)
        prefix = rng.integers(0, model.config.vocab_size, size=10)
        requests = [
            Request(
                f"req-{i}",
                np.concatenate(
                    [prefix, rng.integers(0, model.config.vocab_size, size=6)]
                ),
                max_new_tokens=5,
                arrival_time=2 * i,
                seed=i,
            )
            for i in range(4)
        ]
        dense, _ = serve(model, requests, paged=False, factory=factory(model))
        paged, _ = serve(model, requests, paged=True, factory=factory(model))
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )
        for state_d, state_p in zip(dense.results(), paged.results()):
            assert state_d.evictions == state_p.evictions


class TestBudgetedSemanticsUnchanged:
    def test_budgeted_hit_stays_block_aligned(self, model):
        """A budgeted sequence never adopts a partial tail: its hit
        length is a whole number of snapshot-covered blocks, and its
        tokens still match dense."""
        requests = almost_twin_requests(model, budget=8)
        dense, _ = serve(model, requests, paged=False)
        paged, _ = serve(model, requests, paged=True)
        events = prefill_events_for(paged, "twin")
        assert events[0].prefix_length == BLOCK_SIZE  # 1 block, not 7 rows
        assert sum(event.computed_tokens for event in events) == 4
        for request in requests:
            assert paged.tokens_for(request.request_id) == dense.tokens_for(
                request.request_id
            )
        for state in paged.results():
            assert not state.prefix_tainted

    def test_block_match_mode_disables_partial_tails(self, model):
        """`prefix_match_mode="block"` restores full-block-only coverage
        even for unbudgeted sequences (the comparison baseline)."""
        requests = almost_twin_requests(model)
        scheduler, _ = serve(
            model, requests, paged=True, prefix_match_mode="block"
        )
        events = prefill_events_for(scheduler, "twin")
        assert events[0].prefix_length == BLOCK_SIZE
        assert scheduler.block_pool.cow_copies == 0


class TestTrieBeatsBlockGranularity:
    def test_token_mode_strictly_higher_token_hit_rate(self, model):
        """On a misaligned shared prefix, token-granular matching covers
        strictly more prompt tokens than the full-block baseline."""
        rng = np.random.default_rng(7)
        prefix = rng.integers(0, model.config.vocab_size, size=10)
        requests = [
            Request(
                f"req-{i}",
                np.concatenate(
                    [prefix, rng.integers(0, model.config.vocab_size, size=8)]
                ),
                max_new_tokens=4,
                arrival_time=3 * i,
                seed=i,
            )
            for i in range(3)
        ]
        rates = {}
        for mode in ("block", "token"):
            scheduler, report = serve(
                model, requests, paged=True, prefix_match_mode=mode
            )
            rates[mode] = report.prefix_token_hit_rate
            assert report.prompt_tokens_seen == sum(
                request.prompt.shape[0] for request in requests
            )
        assert rates["token"] > rates["block"]

    def test_report_carries_token_metrics(self, model):
        requests = almost_twin_requests(model)
        _, report = serve(model, requests, paged=True)
        assert report.prompt_tokens_seen == 16
        assert report.prefix_tokens_hit == 7
        assert report.prefix_token_hit_rate == pytest.approx(7 / 16)
        assert report.summary()["token_hit_rate"] == pytest.approx(7 / 16)


class TestCosimPricesPartialCoverage:
    def test_partial_hit_prices_only_divergent_rows(self, model):
        """The co-simulator charges the twin request one prefill row,
        not a whole block: `PrefillEvent.prefix_length` carries the
        token-level coverage into the cycle model."""
        requests = almost_twin_requests(model)
        dense, _ = serve(model, requests, paged=False)
        paged, report = serve(model, requests, paged=True)
        hw_model = model.config
        dense_hw = compare_dataflows(dense, hw_model=hw_model)["auto"]
        paged_hw = compare_dataflows(paged, hw_model=hw_model)["auto"]
        assert dense_hw.prefill_tokens == 16  # two cold 8-row prompts
        assert paged_hw.prefill_tokens == 9  # warm prompt + 1 divergent row
        assert (
            dense_hw.prefill_tokens - paged_hw.prefill_tokens
            == report.prefill_tokens_saved
        )
        assert paged_hw.total_cycles < dense_hw.total_cycles


class TestSpecDecodeGating:
    def test_provisional_tokens_never_enter_trie(self, model):
        """With self-draft speculation every registered trie path spells
        a prefix of some request's *prompt* — provisional (and even
        committed generated) tokens are absent, because registration
        only covers prompt rows."""
        rng = np.random.default_rng(31)
        prefix = rng.integers(0, model.config.vocab_size, size=8)
        requests = [
            Request(
                f"req-{i}",
                np.concatenate(
                    [prefix, rng.integers(0, model.config.vocab_size, size=6)]
                ),
                max_new_tokens=6,
                arrival_time=2 * i,
                seed=i,
            )
            for i in range(3)
        ]
        scheduler, report = serve(
            model, requests, paged=True, draft_model=model, spec_k=2
        )
        assert report.verify_passes > 0
        prompts = [tuple(int(t) for t in r.prompt) for r in requests]

        def paths(node, head):
            for bucket in node.children.values():
                for child in bucket:
                    label = head + tuple(int(t) for t in child.tokens)
                    yield label
                    yield from paths(child, label)

        cache = scheduler.prefix_cache
        registered = [
            path
            for key in list(cache._roots)
            for path in paths(cache.root(key), ())
        ]
        assert registered  # the shared prefix did get cached
        for path in registered:
            assert any(
                prompt[: len(path)] == path for prompt in prompts
            ), f"trie path {path} is not a prompt prefix"

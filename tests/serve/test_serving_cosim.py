"""Serving co-simulation: solo equivalence, monotonicity, dataflow wins."""

import numpy as np
import pytest

from repro.accel.config import veda_config
from repro.config import llama2_7b_shapes
from repro.core.engine import GenerationEngine
from repro.core.policies.voting import VotingPolicy
from repro.cosim import CoSimulator
from repro.serve import (
    Request,
    Scheduler,
    ServingCoSimulator,
    compare_dataflows,
)


def make_requests(rng, n=3, budget=10, prompt_range=(12, 30), max_new_range=(5, 9)):
    requests = []
    for i in range(n):
        prompt_len = int(rng.integers(*prompt_range))
        requests.append(
            Request(
                request_id=f"r{i}",
                prompt=rng.integers(0, 64, size=prompt_len),
                max_new_tokens=int(rng.integers(*max_new_range)),
                seed=i,
                budget=budget,
            )
        )
    return requests


def serve(model, requests, max_batch_size, budget=None, paged=False):
    scheduler = Scheduler(
        model,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=2
        ),
        max_batch_size=max_batch_size,
        budget=budget,
        paged=paged,
        block_size=4,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


class TestBatchOneEquivalence:
    """At batch cap 1 the serving cosim is the solo cosim, cycle for cycle."""

    def test_matches_solo_cosimulator_exactly(self, tiny_inference, rng):
        requests = make_requests(rng)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=1)
        hw_report = ServingCoSimulator(scheduler).replay()

        solo_decode_total = 0.0
        for request in requests:
            engine = GenerationEngine(
                tiny_inference,
                VotingPolicy(tiny_inference.config.n_layers, reserved_length=2),
                budget=request.budget,
            )
            solo = CoSimulator(engine).run(
                request.prompt, request.max_new_tokens, seed=request.seed
            )
            # Same tokens, and the exact same per-step attention cycles.
            assert solo.tokens == scheduler.tokens_for(request.request_id)
            assert (
                hw_report.request_decode_attention(request.request_id)
                == solo.attention_cycles_per_step
            )
            solo_decode_total += solo.total_decode_cycles
        assert hw_report.decode_cycles == solo_decode_total

    def test_matches_solo_on_7b_shapes(self, tiny_inference, rng):
        """hw_model substitution preserves the equivalence."""
        requests = make_requests(rng, n=2)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=1)
        hw_report = ServingCoSimulator(
            scheduler, hw_model=llama2_7b_shapes()
        ).replay()
        total = 0.0
        for request in requests:
            engine = GenerationEngine(
                tiny_inference,
                VotingPolicy(tiny_inference.config.n_layers, reserved_length=2),
                budget=request.budget,
            )
            solo = CoSimulator(engine, hw_model=llama2_7b_shapes()).run(
                request.prompt, request.max_new_tokens, seed=request.seed
            )
            assert (
                hw_report.request_decode_attention(request.request_id)
                == solo.attention_cycles_per_step
            )
            total += solo.total_decode_cycles
        assert hw_report.decode_cycles == total

    def test_dead_steps_account_for_the_engine_gap(self, tiny_inference, rng):
        """Without dead-step pricing, each length-capped request is one
        decode step short of the engine's trajectory."""
        requests = make_requests(rng)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=1)
        with_dead = ServingCoSimulator(scheduler).replay()
        without = ServingCoSimulator(scheduler, count_dead_steps=False).replay()
        length_finished = sum(
            1 for s in scheduler.results() if s.finish_reason == "length"
        )
        assert length_finished > 0
        assert with_dead.dead_steps == length_finished
        assert without.dead_steps == 0
        assert (
            with_dead.decode_steps + with_dead.dead_steps
            == without.decode_steps + length_finished
        )
        assert without.decode_cycles < with_dead.decode_cycles
        # Dead steps never count as produced tokens.
        assert with_dead.total_tokens == without.total_tokens

    def test_paged_trace_prices_identically_to_dense(self, tiny_inference, rng):
        """Without prefix hits, paging changes where floats live, not the
        cache-length trajectory, so the priced cycles are identical."""
        requests = make_requests(rng)
        dense_sched, _ = serve(tiny_inference, requests, max_batch_size=2)
        paged_sched, _ = serve(
            tiny_inference, requests, max_batch_size=2, paged=True
        )
        dense = ServingCoSimulator(dense_sched).replay()
        paged = ServingCoSimulator(paged_sched).replay()
        assert paged.total_cycles == dense.total_cycles
        assert paged.per_request_attention == dense.per_request_attention


class TestBudgetMonotonicity:
    """More aggressive KV budgets never increase mean decode-attention
    cycles at batch > 1 (the serving analogue of the solo cosim's
    eviction-reduces-cycles property)."""

    def test_mean_decode_attention_monotone_in_budget(self, tiny_inference, rng):
        prompts = [rng.integers(0, 64, size=int(rng.integers(16, 40))) for _ in range(5)]
        means = []
        steps = []
        for budget in (None, 14, 8):
            requests = [
                Request(f"r{i}", prompt, max_new_tokens=8, seed=i)
                for i, prompt in enumerate(prompts)
            ]
            scheduler, _ = serve(
                tiny_inference, requests, max_batch_size=4, budget=budget
            )
            report = ServingCoSimulator(scheduler).replay()
            means.append(report.mean_decode_attention_cycles)
            steps.append(report.decode_steps + report.dead_steps)
        # Same trace structure (greedy, no EOS): identical step counts.
        assert steps[0] == steps[1] == steps[2]
        assert means[0] >= means[1] >= means[2]
        assert means[0] > means[2]

    def test_mean_requires_priced_steps(self, tiny_inference):
        from repro.serve.cosim import ServingCoSimReport

        with pytest.raises(ValueError):
            ServingCoSimReport().mean_decode_attention_cycles


class TestDataflowSelection:
    def test_flexible_beats_both_fixed_on_mixed_trace(self, tiny_inference, rng):
        """The acceptance inequality on a real serving trace, priced on
        the paper's 7B shapes: auto <= both pinned mappings, strictly
        cheaper than either."""
        requests = make_requests(rng, n=4)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=3)
        reports = compare_dataflows(scheduler, hw_model=llama2_7b_shapes())
        auto = reports["auto"].total_cycles
        assert auto < reports["prefill"].total_cycles
        assert auto < reports["decode"].total_cycles

    def test_pinned_penalties_land_on_their_phase(self, tiny_inference, rng):
        requests = make_requests(rng, n=3)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=3)
        reports = compare_dataflows(scheduler, hw_model=llama2_7b_shapes())
        # Pinning to the tiled mapping leaves prefill untouched but
        # slows decode; pinning to streaming does the reverse.
        assert (
            reports["prefill"].prefill_cycles == reports["auto"].prefill_cycles
        )
        assert reports["prefill"].decode_cycles > reports["auto"].decode_cycles
        assert reports["decode"].decode_cycles == reports["auto"].decode_cycles
        assert reports["decode"].prefill_cycles > reports["auto"].prefill_cycles

    def test_fixed_hardware_comparison_degrades_gracefully(
        self, tiny_inference, rng
    ):
        """A fixed-dataflow array cannot express the streaming mapping:
        the comparison drops it instead of raising mid-loop, and both
        remaining selections price the baseline's tiled configuration."""
        from repro.accel.config import baseline_config

        requests = make_requests(rng, n=2)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=2)
        reports = compare_dataflows(scheduler, hw=baseline_config())
        assert set(reports) == {"auto", "prefill"}
        assert (
            reports["auto"].total_cycles == reports["prefill"].total_cycles
        )

    def test_invalid_dataflow_rejected(self, tiny_inference, rng):
        requests = make_requests(rng, n=1)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=1)
        with pytest.raises(ValueError):
            ServingCoSimulator(scheduler, dataflow="gemm")


class TestTraceAccounting:
    def test_tokens_match_serving_report(self, tiny_inference, rng):
        requests = make_requests(rng, n=4)
        scheduler, report = serve(tiny_inference, requests, max_batch_size=3)
        hw_report = ServingCoSimulator(scheduler).replay()
        assert hw_report.total_tokens == report.total_tokens
        # One token per prefill, one per real decode step.
        assert hw_report.total_tokens == len(requests) + hw_report.decode_steps

    def test_prefix_hits_reduce_priced_prefill_rows(self, tiny_inference, rng):
        prefix = rng.integers(0, 64, size=16)
        requests = [
            Request(
                f"r{i}",
                np.concatenate([prefix, rng.integers(0, 64, size=12)]),
                max_new_tokens=5,
                seed=i,
                budget=12,
            )
            for i in range(3)
        ]
        dense_sched, _ = serve(tiny_inference, requests, max_batch_size=2)
        paged_sched, paged_report = serve(
            tiny_inference, requests, max_batch_size=2, paged=True
        )
        assert paged_report.prefill_tokens_saved > 0
        dense = ServingCoSimulator(dense_sched).replay()
        paged = ServingCoSimulator(paged_sched).replay()
        assert (
            dense.prefill_tokens - paged.prefill_tokens
            == paged_report.prefill_tokens_saved
        )
        assert paged.prefill_cycles < dense.prefill_cycles
        # Decode work is untouched by prefix sharing.
        assert paged.decode_cycles == dense.decode_cycles

    def test_replay_requires_a_trace_source(self):
        with pytest.raises(ValueError):
            ServingCoSimulator(hw=veda_config())

    def test_utilization_and_throughput_derived_metrics(self, tiny_inference, rng):
        requests = make_requests(rng, n=2)
        scheduler, _ = serve(tiny_inference, requests, max_batch_size=2)
        report = ServingCoSimulator(scheduler).replay()
        assert 0.0 < report.utilization <= 1.0
        assert report.tokens_per_second > 0.0
        assert report.wall_seconds > 0.0
        summary = report.summary()
        assert summary["tokens"] == report.total_tokens
        assert summary["dataflow"] == "auto"

"""Shared fixtures for the serving test suite.

Every serve test exercises the same untrained tiny model (deterministic
weights, seed 0), so it is built once per session here instead of once
per module in each file.  ``serve_requests`` is the common
submit-everything-then-run harness the individual modules used to
re-implement.
"""

import pytest

from repro.config import tiny_config
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Scheduler


@pytest.fixture(scope="session")
def model():
    """The serve-suite target model (untrained tiny, seed 0)."""
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))


@pytest.fixture(scope="session")
def draft_inference():
    """An independently initialized tiny model (same vocab as the
    target) for speculative-decoding tests."""
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=7))


@pytest.fixture()
def serve_requests():
    """Build a Scheduler, submit every request, run to completion.

    Returns a callable ``(model, requests, **scheduler_kwargs) ->
    (scheduler, report)``; per-module wrappers layer their own defaults
    (policy factory, batch cap, paging) on top.
    """

    def _serve(model, requests, **kwargs):
        scheduler = Scheduler(model, **kwargs)
        for request in requests:
            scheduler.submit(request)
        report = scheduler.run()
        return scheduler, report

    return _serve

"""Fuzz-style scheduler tests: randomized traces against the paged path.

Each seeded trace draws arrivals, prompt/generation lengths, EOS
settings, budgets and shared prefixes at random, then asserts the three
end-to-end safety properties of the paged serving path:

- **No block leaks.**  After every request retires and the prefix cache
  is dropped, every pool block is back on the free list.
- **Prefix hits never change outputs.**  The paged run (hits, CoW,
  chunked voting) produces the exact token streams of the dense run.
- **A fixed pool serves the trace.**  With admission gating on block
  availability, a bounded pool completes the same trace with the same
  outputs (admission may be delayed; tokens are batch-invariant).
"""

import numpy as np
import pytest

from repro.core.engine import budget_from_ratio
from repro.core.policies import VotingPolicy
from repro.serve import Request, Scheduler


def fuzz_trace(model, seed):
    """A randomized multi-tenant trace with shared prefixes mixed in."""
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    n_requests = int(rng.integers(5, 10))
    n_prefixes = int(rng.integers(1, 3))
    prefixes = [
        rng.integers(0, vocab, size=int(rng.integers(8, 20)))
        for _ in range(n_prefixes)
    ]
    requests = []
    arrival = 0
    for i in range(n_requests):
        parts = []
        if rng.random() < 0.7:  # most requests share one of the prefixes
            parts.append(prefixes[int(rng.integers(0, n_prefixes))])
        parts.append(rng.integers(0, vocab, size=int(rng.integers(4, 24))))
        prompt = np.concatenate(parts)
        budget = None
        if rng.random() < 0.7:
            budget = budget_from_ratio(0.5, prompt.shape[0], minimum=8)
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=prompt,
                max_new_tokens=int(rng.integers(3, 16)),
                arrival_time=arrival,
                eos=int(rng.integers(0, vocab)) if rng.random() < 0.5 else None,
                seed=i,
                budget=budget,
            )
        )
        arrival += int(rng.integers(0, 4))
    return requests


def serve(model, requests, **kwargs):
    scheduler = Scheduler(
        model,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=kwargs.pop("max_batch_size", 4),
        **kwargs,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("block_size", [1, 4, 16])
def test_fuzzed_traces_leak_free_and_output_stable(model, seed, block_size):
    requests = fuzz_trace(model, seed)
    dense, _ = serve(model, requests)
    paged, report = serve(model, requests, paged=True, block_size=block_size)

    # Everyone retired, and prefix hits never changed a single token.
    assert len(paged.results()) == len(requests)
    for request in requests:
        assert paged.tokens_for(request.request_id) == dense.tokens_for(
            request.request_id
        )

    # Only the prefix cache may still hold blocks; its accounting must
    # agree with the pool's.
    pool = paged.block_pool
    assert pool.num_used == paged.prefix_cache.num_blocks_held
    paged.release_prefix_cache()
    assert pool.num_free == pool.num_blocks


@pytest.mark.parametrize("seed", range(4))
def test_fixed_pool_completes_with_admission_gating(model, seed):
    """An adequately sized fixed pool serves the whole trace; admission
    stalls under block pressure instead of overflowing, and outputs stay
    bit-identical (tokens are batch-composition invariant)."""
    requests = fuzz_trace(model, seed + 100)
    dense, _ = serve(model, requests)
    block_size = 4
    n_layers = model.config.n_layers
    worst = max(
        -(-(max(r.prompt.shape[0], r.budget or 0) + r.max_new_tokens + 1)
          // block_size)
        for r in requests
    )
    # Room for two worst-case sequences: forces real admission stalls on
    # most traces while staying serviceable.
    num_blocks = 2 * worst * n_layers + n_layers
    paged, report = serve(
        model,
        requests,
        paged=True,
        block_size=block_size,
        num_blocks=num_blocks,
        max_batch_size=4,
    )
    assert len(paged.results()) == len(requests)
    for request in requests:
        assert paged.tokens_for(request.request_id) == dense.tokens_for(
            request.request_id
        )
    paged.release_prefix_cache()
    assert paged.block_pool.num_free == paged.block_pool.num_blocks


def test_tight_fixed_pool_never_overflows(model):
    """Admission reservations must cover running sequences' future growth
    (decode appends and CoW), so a pool that can hold one worst-case
    sequence serves a two-request trace sequentially instead of crashing
    mid-decode with BlockPoolExhausted."""
    requests = [
        Request(f"r{i}", np.arange(1, 9), max_new_tokens=8, seed=i)
        for i in range(2)
    ]
    scheduler = Scheduler(
        model,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=4,
        paged=True,
        block_size=4,
        num_blocks=14,  # one worst-case sequence (10) + slack, not two
    )
    for request in requests:
        scheduler.submit(request)
    scheduler.run()
    assert len(scheduler.results()) == 2


def test_unsatisfiable_request_rejected_at_submit(model):
    """A request whose worst-case block demand exceeds the whole pool
    must be rejected up front, not stall the queue forever."""
    scheduler = Scheduler(
        model, paged=True, block_size=4, num_blocks=4, max_batch_size=4
    )
    with pytest.raises(ValueError, match="blocks"):
        scheduler.submit(Request("big", np.arange(1, 9), max_new_tokens=8))


def test_prefix_cache_survives_across_trace_and_hits_accumulate(model):
    """Back-to-back identical prompts: the second wave is all hits."""
    rng = np.random.default_rng(0)
    prefix = rng.integers(0, model.config.vocab_size, size=16)
    requests = []
    for i in range(6):
        prompt = np.concatenate(
            [prefix, rng.integers(0, model.config.vocab_size, size=6)]
        )
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=prompt,
                max_new_tokens=6,
                arrival_time=4 * i,  # strictly sequential admissions
                seed=i,
            )
        )
    paged, report = serve(
        model, requests, paged=True, block_size=4, max_batch_size=2
    )
    # Every request after the first should have hit the shared prefix.
    assert report.prefix_hits == len(requests) - 1
    assert report.prefill_tokens_saved == (len(requests) - 1) * 16


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("preempt", ["off", "swap"])
def test_forked_branch_churn_drains_pool(model, seed, preempt):
    """Random fork families (parallel samples and beams) churned under
    slot pressure: whatever mix of forks, beam prunes, and preemptions
    fires, every family completes and every pool block drains back."""
    from repro.core.sampling import temperature_sampler

    rng = np.random.default_rng(1000 + seed)
    vocab = model.config.vocab_size
    requests = []
    arrival = 0
    for i in range(int(rng.integers(4, 8))):
        prompt = rng.integers(0, vocab, size=int(rng.integers(6, 20)))
        n = beam = 1
        roll = rng.random()
        if roll < 0.4:
            n = int(rng.integers(2, 4))
        elif roll < 0.7:
            beam = int(rng.integers(2, 4))
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=prompt,
                max_new_tokens=int(rng.integers(3, 10)),
                arrival_time=arrival,
                eos=int(rng.integers(0, vocab)) if rng.random() < 0.3 else None,
                seed=i,
                n=n,
                beam_width=beam,
            )
        )
        arrival += int(rng.integers(0, 3))
    scheduler = Scheduler(
        model,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        sampler=temperature_sampler(0.9),
        max_batch_size=4,  # families queue behind each other's branches
        paged=True,
        block_size=4,
        preempt=preempt,
    )
    for request in requests:
        scheduler.submit(request)
    scheduler.run()

    for request in requests:
        if request.n > 1:
            samples = scheduler.samples_for(request.request_id)
            assert len(samples) == request.n
        elif request.beam_width > 1:
            tokens, _ = scheduler.beam_result_for(request.request_id)
            assert tokens
        else:
            assert scheduler.tokens_for(request.request_id) is not None
    pool = scheduler.block_pool
    assert pool.num_used == scheduler.prefix_cache.num_blocks_held
    scheduler.release_prefix_cache()
    assert pool.num_free == pool.num_blocks
    assert scheduler.manager.slots_used == 0

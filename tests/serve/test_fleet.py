"""Differential fleet harness: placement must never change tokens.

The fleet's contract is *routing-only divergence*: a request's generated
tokens depend only on its own prompt, seed, and budget (batched decode
is batch-composition-invariant by construction), so a fleet of replicas
must produce per-request tokens bit-identical to one engine serving the
same arrival stream — across every placement policy, dense and paged
KV, and voting and H2O eviction.  The harness here pins that matrix;
what placement *is* allowed to change (TTFT, imbalance, hit rates) is
covered in ``test_fleet_report.py``.

Placement policies themselves are unit-tested against stub replicas with
hand-set load signals, so each rule (round-robin cycling, least-loaded
ordering, deepest-prefix-match with least-loaded tiebreak) is pinned
independently of the serving stack.
"""

import numpy as np
import pytest

from repro.core.policies import H2OPolicy, VotingPolicy
from repro.experiments.serving import make_workload
from repro.serve import (
    FleetRouter,
    LeastLoadedPlacement,
    PlacementPolicy,
    PrefixAffinityPlacement,
    Request,
    RoundRobinPlacement,
    ServingEngine,
    ServingFleet,
    available_placements,
    make_placement,
)

PLACEMENTS = ("round_robin", "least_loaded", "prefix_affinity")


def _policy_factory(model, policy):
    if policy == "voting":
        return lambda: VotingPolicy(model.config.n_layers, reserved_length=4)
    return lambda: H2OPolicy(model.config.n_layers, recent_window=4)


def engine_kwargs(model, policy="voting", paged=True):
    kwargs = dict(
        policy_factory=_policy_factory(model, policy), max_batch_size=4
    )
    if paged:
        kwargs.update(paged=True, block_size=4)
    return kwargs


def conversations(model, n_requests=6, turns=2, seed=0):
    """Multi-turn arrival stream (later turns re-extend earlier prompts)."""
    return make_workload(
        n_requests=n_requests,
        turns=turns,
        vocab=model.config.vocab_size,
        seed=seed,
    )


class StubEngine:
    """A replica as the placement policies see one: three load signals."""

    def __init__(self, outstanding=0, free=0, match=0):
        self.outstanding_tokens = outstanding
        self.free_kv_capacity = free
        self._match = match

    def prefix_probe(self, request):
        return self._match


_REQ = Request("probe", np.arange(8), max_new_tokens=2)


class TestPlacementPolicies:
    def test_round_robin_cycles(self):
        policy = RoundRobinPlacement()
        engines = [StubEngine() for _ in range(3)]
        assert [policy.choose(_REQ, engines) for _ in range(7)] == [
            0, 1, 2, 0, 1, 2, 0,
        ]

    def test_least_loaded_prefers_fewest_outstanding(self):
        policy = LeastLoadedPlacement()
        engines = [StubEngine(outstanding=30), StubEngine(outstanding=10)]
        assert policy.choose(_REQ, engines) == 1

    def test_least_loaded_ties_break_on_free_capacity_then_index(self):
        policy = LeastLoadedPlacement()
        engines = [
            StubEngine(outstanding=10, free=2),
            StubEngine(outstanding=10, free=8),
        ]
        assert policy.choose(_REQ, engines) == 1
        # Fully tied: lowest index (deterministic, no RNG anywhere).
        engines = [StubEngine(outstanding=10, free=8) for _ in range(3)]
        assert policy.choose(_REQ, engines) == 0

    def test_prefix_affinity_deepest_match_wins_over_load(self):
        policy = PrefixAffinityPlacement()
        engines = [
            StubEngine(outstanding=0, match=4),
            StubEngine(outstanding=99, match=12),
        ]
        assert policy.choose(_REQ, engines) == 1

    def test_prefix_affinity_all_miss_falls_back_to_least_loaded(self):
        policy = PrefixAffinityPlacement()
        engines = [
            StubEngine(outstanding=30, match=0),
            StubEngine(outstanding=10, match=0),
        ]
        assert policy.choose(_REQ, engines) == 1

    def test_registry_and_unknown_name(self):
        assert available_placements() == sorted(PLACEMENTS)
        for name in PLACEMENTS:
            assert make_placement(name).name == name
        with pytest.raises(KeyError, match="unknown placement"):
            make_placement("sticky")

    def test_router_rejects_out_of_range_choice(self):
        class Broken(PlacementPolicy):
            name = "broken"

            def choose(self, request, engines):
                return len(engines)

        router = FleetRouter(Broken())
        with pytest.raises(ValueError, match="chose replica"):
            router.route(_REQ, [StubEngine(), StubEngine()])

    def test_router_records_placements(self):
        router = FleetRouter("round_robin")
        engines = [StubEngine(), StubEngine()]
        for i in range(4):
            router.route(
                Request(f"r{i}", np.arange(6), max_new_tokens=2), engines
            )
        assert router.placements == {"r0": 0, "r1": 1, "r2": 0, "r3": 1}


class TestFleetBasics:
    def test_rejects_empty_fleet(self, model):
        with pytest.raises(ValueError, match="at least one replica"):
            ServingFleet(model, replicas=0)

    def test_each_request_served_by_exactly_one_replica(self, model):
        workload = conversations(model)
        fleet = ServingFleet(model, replicas=3, **engine_kwargs(model))
        fleet.play(workload)
        served = [
            {s.request.request_id for s in engine.scheduler.results()}
            for engine in fleet.engines
        ]
        for i, mine in enumerate(served):
            for theirs in served[i + 1:]:
                assert not (mine & theirs)
        union = set().union(*served)
        assert union == {r.request_id for r in workload}
        # The recorded placement is where the request actually retired.
        for request in workload:
            rid = request.request_id
            assert rid in served[fleet.replica_of(rid)]

    def test_tokens_for_reads_through_the_placement(self, model):
        workload = conversations(model, n_requests=4, turns=1)
        fleet = ServingFleet(model, replicas=2, **engine_kwargs(model))
        handles = fleet.play(workload)
        for handle in handles:
            assert fleet.tokens_for(handle.request_id) == handle.result()

    def test_single_replica_fleet_is_the_engine(self, model):
        """replicas=1 routes everything to the only engine; reports and
        tokens match a bare ServingEngine on the same stream."""
        workload = conversations(model)
        kwargs = engine_kwargs(model)
        solo = ServingEngine(model, **kwargs)
        solo_tokens = {h.request_id: h.result() for h in solo.play(workload)}
        fleet = ServingFleet(model, replicas=1, **kwargs)
        fleet_tokens = {
            h.request_id: h.result() for h in fleet.play(workload)
        }
        assert fleet_tokens == solo_tokens
        report = fleet.report()
        assert report.total_rounds == solo.report().total_rounds
        assert report.load_imbalance == pytest.approx(1.0)


class TestFleetEquivalence:
    """The differential harness: fleet tokens == single-engine tokens."""

    _reference = {}

    def _solo_tokens(self, model, policy, paged):
        key = (policy, paged)
        if key not in self._reference:
            engine = ServingEngine(
                model, **engine_kwargs(model, policy, paged)
            )
            handles = engine.play(conversations(model))
            self._reference[key] = {
                h.request_id: h.result() for h in handles
            }
        return self._reference[key]

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("paged", [False, True], ids=["dense", "paged"])
    @pytest.mark.parametrize("policy", ["voting", "h2o"])
    def test_fleet_matches_single_engine(
        self, model, policy, paged, placement
    ):
        fleet = ServingFleet(
            model,
            replicas=2,
            placement=placement,
            **engine_kwargs(model, policy, paged),
        )
        handles = fleet.play(conversations(model))
        tokens = {h.request_id: h.result() for h in handles}
        assert tokens == self._solo_tokens(model, policy, paged)

    def test_equivalence_holds_at_three_replicas(self, model):
        fleet = ServingFleet(
            model,
            replicas=3,
            placement="prefix_affinity",
            **engine_kwargs(model),
        )
        handles = fleet.play(conversations(model))
        tokens = {h.request_id: h.result() for h in handles}
        assert tokens == self._solo_tokens(model, "voting", True)

"""Two-way scheduling: preemption, KV swapping, and the resource manager.

The contract under test, per mode:

- ``preempt="off"`` is the baseline: with capacity to spare all three
  modes are bit-identical (tokens, eviction logs, traces) — the
  KVResourceManager refactor must not change one-way scheduling.
- ``preempt="swap"`` is *always* bit-exact: a swapped-out sequence's KV
  blocks and eviction state are restored exactly, so its tokens match
  the never-preempted run even when preemptions fire.
- ``preempt="recompute"`` is bit-exact for sequences without a KV
  budget (prefill rebuilds the same cache the decode built); under a
  budget it is deterministic but may diverge (restart semantics).
- Under the overload preset both preempting modes retire 100% of the
  burst within a horizon at which one-way scheduling has not.
"""

import numpy as np
import pytest

from repro.core.policies.h2o import H2OPolicy
from repro.core.policies.extensions import TOVAPolicy
from repro.core.policies.voting import VotingPolicy
from repro.experiments import serving
from repro.serve import (
    Request,
    Scheduler,
    ServingCoSimulator,
    ServingEngine,
)


def make_requests(n=4, prompt_len=20, max_new=8, budget=None, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Request(
            f"r{i}",
            rng.integers(0, 64, size=prompt_len + int(rng.integers(0, 8))),
            max_new_tokens=max_new,
            arrival_time=int(rng.integers(0, 4)),
            seed=i,
            budget=budget,
        )
        for i in range(n)
    ]


def serve(model, requests, preempt, **kwargs):
    scheduler = Scheduler(model, preempt=preempt, **kwargs)
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


def tokens_and_evictions(scheduler, requests):
    return {
        r.request_id: (
            tuple(scheduler.tokens_for(r.request_id)),
            tuple(
                tuple(e)
                for s in scheduler.results()
                if s.request_id == r.request_id
                for e in s.evictions
            ),
        )
        for r in requests
    }


class TestBitCompatibilityWithCapacity:
    """With capacity to spare, every preempt mode is a no-op."""

    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("budget", [None, 12])
    def test_modes_identical_when_nothing_preempts(self, model, paged, budget):
        reference = None
        for mode in ("off", "recompute", "swap"):
            scheduler, report = serve(
                model,
                make_requests(budget=budget),
                preempt=mode,
                max_batch_size=4,
                paged=paged,
                block_size=4,
            )
            assert report.preemptions == 0
            outcome = tokens_and_evictions(scheduler, make_requests(budget=budget))
            trace_shape = [
                (r.round_index, r.num_prefills, r.num_decodes, r.num_swaps)
                for r in scheduler.trace
            ]
            if reference is None:
                reference = (outcome, trace_shape)
            else:
                assert outcome == reference[0]
                assert trace_shape == reference[1]

    def test_off_mode_report_has_no_preempt_summary(self, model):
        _, report = serve(model, make_requests(), preempt="off", max_batch_size=4)
        assert report.preempt == "off"
        assert "preemptions" not in report.summary()


class TestOverloadPreset:
    """The acceptance scenario: burst > pool."""

    @pytest.fixture(scope="class")
    def overload(self, model):
        workload = serving.make_workload(
            n_requests=6,
            preset="overload",
            compression_ratio=None,
            vocab=model.config.vocab_size,
            seed=0,
        )
        num_blocks = serving.overload_pool_blocks(
            workload, block_size=4, n_layers=model.config.n_layers, fraction=0.4
        )
        return workload, num_blocks

    def test_preset_actually_overloads(self, model, overload):
        workload, num_blocks = overload
        worsts = []
        for r in workload:
            capacity = r.prompt.shape[0] + r.max_new_tokens + 1
            worsts.append(-(-capacity // 4) * model.config.n_layers)
        assert max(worsts) <= num_blocks < sum(worsts)
        # One burst: every request arrives together.
        assert len({r.arrival_time for r in workload}) == 1

    def test_existing_presets_stay_bit_compatible(self, model):
        default = serving.make_workload(n_requests=4, seed=3)
        again = serving.make_workload(n_requests=4, seed=3, preset=None)
        assert [r.arrival_time for r in default] == [r.arrival_time for r in again]
        for a, b in zip(default, again):
            assert np.array_equal(a.prompt, b.prompt)
            assert (a.max_new_tokens, a.budget) == (b.max_new_tokens, b.budget)

    def test_preempting_modes_retire_everything_where_off_stalls(
        self, model, overload
    ):
        workload, num_blocks = overload
        horizons = {}
        tokens = {}
        reports = {}
        for mode in ("recompute", "swap"):
            scheduler, report = serve(
                model,
                workload,
                preempt=mode,
                max_batch_size=8,
                paged=True,
                block_size=4,
                num_blocks=num_blocks,
                prefix_caching=False,
            )
            assert scheduler.done, f"{mode} did not drain"
            assert len(report.requests) == len(workload)
            assert report.preemptions > 0, f"{mode} never preempted"
            horizons[mode] = report.total_rounds
            reports[mode] = report
            tokens[mode] = {
                r.request_id: tuple(scheduler.tokens_for(r.request_id))
                for r in workload
            }

        # One-way scheduling has not retired the burst at the horizon at
        # which both two-way modes finished it.
        horizon = max(horizons.values())
        off = Scheduler(
            model,
            preempt="off",
            max_batch_size=8,
            paged=True,
            block_size=4,
            num_blocks=num_blocks,
            prefix_caching=False,
        )
        for request in workload:
            off.submit(request)
        off_report = off.run(max_rounds=horizon)
        assert len(off_report.requests) + len(off_report.rejections) < len(
            workload
        ), "off mode kept up with the overload burst (not overloaded?)"

        # ... but scheduling never changes outputs: once off drains
        # completely, every request's tokens match both preempting modes
        # (workload is unbudgeted, so recompute is bit-exact too).
        off_report = off.run()
        assert off.done
        off_tokens = {
            r.request_id: tuple(off.tokens_for(r.request_id)) for r in workload
        }
        assert tokens["swap"] == off_tokens
        assert tokens["recompute"] == off_tokens

        # Swap traffic is visible in the report for swap mode only.
        assert reports["swap"].swap_out_blocks > 0
        assert reports["swap"].swap_outs == reports["swap"].swap_ins
        assert reports["swap"].host_peak_kv_slots > 0
        assert reports["recompute"].swap_out_blocks == 0

    def test_cosim_prices_swap_traffic_only_for_swap_mode(
        self, model, overload
    ):
        workload, num_blocks = overload
        cycles = {}
        for mode in ("off", "recompute", "swap"):
            scheduler = Scheduler(
                model,
                preempt=mode,
                max_batch_size=8,
                paged=True,
                block_size=4,
                num_blocks=num_blocks,
                prefix_caching=False,
            )
            for request in workload:
                scheduler.submit(request)
            scheduler.run()
            report = ServingCoSimulator(scheduler).replay()
            cycles[mode] = report
        assert cycles["swap"].swap_cycles > 0
        assert cycles["swap"].swap_bytes > 0
        assert cycles["swap"].swap_events > 0
        for mode in ("off", "recompute"):
            assert cycles[mode].swap_cycles == 0
            assert cycles[mode].swap_bytes == 0
            assert cycles[mode].swap_events == 0
        # Recompute's overhead is compute: it re-prefills preempted
        # sequences, so it prices more prefill cycles than swap.
        assert (
            cycles["recompute"].prefill_cycles > cycles["swap"].prefill_cycles
        )
        # Swap's summary carries the traffic; the others' stays clean.
        assert "swap_cycles" in cycles["swap"].summary()
        assert "swap_cycles" not in cycles["off"].summary()


class TestSwapExactness:
    """Swap must restore a preempted sequence bit-exactly — including
    eviction-policy state, through the snapshot hooks (voting, H2O) and
    through the retained-object fallback (TOVA)."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda n: VotingPolicy(n, reserved_length=4),
            lambda n: H2OPolicy(n, recent_window=4),
            lambda n: TOVAPolicy(n, protected_prefix=2),
        ],
        ids=["voting-snapshot", "h2o-snapshot", "tova-retained-object"],
    )
    def test_swapped_budgeted_sequences_match_off_run(self, model, factory):
        n_layers = model.config.n_layers
        rng = np.random.default_rng(7)
        # Two long budgeted background sequences plus an urgent arrival:
        # EDF preempts a background victim mid-generation, well after
        # its policy accumulated eviction state.
        workload = [
            Request(
                f"bg{i}",
                rng.integers(0, 64, size=24),
                max_new_tokens=24,
                arrival_time=0,
                seed=i,
                budget=12,
                deadline=200,
            )
            for i in range(2)
        ] + [
            Request(
                "urgent",
                np.arange(8),
                max_new_tokens=4,
                arrival_time=6,
                seed=9,
                deadline=14,
            )
        ]
        outcomes = {}
        for mode in ("off", "swap"):
            engine = ServingEngine(
                model,
                admission="edf",
                policy_factory=lambda: factory(n_layers),
                max_batch_size=2,
                paged=True,
                block_size=4,
                preempt=mode,
            )
            handles = engine.play(workload)
            report = engine.report()
            if mode == "swap":
                assert report.preemptions > 0, "scenario failed to preempt"
            outcomes[mode] = {
                h.request_id: tuple(h.result()) for h in handles
            }
        assert outcomes["swap"] == outcomes["off"]

    def test_recompute_exact_without_budget(self, model):
        rng = np.random.default_rng(3)
        workload = [
            Request(
                f"bg{i}",
                rng.integers(0, 64, size=20),
                max_new_tokens=20,
                arrival_time=0,
                seed=i,
                deadline=200,
            )
            for i in range(2)
        ] + [
            Request(
                "urgent", np.arange(6), max_new_tokens=3, arrival_time=5,
                seed=5, deadline=12,
            )
        ]
        outcomes = {}
        for mode in ("off", "recompute"):
            engine = ServingEngine(
                model, admission="edf", max_batch_size=2, preempt=mode
            )
            handles = engine.play(workload)
            if mode == "recompute":
                assert engine.report().preemptions > 0
            outcomes[mode] = {h.request_id: tuple(h.result()) for h in handles}
        assert outcomes["recompute"] == outcomes["off"]


class TestDeadlinePressure:
    """Engine admission policies trigger preemption under pressure."""

    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("mode", ["recompute", "swap"])
    def test_urgent_arrival_preempts_and_meets_deadline(
        self, model, paged, mode
    ):
        rng = np.random.default_rng(1)
        workload = [
            Request(
                f"bg{i}",
                rng.integers(0, 64, size=24),
                max_new_tokens=30,
                arrival_time=0,
                seed=i,
                budget=12,
                deadline=200,
            )
            for i in range(2)
        ] + [
            Request(
                "urgent", np.arange(8), max_new_tokens=4, arrival_time=3,
                seed=9, deadline=12,
            )
        ]

        def play(preempt):
            engine = ServingEngine(
                model,
                admission="edf",
                max_batch_size=2,
                paged=paged,
                block_size=4,
                preempt=preempt,
            )
            engine.play(workload)
            report = engine.report()
            urgent = next(
                r for r in report.requests if r["request_id"] == "urgent"
            )
            return report, urgent

        off_report, off_urgent = play("off")
        assert off_report.preemptions == 0
        assert off_urgent["deadline_miss"], "baseline not under pressure"

        report, urgent = play(mode)
        assert report.preemptions > 0
        assert not urgent["deadline_miss"]
        # The victim still finishes, and its row records the preemption.
        victim_rows = [r for r in report.requests if r["preemptions"] > 0]
        assert victim_rows and all(
            r["request_id"].startswith("bg") for r in victim_rows
        )

    def test_fifo_never_preempts_for_later_arrivals(self, model):
        # Under FIFO a later arrival never outranks a running sequence,
        # so slot pressure alone cannot preempt.
        workload = [
            Request("a", np.arange(10), max_new_tokens=20, arrival_time=0, seed=0),
            Request("b", np.arange(10), max_new_tokens=4, arrival_time=2, seed=1),
        ]
        engine = ServingEngine(
            model, admission="fifo", max_batch_size=1, preempt="swap"
        )
        engine.play(workload)
        assert engine.report().preemptions == 0


class TestRunMaxRounds:
    def test_run_bounded_then_resumable(self, model):
        scheduler = Scheduler(model, max_batch_size=1)
        for request in make_requests(n=3):
            scheduler.submit(request)
        partial = scheduler.run(max_rounds=2)
        assert partial.total_rounds >= 2 and not scheduler.done
        final = scheduler.run()
        assert scheduler.done
        assert len(final.requests) == 3

    def test_run_rejects_nonpositive_horizon(self, model):
        scheduler = Scheduler(model)
        with pytest.raises(ValueError, match="max_rounds"):
            scheduler.run(max_rounds=0)

    def test_invalid_preempt_mode_rejected(self, model):
        with pytest.raises(ValueError, match="preempt"):
            Scheduler(model, preempt="eject")

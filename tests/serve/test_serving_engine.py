"""Async serving engine: streaming submission, handles, SLA admission.

The engine's contract splits in two: *what* is generated is pinned by the
scheduler's equivalence guarantees (streamed submissions produce exactly
the tokens of a pre-submitted run — and of solo decode), while *when*
things happen is the engine's own behaviour under test here: streaming
handles, incremental retrieval, admission ordering under contention,
structured rejections with a retry path, and TTFT/deadline metrics end
to end (rounds in the report, cycles in the co-simulation).
"""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.core.engine import budget_from_ratio
from repro.core.policies import VotingPolicy
from repro.experiments.serving import make_workload
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import (
    EDFAdmission,
    FIFOAdmission,
    PriorityAdmission,
    Request,
    Scheduler,
    ServingEngine,
    make_admission,
)


@pytest.fixture(scope="module")
def model():
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))


def make_requests(model, count, seed=3, arrival=lambda i: 0, **extra):
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(count):
        prompt_len = int(rng.integers(12, 32))
        requests.append(
            Request(
                request_id=f"req-{i}",
                prompt=rng.integers(0, model.config.vocab_size, size=prompt_len),
                max_new_tokens=int(rng.integers(5, 10)),
                arrival_time=arrival(i),
                seed=i,
                budget=budget_from_ratio(0.5, prompt_len, minimum=8),
                **extra,
            )
        )
    return requests


class TestStreamingSubmission:
    def test_streamed_tokens_match_presubmitted_run(self, model):
        """Submitting requests mid-loop produces exactly the tokens of
        the batch-mode scheduler run on the same workload."""
        requests = make_requests(model, 5, arrival=lambda i: 3 * i)
        scheduler = Scheduler(model, max_batch_size=3)
        for request in requests:
            scheduler.submit(
                Request(
                    request_id=request.request_id,
                    prompt=request.prompt,
                    max_new_tokens=request.max_new_tokens,
                    arrival_time=request.arrival_time,
                    seed=request.seed,
                    budget=request.budget,
                )
            )
        scheduler.run()

        engine = ServingEngine(model, max_batch_size=3)
        loop = engine.run_forever()
        pending = sorted(requests, key=lambda r: r.arrival_time)
        handles = []
        index = 0
        while index < len(pending) or not engine.drained:
            while (
                index < len(pending)
                and pending[index].arrival_time <= engine.now
            ):
                handles.append(engine.submit(pending[index]))
                index += 1
            next(loop)
        for handle in handles:
            assert handle.result() == scheduler.tokens_for(handle.request_id)

    def test_incremental_retrieval_and_status_transitions(self, model):
        """Handles stream tokens as they are produced and walk the
        queued -> prefilling -> running -> finished lifecycle."""
        engine = ServingEngine(model, prefill_chunk=4, max_batch_size=2)
        request = make_requests(model, 1)[0]
        handle = engine.submit(request)
        assert handle.status in ("queued", "prefilling")
        seen_prefilling = False
        streamed = []
        while not handle.done:
            if handle.status == "prefilling":
                seen_prefilling = True
                assert handle.tokens == []
            engine.step()
            streamed.extend(handle.new_tokens())
        assert seen_prefilling
        assert streamed == handle.result() == handle.tokens
        assert handle.new_tokens() == []  # cursor consumed everything
        assert handle.status == "finished"
        assert handle.finish_reason in ("length", "eos")

    def test_past_arrivals_are_bumped_to_now(self, model):
        """A request cannot arrive in the past: wait/TTFT metrics stay
        non-negative for late submissions."""
        engine = ServingEngine(model, max_batch_size=2)
        first = engine.submit(make_requests(model, 1)[0])
        for _ in range(4):
            engine.step()
        late = make_requests(model, 2, seed=8)[1]
        late.request_id = "late"
        assert late.arrival_time == 0
        handle = engine.submit(late)
        assert handle.request.arrival_time == engine.now
        engine.run_until_drained()
        report = engine.report()
        for row in report.requests:
            assert row["wait_rounds"] >= 0
            assert row["ttft_rounds"] >= 0
        assert first.done and handle.done

    def test_play_accepts_a_generator(self, model):
        """play() must not lose handles when fed a one-shot iterable."""
        requests = make_requests(model, 3)
        engine = ServingEngine(model, max_batch_size=2)
        handles = engine.play(r for r in requests)
        assert [h.request_id for h in handles] == [r.request_id for r in requests]
        assert all(h.done for h in handles)

    def test_play_runs_workload_to_completion(self, model):
        """play() feeds a pre-timed arrival stream through the streaming
        path and drains it."""
        workload = make_workload(
            n_requests=5,
            arrival="bursty",
            prompt_dist="lognormal",
            deadline_slack=2.0,
            vocab=model.config.vocab_size,
            seed=1,
        )
        engine = ServingEngine(model, admission="edf", prefill_chunk=8,
                               max_batch_size=3)
        handles = engine.play(workload)
        assert [h.request_id for h in handles] == [r.request_id for r in workload]
        assert all(h.done for h in handles)
        report = engine.report()
        assert len(report.requests) == len(workload)
        assert report.mean_ttft >= 0
        assert {row["deadline"] is not None for row in report.requests} == {True}


class TestRejectionPath:
    def test_rejection_is_structured_and_retryable(self, model):
        """An unsatisfiable paged request yields a rejected handle with
        the structured reason; a shrunk resubmission under the same id
        is accepted (the degrade path the issue asks for)."""
        engine = ServingEngine(
            model, paged=True, block_size=4, num_blocks=6, max_batch_size=2
        )
        big = Request("big", np.arange(1, 40), max_new_tokens=30, seed=0)
        handle = engine.submit(big)
        assert handle.status == "rejected"
        assert handle.done
        assert handle.rejection.reason == "pool_too_small"
        assert handle.rejection.needed_blocks > handle.rejection.pool_blocks
        with pytest.raises(RuntimeError, match="rejected"):
            handle.result()

        # Unbudgeted so the whole trajectory (7 prompt + 4 decode + 1)
        # fits the 6-block pool exactly; a *budgeted* retry would now be
        # honestly rejected, since the shrink-to-budget eviction can
        # copy-on-write the prefix-registered prompt blocks on top of
        # the table peak (the accounting the resource manager added).
        retry = Request("big", np.arange(1, 8), max_new_tokens=4, seed=0)
        retry_handle = engine.submit(retry)
        assert retry_handle.status != "rejected"
        engine.run_until_drained()
        assert retry_handle.result() == engine.tokens_for("big")

        report = engine.report()
        assert len(report.rejections) == 1
        row = report.rejections[0]
        assert row["request_id"] == "big"
        assert row["reason"] == "pool_too_small"
        assert row["needed_blocks"] > row["pool_blocks"]
        assert report.summary()["rejected"] == 1

    def test_scheduler_strict_mode_still_raises_but_records(self, model):
        """The legacy strict submit keeps raising — and now also leaves
        the structured record in the report."""
        scheduler = Scheduler(
            model, paged=True, block_size=4, num_blocks=4, max_batch_size=2
        )
        with pytest.raises(ValueError, match="blocks"):
            scheduler.submit(Request("big", np.arange(1, 9), max_new_tokens=8))
        assert scheduler.report().rejections[0]["reason"] == "pool_too_small"


class TestAdmissionOrdering:
    def _contended(self, model, engine, deadlines=None, priorities=None):
        """Four same-shape requests arriving at once into a 1-slot batch:
        admission order is purely the policy's choice."""
        rng = np.random.default_rng(0)
        prompt = rng.integers(0, model.config.vocab_size, size=12)
        handles = []
        for i in range(4):
            handles.append(
                engine.submit(
                    Request(
                        request_id=f"r{i}",
                        prompt=prompt,
                        max_new_tokens=3,
                        deadline=None if deadlines is None else deadlines[i],
                        priority=0 if priorities is None else priorities[i],
                        seed=i,
                    )
                )
            )
        engine.run_until_drained()
        report = engine.report()
        admitted_at = {row["request_id"]: row["admitted"] for row in report.requests}
        return handles, admitted_at

    def test_edf_admits_in_deadline_order(self, model):
        engine = ServingEngine(model, admission="edf", max_batch_size=1)
        deadlines = [40, 10, 30, 20]
        _, admitted_at = self._contended(model, engine, deadlines=deadlines)
        order = sorted(admitted_at, key=admitted_at.get)
        assert order == ["r1", "r3", "r2", "r0"]

    def test_priority_admits_high_first(self, model):
        engine = ServingEngine(
            model, admission=PriorityAdmission(aging=0.0), max_batch_size=1
        )
        _, admitted_at = self._contended(model, engine, priorities=[0, 5, 2, 5])
        order = sorted(admitted_at, key=admitted_at.get)
        assert order[:2] == ["r1", "r3"]  # ties broken by submit order
        assert order[2:] == ["r2", "r0"]

    def test_fifo_default_matches_plain_scheduler(self, model):
        """FIFO admission is the scheduler default: same admission
        rounds either way."""
        requests = make_requests(model, 4, arrival=lambda i: i)
        plain = Scheduler(model, max_batch_size=2)
        for r in requests:
            plain.submit(
                Request(r.request_id, r.prompt, r.max_new_tokens,
                        arrival_time=r.arrival_time, seed=r.seed,
                        budget=r.budget)
            )
        plain_report = plain.run()
        engine = ServingEngine(model, admission="fifo", max_batch_size=2)
        engine.play(requests)
        engine_report = engine.report()
        plain_rows = {r["request_id"]: r["admitted"] for r in plain_report.requests}
        engine_rows = {r["request_id"]: r["admitted"] for r in engine_report.requests}
        assert plain_rows == engine_rows

    def test_make_admission_factory(self):
        assert isinstance(make_admission("fifo"), FIFOAdmission)
        assert isinstance(make_admission("edf"), EDFAdmission)
        policy = make_admission("priority", aging=0.25)
        assert isinstance(policy, PriorityAdmission) and policy.aging == 0.25
        with pytest.raises(KeyError):
            make_admission("lifo")
        with pytest.raises(ValueError):
            PriorityAdmission(aging=-1)


class TestEngineMetrics:
    def test_ttft_and_deadline_metrics_end_to_end(self, model):
        """Deadline misses show up in rows, aggregates, and summary; a
        generously-slack workload has none."""
        tight = make_requests(model, 3, deadline=1)  # impossible deadlines
        for i, request in enumerate(tight):
            request.arrival_time = 0
            request.deadline = 1
        engine = ServingEngine(model, max_batch_size=1)
        for request in tight:
            engine.submit(request)
        engine.run_until_drained()
        report = engine.report()
        assert report.deadline_misses >= 2
        assert 0 < report.deadline_miss_rate <= 1
        assert report.summary()["deadline_miss_rate"] == report.deadline_miss_rate
        for row in report.requests:
            assert row["deadline_miss"] == (row["finished"] > row["deadline"])
            assert row["ttft_rounds"] == row["first_token"] - row["arrival"]

    def test_cosim_reports_ttft_cycles(self, model):
        """The engine's trace prices TTFT in cycles for every request."""
        engine = ServingEngine(model, prefill_chunk=6, max_batch_size=2)
        requests = make_requests(model, 3, arrival=lambda i: 2 * i)
        for request in requests:
            engine.submit(request)
        engine.run_until_drained()
        hw = engine.cosim()
        assert set(hw.ttft_cycles) == {r.request_id for r in requests}
        assert all(v > 0 for v in hw.ttft_cycles.values())
        assert hw.summary()["mean_ttft_cycles"] == hw.mean_ttft_cycles

    def test_tick_stream_accounts_every_token(self, model):
        """EngineTick admitted/finished/tokens reconcile with the final
        report."""
        engine = ServingEngine(model, prefill_chunk=5, max_batch_size=2)
        requests = make_requests(model, 3)
        for request in requests:
            engine.submit(request)
        ticks = engine.run_until_drained()
        produced = sum(t.produced for t in ticks)
        admitted = [rid for t in ticks for rid in t.admitted]
        finished = [rid for t in ticks for rid in t.finished]
        report = engine.report()
        assert produced == report.total_tokens
        assert sorted(admitted) == sorted(r.request_id for r in requests)
        assert sorted(finished) == sorted(r.request_id for r in requests)


class TestRicherWorkloads:
    def test_default_workload_unchanged(self, model):
        """The extended generator reproduces the legacy trace bit-for-bit
        at default settings (artifact stability)."""
        workload = make_workload(n_requests=4, seed=0)
        assert [r.request_id for r in workload] == [f"req-{i}" for i in range(4)]
        assert all(r.deadline is None and r.priority == 0 for r in workload)
        # Regenerate: deterministic.
        again = make_workload(n_requests=4, seed=0)
        for a, b in zip(workload, again):
            assert np.array_equal(a.prompt, b.prompt)
            assert a.arrival_time == b.arrival_time

    @pytest.mark.parametrize("dist", ["lognormal", "zipf"])
    def test_heavy_tailed_prompts_bounded(self, dist):
        workload = make_workload(
            n_requests=64, prompt_dist=dist, shared_prefix=0, seed=2
        )
        lengths = [r.prompt.shape[0] for r in workload]
        assert min(lengths) >= 12
        assert max(lengths) <= 4 * 48
        assert len(set(lengths)) > 4

    def test_bursty_arrivals_cluster(self):
        workload = make_workload(
            n_requests=16, arrival="bursty", burst_size=4, seed=3
        )
        arrivals = [r.arrival_time for r in workload]
        for start in range(0, 16, 4):
            assert len(set(arrivals[start : start + 4])) == 1
        assert len(set(arrivals)) >= 3

    def test_poisson_arrivals_can_coincide(self):
        workload = make_workload(n_requests=32, arrival="poisson",
                                 mean_interarrival=1.0, seed=4)
        arrivals = [r.arrival_time for r in workload]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) < len(arrivals)  # simultaneous arrivals

    def test_deadlines_and_priorities(self):
        workload = make_workload(
            n_requests=12, deadline_slack=1.5, priority_levels=3, seed=5
        )
        for request in workload:
            assert request.deadline >= request.arrival_time
        assert {r.priority for r in workload} <= {0, 1, 2}
        assert len({r.priority for r in workload}) > 1

    def test_multi_turn_conversations_share_prefixes(self, model):
        """Turn t's prompt starts with turn t-1's whole prompt, and the
        re-hit shows up as prefix-cache hits in a paged serve."""
        workload = make_workload(
            n_requests=2, turns=3, vocab=model.config.vocab_size, seed=6
        )
        assert len(workload) == 6
        by_conv = {}
        for request in workload:
            conv = str(request.request_id).split(".")[0]
            by_conv.setdefault(conv, []).append(request)
        for conv_requests in by_conv.values():
            assert len(conv_requests) == 3
            for prev, nxt in zip(conv_requests, conv_requests[1:]):
                assert nxt.arrival_time > prev.arrival_time
                assert nxt.prompt.shape[0] > prev.prompt.shape[0]
                assert np.array_equal(
                    nxt.prompt[: prev.prompt.shape[0]], prev.prompt
                )
        engine = ServingEngine(model, paged=True, block_size=4,
                               max_batch_size=2)
        engine.play(workload)
        report = engine.report()
        assert report.prefix_hits > 0
        assert report.prefill_tokens_saved > 0

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            make_workload(prompt_dist="pareto")
        with pytest.raises(ValueError):
            make_workload(arrival="uniform")
        with pytest.raises(ValueError):
            make_workload(deadline_slack=0)
        with pytest.raises(ValueError):
            make_workload(turns=0)

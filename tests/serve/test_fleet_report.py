"""Fleet reporting, workload replay, and the serve-fleet CLI.

The FleetReport aggregates are what placement policies compete on, so
each one is pinned against a hand-computed value from the per-replica
reports.  Workload save/load is a JSONL round-trip over every Request
field (the replay contract: a saved stream must reproduce the original
bit-for-bit through any benchmark).  ``run_fleet`` is the experiment
that must show the headline result — prefix-affinity routing strictly
beats round-robin on cross-fleet prefix hit rate for multi-turn
conversations — and the CLI wraps it end to end.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.policies import VotingPolicy
from repro.experiments import serving
from repro.serve import FleetReport, Request, ServingFleet


def engine_kwargs(model):
    return dict(
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=4,
        paged=True,
        block_size=4,
    )


class TestFleetReport:
    def test_empty_report_defaults(self):
        report = FleetReport()
        assert report.num_replicas == 0
        assert report.total_tokens == 0
        assert report.total_rounds == 0
        assert report.load_imbalance == 0.0
        assert report.mean_ttft == 0.0
        assert report.prefix_token_hit_rate == 0.0
        assert report.deadline_miss_rate == 0.0

    @pytest.fixture(scope="class")
    def played(self, model):
        fleet = ServingFleet(
            model,
            replicas=2,
            placement="round_robin",
            **engine_kwargs(model),
        )
        fleet.play(
            serving.make_workload(
                n_requests=6, turns=2, vocab=model.config.vocab_size, seed=0
            )
        )
        return fleet, fleet.report()

    def test_aggregates_match_per_replica_reports(self, played):
        fleet, report = played
        per_replica = [e.report() for e in fleet.engines]
        assert report.tokens_per_replica == [
            r.total_tokens for r in per_replica
        ]
        assert report.total_tokens == sum(report.tokens_per_replica)
        assert report.total_rounds == max(
            r.total_rounds for r in per_replica
        )
        tokens = report.tokens_per_replica
        assert report.load_imbalance == pytest.approx(
            max(tokens) / (sum(tokens) / len(tokens))
        )
        assert report.prefix_token_hit_rate == pytest.approx(
            sum(r.prefix_tokens_hit for r in per_replica)
            / sum(r.prompt_tokens_seen for r in per_replica)
        )

    def test_pooled_rows_carry_their_replica(self, played):
        fleet, report = played
        for row in report.requests:
            assert row["replica"] == fleet.replica_of(row["request_id"])
        assert len(report.requests) == len(report.placements)

    def test_summary_is_flat_and_complete(self, played):
        _, report = played
        summary = report.summary()
        assert summary["placement"] == "round_robin"
        assert summary["replicas"] == 2
        assert summary["tokens"] == report.total_tokens
        assert 0.0 < summary["prefix_token_hit_rate"] < 1.0
        # No deadlines in this workload: the key stays out of the table.
        assert "deadline_miss_rate" not in summary

    def test_deadline_misses_pool_across_replicas(self, model):
        fleet = ServingFleet(model, replicas=2, **engine_kwargs(model))
        fleet.play(
            serving.make_workload(
                n_requests=6,
                deadline_slack=0.5,
                vocab=model.config.vocab_size,
                seed=1,
            )
        )
        summary = fleet.report().summary()
        assert 0.0 <= summary["deadline_miss_rate"] <= 1.0


class TestWorkloadRoundTrip:
    def test_every_field_survives(self, tmp_path):
        original = [
            Request(
                "chat-0",
                np.arange(9) % 5,
                max_new_tokens=6,
                arrival_time=3,
                eos=2,
                seed=11,
                budget=8,
                deadline=40,
                priority=-1,
            ),
            Request(
                "beam-0",
                np.array([1, 2, 3, 4]),
                max_new_tokens=4,
                beam_width=2,
                length_penalty=0.7,
            ),
            Request("fork-0", np.arange(12), max_new_tokens=5, n=3, seed=2),
        ]
        path = tmp_path / "workload.jsonl"
        assert serving.save_workload(original, path) == path
        loaded = serving.load_workload(path)
        assert len(loaded) == len(original)
        for before, after in zip(original, loaded):
            assert np.array_equal(before.prompt, after.prompt)
            assert after.prompt.dtype == np.int64
            for name in (
                "request_id", "max_new_tokens", "arrival_time", "eos",
                "seed", "budget", "deadline", "priority", "n",
                "beam_width", "length_penalty",
            ):
                assert getattr(before, name) == getattr(after, name), name

    def test_replayed_workload_reproduces_the_benchmark(self, tmp_path):
        workload = serving.make_workload(n_requests=4, seed=5)
        path = tmp_path / "w.jsonl"
        serving.save_workload(workload, path)
        direct = serving.run(batch_sizes=(4,), workload=workload)
        replayed = serving.run(
            batch_sizes=(4,), workload=serving.load_workload(path)
        )

        def stable(rows):
            # tokens/s is host wall-clock — everything else is modeled
            # and must replay exactly.
            return [
                {k: v for k, v in row.items() if k != "tokens/s"}
                for row in rows
            ]

        assert stable(replayed.rows) == stable(direct.rows)

    def test_bad_record_reports_path_and_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        good = json.dumps(
            {"request_id": "r0", "prompt": [1, 2], "max_new_tokens": 2}
        )
        path.write_text(good + "\n" + '{"prompt": [1, 2]}\n')
        with pytest.raises(ValueError, match="broken.jsonl:2"):
            serving.load_workload(path)


class TestRunFleet:
    def test_affinity_strictly_beats_round_robin_hit_rate(self, model):
        """The headline: multi-turn conversations routed with prefix
        affinity re-hit their own replica's trie; round-robin scatters
        them.  Tokens are asserted identical inside run_fleet itself."""
        result = serving.run_fleet(
            replicas=2,
            placements=("round_robin", "prefix_affinity"),
            n_requests=6,
            turns=3,
            model=model,
        )
        rates = {
            row["placement"]: row["token_hit_rate"] for row in result.rows
        }
        assert rates["prefix_affinity"] > rates["round_robin"]
        assert result.experiment_id == "serving_fleet"

    def test_cosim_rows_price_the_fleet(self, model):
        result = serving.run_fleet(
            replicas=2,
            placements=("round_robin",),
            n_requests=4,
            turns=2,
            model=model,
            cosim=True,
            tp=2,
            interconnect_gb_s=32.0,
        )
        (row,) = result.rows
        assert row["fleet_cycles"] > 0
        assert row["allreduce_cyc"] > 0
        assert row["fleet_tokens/s"] > 0

    def test_rejects_bad_arguments(self, model):
        with pytest.raises(ValueError, match="replicas"):
            serving.run_fleet(replicas=0, model=model)
        with pytest.raises(ValueError, match="cosim_shapes"):
            serving.run_fleet(model=model, cosim_shapes="13b")


class TestServeFleetCLI:
    def test_json_artifact(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_RESULTS_DIR", tmp_path)
        out = tmp_path / "fleet.json"
        assert main(
            [
                "serve-fleet",
                "--replicas", "2",
                "--requests", "4",
                "--turns", "2",
                "--placement", "round_robin,prefix_affinity",
                "--json", str(out),
            ]
        ) == 0
        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "serving_fleet_bench"
        assert [row["placement"] for row in payload["rows"]] == [
            "round_robin", "prefix_affinity",
        ]
        assert (tmp_path / "serving_fleet_bench.txt").exists()

    def test_workload_file_replay(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_RESULTS_DIR", tmp_path)
        path = tmp_path / "w.jsonl"
        serving.save_workload(
            serving.make_workload(n_requests=4, turns=2, seed=3), path
        )
        assert main(
            [
                "serve-fleet",
                "--placement", "least_loaded",
                "--workload-file", str(path),
            ]
        ) == 0
        assert "replayed" in capsys.readouterr().out

    def test_tp_requires_cosim(self):
        with pytest.raises(SystemExit):
            main(["serve-fleet", "--tp", "2"])

    def test_unknown_placement_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve-fleet", "--placement", "sticky"])

    def test_serve_bench_workload_file_is_default_mode_only(self, tmp_path):
        path = tmp_path / "w.jsonl"
        serving.save_workload(serving.make_workload(n_requests=2), path)
        with pytest.raises(SystemExit):
            main(
                [
                    "serve-bench",
                    "--workload-file", str(path),
                    "--spec-decode",
                ]
            )

"""Radix-trie prefix-cache unit tests.

Covers the trie-specific behaviors on top of the shared coverage in
``test_paging.py::TestPrefixCache``: content dispatch under forced hash
collisions (the chained predecessor leaked pinned blocks there),
single-scan LRU reclaim with parent re-queue, TTL expiry, partial-tail
matching, snapshot gating for budgeted adopters, and the token-weighted
hit metrics.
"""

import numpy as np
import pytest

from repro.serve.paging import BlockPool
from repro.serve.prefix_cache import PrefixCache


def make_blocks(pool, n_layers=2):
    return [pool.allocate() for _ in range(n_layers)]


def retire(pool, blocks):
    for block in blocks:
        pool.release(block)


class TestCollisionSafety:
    def test_forced_hash_collision_keeps_both_blocks_reachable(self):
        """Python ints hash modulo 2**61 - 1, so ``2**61`` and ``1``
        collide; the chained cache's ``hash((parent, tokens))`` keys
        could therefore alias two different blocks, chaining newcomers
        under mismatched content and pinning unreachable pool blocks.
        The trie dispatches on *content*, so colliding labels coexist as
        siblings, each matchable, and nothing leaks."""
        assert hash(2**61) == hash(1)  # the adversarial pair
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        a = (1, 7, 7, 7)
        b = (2**61, 7, 7, 7)
        root = cache.root("p")
        blocks_a = make_blocks(pool)
        blocks_b = make_blocks(pool)
        node_a = cache.insert(root, a, blocks_a, None, pool)
        node_b = cache.insert(root, b, blocks_b, None, pool)
        assert node_a is not node_b
        assert cache.num_entries == 2

        hit_a = cache.match(a + (9,), "p")
        hit_b = cache.match(b + (9,), "p")
        assert hit_a.nodes[0].layer_block_ids == blocks_a
        assert hit_b.nodes[0].layer_block_ids == blocks_b

        # No pinned leak: once the registrants retire, everything can go.
        retire(pool, blocks_a)
        retire(pool, blocks_b)
        assert cache.reclaim(pool, 100) == 4
        assert pool.num_free == pool.num_blocks

    def test_duplicate_insert_returns_existing_without_retaining(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        root = cache.root("p")
        blocks = make_blocks(pool)
        node = cache.insert(root, (1, 2, 3, 4), blocks, None, pool)
        other = make_blocks(pool)
        again = cache.insert(root, (1, 2, 3, 4), other, None, pool)
        assert again is node
        assert all(pool.refcount(b) == 2 for b in blocks)
        assert all(pool.refcount(b) == 1 for b in other)  # not retained

    def test_snapshot_upgrade_on_pure_reregistration(self):
        """A tainted registrant leaves ``policy_state=None``; a later
        pure registrant of the same content fills it in, re-enabling
        budgeted adoption of the block."""
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        root = cache.root("p")
        blocks = make_blocks(pool)
        node = cache.insert(root, (1, 2, 3, 4), blocks, None, pool)
        assert cache.match(np.arange(1, 9), "p", budgeted=True).shared_length == 0

        snapshot = [np.arange(4.0), np.arange(4.0)]
        again = cache.insert(root, (1, 2, 3, 4), make_blocks(pool), snapshot, pool)
        assert again is node and node.policy_state is snapshot
        hit = cache.match(np.arange(1, 9), "p", budgeted=True)
        assert hit.shared_length == 4
        assert hit.policy_length == 4


class TestEviction:
    def test_single_reclaim_drains_chained_parents(self):
        """Dropping a leaf exposes its parent; the parent re-queue must
        let ONE reclaim call walk a whole idle chain tip-to-root (the
        quadratic predecessor needed a full table re-sort per drop)."""
        pool = BlockPool(2, 3, 4, num_blocks=64)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(17)
        parent = cache.root("p")
        held = []
        for start in range(0, 16, 4):
            blocks = make_blocks(pool)
            held += blocks
            parent = cache.insert(parent, prompt[start : start + 4], blocks, None, pool)
        retire(pool, held)
        assert cache.num_entries == 4
        # One call, no rescans: the full chain drains deepest-first.
        assert cache.reclaim(pool, 8) == 8
        assert cache.num_entries == 0
        assert pool.num_free == pool.num_blocks

    def test_reclaim_prefers_lru_across_independent_chains(self):
        pool = BlockPool(2, 3, 4, num_blocks=64)
        cache = PrefixCache(block_size=4)
        root = cache.root("p")
        cold = make_blocks(pool)
        cache.insert(root, (1, 1, 1, 1), cold, None, pool)
        warm = make_blocks(pool)
        cache.insert(root, (2, 2, 2, 2), warm, None, pool)
        retire(pool, cold)
        retire(pool, warm)
        cache.match([1, 1, 1, 1, 9], "p")  # re-touch the first chain
        assert cache.reclaim(pool, 2) == 2
        # The untouched ("warm"-inserted but older-used) entry went.
        assert cache.match([2, 2, 2, 2, 9], "p").shared_length == 0
        assert cache.match([1, 1, 1, 1, 9], "p").shared_length == 4

    def test_pinned_entries_deferred_not_lost(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        blocks = make_blocks(pool)
        cache.insert(cache.root("p"), (1, 2, 3, 4), blocks, None, pool)
        assert cache.reclaim(pool, 10) == 0  # pinned by the live sequence
        retire(pool, blocks)
        assert cache.reclaim(pool, 10) == 2  # still on the heap

    def test_ttl_expires_idle_entries(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4, ttl=3)
        old = make_blocks(pool)
        cache.insert(cache.root("p"), (1, 2, 3, 4), old, None, pool)
        retire(pool, old)
        for _ in range(5):  # idle clock ticks
            cache.match([9, 9], "p")
        assert cache.expire(pool) == 2
        assert cache.num_entries == 0
        # A fresh entry survives housekeeping.
        fresh = make_blocks(pool)
        cache.insert(cache.root("p"), (5, 6, 7, 8), fresh, None, pool)
        assert cache.expire(pool) == 0
        assert cache.num_entries == 1

    def test_ttl_housekeeping_runs_on_insert(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4, ttl=2)
        old = make_blocks(pool)
        cache.insert(cache.root("p"), (1, 2, 3, 4), old, None, pool)
        retire(pool, old)
        for _ in range(4):
            cache.match([9, 9], "p")
        fresh = make_blocks(pool)
        cache.insert(cache.root("p"), (5, 6, 7, 8), fresh, None, pool)
        assert cache.num_entries == 1  # the idle entry expired in passing

    def test_insert_under_evicted_node_raises(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        blocks = make_blocks(pool)
        node = cache.insert(cache.root("p"), (1, 2, 3, 4), blocks, None, pool)
        retire(pool, blocks)
        assert cache.reclaim(pool, 2) == 2
        with pytest.raises(RuntimeError, match="evicted"):
            cache.insert(node, (5, 6, 7, 8), make_blocks(pool), None, pool)


class TestPartialTail:
    def test_partial_tail_picks_longest_common_run(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        root = cache.root("p")
        short = make_blocks(pool)
        cache.insert(root, (1, 2, 9, 9), short, None, pool)
        long = make_blocks(pool)
        cache.insert(root, (1, 2, 3, 9), long, None, pool)
        hit = cache.match([1, 2, 3, 4, 5], "p")
        assert hit.tail_node.layer_block_ids == long
        assert hit.tail_length == 3
        assert hit.shared_length == 3
        assert hit.parent is root  # registration restarts at the root

    def test_all_but_one_token_is_covered(self):
        """The headline property: sharing all but the last token of a
        resident prompt covers every row but the live one."""
        pool = BlockPool(2, 3, 4, num_blocks=64)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(12)
        parent = cache.root("p")
        for start in (0, 4, 8):
            parent = cache.insert(
                parent, prompt[start : start + 4], make_blocks(pool), None, pool
            )
        twin = prompt.copy()
        twin[-1] = 99
        hit = cache.match(twin, "p")
        assert hit.shared_length == 11
        assert len(hit.nodes) == 2 and hit.tail_length == 3

    def test_budgeted_match_never_takes_partial_tail(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        snapshot = [np.arange(4.0), np.arange(4.0)]
        cache.insert(cache.root("p"), (1, 2, 3, 4), make_blocks(pool), snapshot, pool)
        hit = cache.match([1, 2, 3, 9, 9], "p", budgeted=True)
        assert hit.shared_length == 0 and hit.tail_node is None
        unbudgeted = cache.match([1, 2, 3, 9, 9], "p")
        assert unbudgeted.shared_length == 3
        assert unbudgeted.tainted

    def test_budgeted_coverage_stops_at_deepest_snapshot(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        snapshot = [np.arange(4.0), np.arange(4.0)]
        n1 = cache.insert(cache.root("p"), (1, 2, 3, 4), make_blocks(pool), snapshot, pool)
        cache.insert(n1, (5, 6, 7, 8), make_blocks(pool), None, pool)
        hit = cache.match(np.arange(1, 12), "p", budgeted=True)
        assert hit.shared_length == 4  # the unsnapshotted child is cut
        assert not hit.tainted
        deep = cache.match(np.arange(1, 12), "p")  # unbudgeted takes it all
        assert deep.shared_length == 8
        assert deep.policy_length == 4 and deep.tainted

    def test_block_mode_disables_partial_tails(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4, match_mode="block")
        n1 = cache.insert(cache.root("p"), (1, 2, 3, 4), make_blocks(pool), None, pool)
        cache.insert(n1, (5, 6, 7, 8), make_blocks(pool), None, pool)
        hit = cache.match([1, 2, 3, 4, 5, 6, 99, 99], "p")
        assert hit.shared_length == 4 and hit.tail_node is None


class TestTokenMetrics:
    def test_token_weighted_vs_per_lookup_hit_rate(self):
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        prompt = np.arange(8)
        miss = cache.match(prompt, "p")  # 8 tokens seen, 0 hit
        parent = cache.insert(miss.parent, prompt[:4], make_blocks(pool), None, pool)
        cache.insert(parent, prompt[4:8], make_blocks(pool), None, pool)
        cache.match(prompt, "p")  # 8 seen, 7 hit (last row stays live)
        assert cache.hit_rate == 0.5
        assert cache.tokens_seen == 16 and cache.tokens_hit == 7
        assert cache.token_hit_rate == pytest.approx(7 / 16)

    def test_one_block_hit_no_longer_counts_like_a_full_hit(self):
        """The legacy ``hit_rate`` bug this PR's metrics fix: any
        non-empty coverage counted as a full hit.  Token weighting
        separates a 4-of-100-token graze from a full-prompt hit."""
        pool = BlockPool(2, 3, 4, num_blocks=32)
        cache = PrefixCache(block_size=4)
        cache.insert(cache.root("p"), (0, 1, 2, 3), make_blocks(pool), None, pool)
        long_prompt = np.arange(100)
        hit = cache.match(long_prompt, "p")
        assert hit.shared_length == 4
        assert cache.hit_rate == 1.0  # the coarse metric saturates
        assert cache.token_hit_rate == pytest.approx(4 / 100)

"""Fleet co-simulation and tensor-parallel pricing.

Two exactness contracts anchor the TP cycle model: ``tp=1`` must
reproduce the single-device co-simulator bit-for-bit (every shard
dimension divides by one and the all-reduce terms vanish), and the
all-reduce traffic must follow the ring formula exactly — bytes scale
as ``(tp - 1) / tp`` for the same trace, and all-reduce cycles scale
inversely with ``interconnect_gb_s``.  On top of those, the fleet
aggregation is max-over-replicas makespan (replicas are concurrent
devices), never a sum.
"""

from dataclasses import replace

import pytest

from repro.accel.config import veda_config
from repro.accel.simulator import AcceleratorSimulator
from repro.config import llama2_7b_shapes
from repro.core.policies import VotingPolicy
from repro.experiments.serving import make_workload
from repro.serve import ServingCoSimulator, ServingFleet


def engine_kwargs(model):
    return dict(
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=4,
        paged=True,
        block_size=4,
    )


def conversations(model):
    return make_workload(
        n_requests=6, turns=2, vocab=model.config.vocab_size, seed=0
    )


@pytest.fixture(scope="module")
def played_fleet(model):
    """A two-replica fleet that has served the shared stream."""
    fleet = ServingFleet(
        model, replicas=2, placement="round_robin", **engine_kwargs(model)
    )
    fleet.play(conversations(model))
    return fleet


@pytest.fixture(scope="module")
def solo_fleet(model):
    fleet = ServingFleet(model, replicas=1, **engine_kwargs(model))
    fleet.play(conversations(model))
    return fleet


class TestTP1Exactness:
    def test_tp1_matches_single_device_cosim(self, solo_fleet):
        """One replica, tp=1: the fleet co-sim IS the single-device
        co-sim — same trace, same cycles, same tokens."""
        hw, shapes = veda_config(), llama2_7b_shapes()
        single = ServingCoSimulator(
            scheduler=solo_fleet.engines[0].scheduler, hw=hw, hw_model=shapes
        ).replay()
        priced = solo_fleet.cosim(hw=hw, hw_model=shapes, tp=1)
        assert priced.fleet_cycles == single.total_cycles
        assert priced.total_tokens == single.total_tokens
        assert priced.interconnect_cycles == 0.0
        assert priced.interconnect_bytes == 0.0

    def test_tp1_simulator_is_bit_identical_per_phase(self):
        """The sharded code path at tp=1 collapses to the unsharded one
        for every phase, not just the serving totals."""
        hw, shapes = veda_config(), llama2_7b_shapes()
        base = AcceleratorSimulator(hw, shapes)
        sharded = AcceleratorSimulator(hw, shapes, tp=1)
        for phase in (
            lambda s: s.prefill(96),
            lambda s: s.decode_step(128),
        ):
            a, b = phase(base), phase(sharded)
            assert a.cycles == b.cycles
            assert a.linear_cycles == b.linear_cycles
            assert a.macs == b.macs
            assert a.hbm_bytes == b.hbm_bytes
            assert b.interconnect_cycles == 0.0


class TestTPPricing:
    def test_tp_must_divide_heads_and_ffn(self):
        with pytest.raises(ValueError, match="divide"):
            AcceleratorSimulator(veda_config(), llama2_7b_shapes(), tp=7)

    def test_sharding_cuts_compute_and_prices_allreduce(self, played_fleet):
        hw, shapes = veda_config(), llama2_7b_shapes()
        tp1 = played_fleet.cosim(hw=hw, hw_model=shapes, tp=1)
        tp4 = played_fleet.cosim(hw=hw, hw_model=shapes, tp=4)
        assert tp4.total_tokens == tp1.total_tokens
        assert tp4.interconnect_cycles > 0
        assert tp4.interconnect_bytes > 0
        # Sharded GEMMs dominate the added all-reduce traffic here.
        assert tp4.fleet_cycles < tp1.fleet_cycles

    def test_allreduce_bytes_follow_the_ring_formula(self, played_fleet):
        """Per-device ring all-reduce moves ``2 (tp-1)/tp`` of the
        payload, so the same trace's bytes scale exactly as
        ``(tp-1)/tp``: tp=4 over tp=2 is 1.5x."""
        hw, shapes = veda_config(), llama2_7b_shapes()
        tp2 = played_fleet.cosim(hw=hw, hw_model=shapes, tp=2)
        tp4 = played_fleet.cosim(hw=hw, hw_model=shapes, tp=4)
        assert tp4.interconnect_bytes == pytest.approx(
            1.5 * tp2.interconnect_bytes
        )

    def test_allreduce_cycles_scale_with_interconnect_bandwidth(
        self, played_fleet
    ):
        hw, shapes = veda_config(), llama2_7b_shapes()
        slow = replace(hw, interconnect_gb_s=hw.interconnect_gb_s / 2)
        fast = played_fleet.cosim(hw=hw, hw_model=shapes, tp=2)
        halved = played_fleet.cosim(hw=slow, hw_model=shapes, tp=2)
        assert halved.interconnect_cycles == pytest.approx(
            2.0 * fast.interconnect_cycles
        )
        assert halved.interconnect_bytes == fast.interconnect_bytes
        assert halved.fleet_cycles > fast.fleet_cycles

    def test_interconnect_bandwidth_must_be_positive(self):
        with pytest.raises(ValueError, match="interconnect"):
            replace(veda_config(), interconnect_gb_s=0.0)


class TestFleetAggregation:
    def test_makespan_is_max_over_replicas(self, played_fleet):
        hw, shapes = veda_config(), llama2_7b_shapes()
        priced = played_fleet.cosim(hw=hw, hw_model=shapes)
        per_replica = [r.total_cycles for r in priced.replicas]
        assert priced.fleet_cycles == max(per_replica)
        assert priced.fleet_cycles < sum(per_replica)
        assert priced.total_tokens == sum(
            r.total_tokens for r in priced.replicas
        )

    def test_throughput_uses_the_makespan(self, played_fleet):
        hw, shapes = veda_config(), llama2_7b_shapes()
        priced = played_fleet.cosim(hw=hw, hw_model=shapes)
        expected = priced.total_tokens / (
            priced.fleet_cycles / (priced.clock_ghz * 1e9)
        )
        assert priced.tokens_per_second == pytest.approx(expected)

    def test_summary_gains_tp_fields_only_when_sharded(self, played_fleet):
        hw, shapes = veda_config(), llama2_7b_shapes()
        flat = played_fleet.cosim(hw=hw, hw_model=shapes).summary()
        sharded = played_fleet.cosim(hw=hw, hw_model=shapes, tp=2).summary()
        assert "allreduce_cycles" not in flat
        assert sharded["tp"] == 2
        assert sharded["allreduce_cycles"] > 0

    def test_energy_pools_over_replicas(self, played_fleet):
        """Replicas are separate devices: fleet joules are the *sum* of
        per-replica joules (unlike the max-over-replicas makespan), and
        joules/token divides by the pooled token count."""
        hw, shapes = veda_config(), llama2_7b_shapes()
        priced = played_fleet.cosim(hw=hw, hw_model=shapes)
        assert priced.energy_joules == pytest.approx(
            sum(r.energy_joules for r in priced.replicas)
        )
        assert priced.energy_joules > 0
        assert priced.joules_per_token == pytest.approx(
            priced.energy_joules / priced.total_tokens
        )
        assert priced.summary()["joules/token"] == priced.joules_per_token

"""Trainer and model zoo (micro model only — the small model is slow)."""

import numpy as np
import pytest

from repro.config import TrainingConfig, tiny_config
from repro.data.datasets import book_aligned_windows
from repro.models.transformer import TransformerLM
from repro.training import TrainResult, Trainer
from repro.zoo import ZOO_SPECS, default_corpus, get_pretrained


class TestTrainer:
    def test_loss_decreases(self):
        cfg = tiny_config(vocab_size=32)
        model = TransformerLM(cfg, seed=0)
        rng = np.random.default_rng(0)
        # Learnable structure: noisy repeats of a fixed pattern.
        base = np.tile(np.arange(16), 5)
        windows = np.stack([np.roll(base, r)[:64] for r in range(10)])
        training = TrainingConfig(seq_len=63, batch_size=4, steps=25, lr=5e-3)
        result = Trainer(model, training).fit(windows)
        assert result.final_loss < result.initial_loss * 0.8
        assert len(result.losses) == 25
        assert result.seconds > 0

    def test_rejects_oversized_windows(self):
        cfg = tiny_config(max_seq_len=16)
        model = TransformerLM(cfg, seed=0)
        windows = np.zeros((2, 64), dtype=int)
        with pytest.raises(ValueError):
            Trainer(model, TrainingConfig(steps=1)).fit(windows)

    def test_result_requires_steps(self):
        with pytest.raises(ValueError):
            TrainResult().final_loss


class TestCorpusHelpers:
    def test_default_corpus_splits_differ(self):
        tok_a, train_docs = default_corpus("train", n_books=3)
        tok_b, eval_docs = default_corpus("eval", n_books=3)
        assert train_docs != eval_docs
        # identical fixed vocabulary across splits
        assert tok_a.vocab_size == tok_b.vocab_size
        assert tok_a.encode("lantern").tolist() == tok_b.encode("lantern").tolist()

    def test_unknown_split(self):
        with pytest.raises(ValueError):
            default_corpus("test")

    def test_book_aligned_windows(self):
        tokenizer, docs = default_corpus("train", n_books=4)
        windows = book_aligned_windows(docs, tokenizer, seq_len=64)
        assert windows.shape[1] == 64
        # every window starts at a book start: first token is <bos>
        assert np.all(windows[:, 0] == tokenizer.bos_id)

    def test_book_aligned_rejects_too_long(self):
        tokenizer, docs = default_corpus("train", n_books=2)
        with pytest.raises(ValueError):
            book_aligned_windows(docs, tokenizer, seq_len=10**6)


class TestZoo:
    def test_specs_exist(self):
        assert "small" in ZOO_SPECS and "micro" in ZOO_SPECS

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_pretrained("enormous")

    @pytest.mark.slow
    def test_micro_roundtrip(self, tmp_path, monkeypatch):
        """Training + caching + reloading produce identical weights."""
        import repro.zoo as zoo

        monkeypatch.setattr(zoo, "zoo_dir", lambda: tmp_path)
        model_a, tok_a, meta_a = get_pretrained("micro")
        assert (tmp_path / "micro.npz").exists()
        model_b, tok_b, meta_b = get_pretrained("micro")
        np.testing.assert_array_equal(model_a.embed, model_b.embed)
        assert meta_b["model_config"] == meta_a["model_config"]
        assert meta_a["final_loss"] < meta_a["initial_loss"]

"""Rotary positional embeddings."""

import numpy as np
import pytest

from repro.models.rope import RopeTable, apply_rope_numpy, apply_rope_tensor
from repro.nn.tensor import Tensor


@pytest.fixture()
def table():
    return RopeTable(head_dim=8, max_len=64, theta=10000.0)


class TestRopeTable:
    def test_shapes(self, table):
        assert table.cos.shape == (64, 4)
        assert table.sin.shape == (64, 4)

    def test_position_zero_is_identity(self, table, rng):
        x = rng.normal(size=(3, 8))
        out = apply_rope_numpy(x, np.array([0, 0, 0]), table)
        np.testing.assert_allclose(out, x, atol=1e-12)

    def test_rejects_odd_dim(self):
        with pytest.raises(ValueError):
            RopeTable(head_dim=7, max_len=8)

    def test_rejects_out_of_range_position(self, table, rng):
        with pytest.raises(IndexError):
            apply_rope_numpy(rng.normal(size=(1, 8)), np.array([64]), table)


class TestRotationProperties:
    def test_norm_preserved(self, table, rng):
        """Rotation is an isometry: per-pair norms are unchanged."""
        x = rng.normal(size=(10, 8))
        out = apply_rope_numpy(x, np.arange(10), table)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-10
        )

    def test_relative_position_property(self, table, rng):
        """<RoPE(q,m), RoPE(k,n)> depends only on m-n."""
        q = rng.normal(size=8)
        k = rng.normal(size=8)
        dots = []
        for m, n in [(5, 3), (12, 10), (30, 28)]:
            qm = apply_rope_numpy(q[None, :], np.array([m]), table)[0]
            kn = apply_rope_numpy(k[None, :], np.array([n]), table)[0]
            dots.append(qm @ kn)
        np.testing.assert_allclose(dots[0], dots[1], atol=1e-9)
        np.testing.assert_allclose(dots[0], dots[2], atol=1e-9)

    def test_composition(self, table, rng):
        """Rotating by m then by n (fresh angles) != needed; but rotation at
        position m equals applying the m-th rotation matrix — check against
        an explicit 2x2 block rotation."""
        x = rng.normal(size=(1, 8))
        m = 7
        out = apply_rope_numpy(x, np.array([m]), table)[0]
        half = 4
        x1, x2 = x[0, :half], x[0, half:]
        cos, sin = table.cos[m], table.sin[m]
        np.testing.assert_allclose(out[:half], x1 * cos - x2 * sin, atol=1e-12)
        np.testing.assert_allclose(out[half:], x1 * sin + x2 * cos, atol=1e-12)


class TestTensorPath:
    def test_matches_numpy_path(self, table, rng):
        x = rng.normal(size=(2, 6, 8))  # (H, L, d)
        positions = np.arange(6)
        out_np = apply_rope_numpy(x, positions, table)
        out_tensor = apply_rope_tensor(Tensor(x), positions, table)
        np.testing.assert_allclose(out_tensor.numpy(), out_np, atol=1e-12)

    def test_gradient_flows(self, table, rng):
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        out = apply_rope_tensor(x, np.arange(4), table)
        out.sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (1, 4, 8)
        # Rotation is linear: gradient of sum is rotation applied to ones.
        assert not np.allclose(x.grad, 0.0)

"""Cached inference path vs the training graph — the central equivalence."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM


class TestEquivalence:
    def test_prefill_matches_training_forward(self, tiny_model, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=24)
        train_logits = tiny_model(tokens[None, :]).numpy()[0]
        cache = tiny_inference.new_cache()
        result = tiny_inference.prefill(tokens, cache)
        np.testing.assert_allclose(result.logits, train_logits[-1], atol=1e-9)

    def test_decode_matches_training_forward(self, tiny_model, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=20)
        train_logits = tiny_model(tokens[None, :]).numpy()[0]
        cache = tiny_inference.new_cache()
        tiny_inference.prefill(tokens[:8], cache)
        for i in range(8, 20):
            step = tiny_inference.step(tokens[i], i, cache)
            np.testing.assert_allclose(step.logits, train_logits[i], atol=1e-9)

    def test_pure_decode_matches(self, tiny_model, tiny_inference, rng):
        """Token-by-token from position 1 equals the parallel forward."""
        tokens = rng.integers(0, 64, size=10)
        train_logits = tiny_model(tokens[None, :]).numpy()[0]
        cache = tiny_inference.new_cache()
        tiny_inference.prefill(tokens[:1], cache)
        for i in range(1, 10):
            step = tiny_inference.step(tokens[i], i, cache)
            np.testing.assert_allclose(step.logits, train_logits[i], atol=1e-9)

    def test_gelu_layernorm_variant_matches(self, rng):
        cfg = tiny_config(norm="layernorm", activation="gelu")
        model = TransformerLM(cfg, seed=11)
        inference = CachedTransformer.from_module(model)
        tokens = rng.integers(0, cfg.vocab_size, size=12)
        train_logits = model(tokens[None, :]).numpy()[0]
        cache = inference.new_cache()
        result = inference.prefill(tokens, cache)
        np.testing.assert_allclose(result.logits, train_logits[-1], atol=1e-9)


class TestAttentionRecords:
    def test_prefill_attention_shapes(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=9)
        cache = tiny_inference.new_cache()
        result = tiny_inference.prefill(tokens, cache)
        cfg = tiny_inference.config
        assert len(result.attention) == cfg.n_layers
        for attn in result.attention:
            assert attn.shape == (cfg.n_heads, 9, 9)

    def test_prefill_attention_is_causal_rows(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=7)
        cache = tiny_inference.new_cache()
        result = tiny_inference.prefill(tokens, cache)
        for attn in result.attention:
            upper = np.triu(np.ones((7, 7), dtype=bool), k=1)
            assert np.all(attn[:, upper] < 1e-10)
            np.testing.assert_allclose(attn.sum(axis=-1), 1.0, atol=1e-9)

    def test_step_attention_rows_sum_to_one(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=6)
        cache = tiny_inference.new_cache()
        tiny_inference.prefill(tokens[:5], cache)
        step = tiny_inference.step(tokens[5], 5, cache)
        for attn in step.attention:
            assert attn.shape == (tiny_inference.config.n_heads, 6)
            np.testing.assert_allclose(attn.sum(axis=-1), 1.0, atol=1e-9)


class TestCacheInteraction:
    def test_cache_populated_by_prefill(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=8)
        cache = tiny_inference.new_cache()
        tiny_inference.prefill(tokens, cache)
        assert cache.lengths == [8] * tiny_inference.config.n_layers
        np.testing.assert_array_equal(cache[0].positions, np.arange(8))

    def test_step_appends(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=4)
        cache = tiny_inference.new_cache()
        tiny_inference.prefill(tokens, cache)
        tiny_inference.step(5, 4, cache)
        assert cache.lengths == [5] * tiny_inference.config.n_layers
        assert cache[0].positions[-1] == 4

    def test_eviction_changes_only_evicted_contribution(self, tiny_inference, rng):
        """Evicting a slot means later steps attend over fewer entries."""
        tokens = rng.integers(0, 64, size=10)
        cache = tiny_inference.new_cache()
        tiny_inference.prefill(tokens[:9], cache)
        for layer_cache in cache:
            layer_cache.evict(3)
        step = tiny_inference.step(tokens[9], 9, cache)
        for attn in step.attention:
            assert attn.shape[1] == 9  # 8 survivors + the new token

    def test_chunked_prefill_matches_full(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=16)
        cache_full = tiny_inference.new_cache()
        full = tiny_inference.prefill(tokens, cache_full)
        cache_chunk = tiny_inference.new_cache()
        tiny_inference.prefill(tokens[:8], cache_chunk)
        chunked = tiny_inference.prefill(tokens[8:], cache_chunk, start_position=8)
        # Note: chunked prefill without cross-chunk attention is only valid
        # when chunks are independent; here we only check kv equivalence.
        np.testing.assert_allclose(
            cache_full[0].keys[:, :8], cache_chunk[0].keys[:, :8], atol=1e-12
        )

    def test_empty_prompt_rejected(self, tiny_inference):
        with pytest.raises(ValueError):
            tiny_inference.prefill(np.array([], dtype=int), tiny_inference.new_cache())


class TestBatchedDecode:
    """step_batch: batching must not change any sequence's numbers."""

    def _prefilled(self, tiny_inference, rng, lengths):
        caches, prompts = [], []
        for length in lengths:
            tokens = rng.integers(0, 64, size=length)
            cache = tiny_inference.new_cache()
            tiny_inference.prefill(tokens, cache)
            caches.append(cache)
            prompts.append(tokens)
        return caches, prompts

    def test_step_batch_bitwise_matches_solo_step(self, tiny_inference, rng):
        """A sequence decodes to bit-identical logits alone or batched."""
        solo_caches, prompts = self._prefilled(tiny_inference, rng, [6, 11, 17])
        batch_rng = np.random.default_rng(99)  # same stream as `rng` fixture
        batch_caches, _ = self._prefilled(tiny_inference, batch_rng, [6, 11, 17])

        tokens = [3, 9, 27]
        positions = [len(p) for p in prompts]
        solo_logits = [
            tiny_inference.step(t, p, c).logits
            for t, p, c in zip(tokens, positions, solo_caches)
        ]
        batched = tiny_inference.step_batch(tokens, positions, batch_caches)
        for b in range(3):
            np.testing.assert_array_equal(batched.logits[b], solo_logits[b])

    def test_step_batch_attention_rows_match_solo(self, tiny_inference, rng):
        solo_caches, prompts = self._prefilled(tiny_inference, rng, [5, 9])
        batch_rng = np.random.default_rng(99)
        batch_caches, _ = self._prefilled(tiny_inference, batch_rng, [5, 9])

        tokens, positions = [1, 2], [len(p) for p in prompts]
        solo = [
            tiny_inference.step(t, p, c)
            for t, p, c in zip(tokens, positions, solo_caches)
        ]
        batched = tiny_inference.step_batch(tokens, positions, batch_caches)
        for layer in range(tiny_inference.config.n_layers):
            for b in range(2):
                np.testing.assert_array_equal(
                    batched.attention[layer][b], solo[b].attention[layer]
                )

    def test_step_batch_appends_to_each_cache(self, tiny_inference, rng):
        caches, prompts = self._prefilled(tiny_inference, rng, [4, 7])
        tiny_inference.step_batch([0, 1], [4, 7], caches)
        assert caches[0].lengths == [5] * tiny_inference.config.n_layers
        assert caches[1].lengths == [8] * tiny_inference.config.n_layers
        assert caches[0][0].positions[-1] == 4
        assert caches[1][0].positions[-1] == 7

    def test_step_batch_shape_validation(self, tiny_inference, rng):
        caches, _ = self._prefilled(tiny_inference, rng, [4])
        with pytest.raises(ValueError):
            tiny_inference.step_batch([1, 2], [4], caches)
        with pytest.raises(ValueError):
            tiny_inference.step_batch([], [], [])

    def test_ragged_batch_with_evictions(self, tiny_inference, rng):
        """Mixed cache lengths after eviction still decode per-sequence."""
        caches, prompts = self._prefilled(tiny_inference, rng, [10, 10])
        for layer_cache in caches[0]:
            layer_cache.evict(2)
        result = tiny_inference.step_batch([5, 6], [10, 10], caches)
        assert result.attention[0][0].shape[1] == 10  # 9 survivors + new
        assert result.attention[0][1].shape[1] == 11

"""Training-graph transformer."""

import numpy as np
import pytest

from repro.config import ModelConfig, tiny_config
from repro.models.transformer import TransformerLM
from repro.nn.optim import Adam


class TestForward:
    def test_logit_shape(self, tiny_model, rng):
        cfg = tiny_model.config
        tokens = rng.integers(0, cfg.vocab_size, size=(2, 10))
        logits = tiny_model(tokens)
        assert logits.shape == (2, 10, cfg.vocab_size)

    def test_deterministic(self, tiny_model, rng):
        tokens = rng.integers(0, 64, size=(1, 8))
        a = tiny_model(tokens).numpy()
        b = tiny_model(tokens).numpy()
        np.testing.assert_array_equal(a, b)

    def test_rejects_1d_tokens(self, tiny_model):
        with pytest.raises(ValueError):
            tiny_model(np.zeros(5, dtype=int))

    def test_causality(self, tiny_model, rng):
        """Changing a future token must not change earlier logits."""
        tokens = rng.integers(0, 64, size=(1, 12))
        base = tiny_model(tokens).numpy()
        perturbed = tokens.copy()
        perturbed[0, -1] = (perturbed[0, -1] + 1) % 64
        out = tiny_model(perturbed).numpy()
        np.testing.assert_allclose(out[0, :-1], base[0, :-1], atol=1e-10)
        assert not np.allclose(out[0, -1], base[0, -1])

    def test_untied_head(self, rng):
        cfg = tiny_config(tie_embeddings=False)
        model = TransformerLM(cfg, seed=0)
        assert model.lm_head is not None
        tokens = rng.integers(0, cfg.vocab_size, size=(1, 4))
        assert model(tokens).shape == (1, 4, cfg.vocab_size)

    def test_gelu_layernorm_variant(self, rng):
        cfg = tiny_config(norm="layernorm", activation="gelu")
        model = TransformerLM(cfg, seed=0)
        tokens = rng.integers(0, cfg.vocab_size, size=(1, 6))
        logits = model(tokens)
        assert np.all(np.isfinite(logits.numpy()))


class TestLoss:
    def test_initial_loss_near_uniform(self, rng):
        cfg = tiny_config()
        model = TransformerLM(cfg, seed=3)
        tokens = rng.integers(0, cfg.vocab_size, size=(4, 20))
        loss = model.loss(tokens)
        assert loss.item() == pytest.approx(np.log(cfg.vocab_size), rel=0.25)

    def test_loss_backward_touches_all_params(self, rng):
        cfg = tiny_config()
        model = TransformerLM(cfg, seed=3)
        tokens = rng.integers(0, cfg.vocab_size, size=(2, 10))
        model.loss(tokens).backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
            assert np.any(param.grad != 0.0), f"zero grad for {name}"


class TestTrainingStep:
    def test_few_steps_reduce_loss(self, rng):
        cfg = tiny_config()
        model = TransformerLM(cfg, seed=7)
        # Learnable data: a repeating pattern.
        pattern = np.tile(np.arange(8), 6)[None, :]
        opt = Adam(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(15):
            loss = model.loss(pattern)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.7


class TestConfigValidation:
    def test_divisibility(self):
        with pytest.raises(ValueError):
            ModelConfig(
                vocab_size=10, d_model=30, n_heads=4, n_layers=1, d_ff=16,
                max_seq_len=16,
            )

    def test_odd_head_dim(self):
        with pytest.raises(ValueError):
            ModelConfig(
                vocab_size=10, d_model=9, n_heads=3, n_layers=1, d_ff=16,
                max_seq_len=16,
            )

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            tiny_config(norm="batchnorm")

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            tiny_config(activation="tanh")

    def test_head_dim(self):
        assert tiny_config().head_dim == 16

"""Property-based tests: paged KV storage invariants.

The safety properties of the block allocator under arbitrary operation
interleavings: no double-allocation of live blocks, refcount/free-list
conservation, dense-equivalent compaction (position order preserved
through any evict/append mix), and exactness of the chunk-fed voting
kernel that prefix-cache snapshots rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kv_cache import LayerKVCache
from repro.core.policies.base import PREFILL
from repro.core.policies.voting import VotingPolicy
from repro.models.inference import stable_softmax
from repro.serve.paging import BlockPool, PagedLayerKVCache


@st.composite
def pool_op_sequence(draw):
    """A random allocate/retain/release schedule."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["allocate", "retain", "release"]),
                st.integers(0, 2**31 - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestBlockPoolInvariants:
    @given(pool_op_sequence(), st.integers(1, 8), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_never_double_allocates_and_conserves_blocks(
        self, ops, block_size, fixed
    ):
        pool = BlockPool(1, 2, block_size, num_blocks=16 if fixed else None)
        live = {}  # block_id -> expected refcount
        for op, pick in ops:
            if op == "allocate":
                if fixed and pool.num_free == 0:
                    continue
                block = pool.allocate()
                # A freshly allocated block must not already be live.
                assert block not in live
                live[block] = 1
            elif op == "retain" and live:
                block = sorted(live)[pick % len(live)]
                pool.retain(block)
                live[block] += 1
            elif op == "release" and live:
                block = sorted(live)[pick % len(live)]
                remaining = pool.release(block)
                live[block] -= 1
                assert remaining == live[block]
                if live[block] == 0:
                    del live[block]
            # Conservation: every block is either free or live, and the
            # pool's refcounts agree with the model's.
            assert pool.num_free + len(live) == pool.num_blocks
            for block, count in live.items():
                assert pool.refcount(block) == count

    @given(st.integers(1, 6), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_growable_pool_allocations_unique(self, block_size, n):
        pool = BlockPool(1, 2, block_size)
        blocks = [pool.allocate() for _ in range(n)]
        assert len(set(blocks)) == n


@st.composite
def append_evict_schedule(draw):
    """An interleaving of appends and evictions (evict index is a draw
    reduced mod the live length at execution time)."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["append", "evict"]),
                st.integers(0, 2**31 - 1),
            ),
            min_size=1,
            max_size=50,
        )
    )


class TestPagedDenseEquivalence:
    @given(append_evict_schedule(), st.integers(1, 7), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_paged_tracks_dense_under_any_interleaving(
        self, schedule, block_size, seed
    ):
        """Shadow-model property: after every operation the paged cache's
        views equal the dense cache's, so position order is preserved
        across arbitrary evict/append interleavings."""
        rng = np.random.default_rng(seed)
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=64)
        dense = LayerKVCache(2, 3, capacity=64)
        position = 0
        for op, pick in schedule:
            if op == "append" and dense.length < 64:
                key = rng.normal(size=(2, 3))
                value = rng.normal(size=(2, 3))
                paged.append(key, value, position)
                dense.append(key, value, position)
                position += 1
            elif op == "evict" and dense.length:
                index = pick % dense.length
                assert paged.evict(index) == dense.evict(index)
            np.testing.assert_array_equal(paged.positions, dense.positions)
            np.testing.assert_array_equal(paged.keys, dense.keys)
            np.testing.assert_array_equal(paged.values, dense.values)
            # Positions stay strictly increasing (insertion order kept).
            assert np.all(np.diff(paged.positions) > 0)
        # Tail-block accounting: exactly the blocks the length needs.
        assert paged.num_blocks == -(-dense.length // block_size)

    @given(append_evict_schedule(), st.integers(1, 5), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_release_returns_pool_to_pristine(self, schedule, block_size, seed):
        rng = np.random.default_rng(seed)
        pool = BlockPool(2, 3, block_size)
        paged = PagedLayerKVCache(pool, capacity=64)
        position = 0
        for op, pick in schedule:
            if op == "append" and paged.length < 64:
                paged.append(
                    rng.normal(size=(2, 3)), rng.normal(size=(2, 3)), position
                )
                position += 1
            elif op == "evict" and paged.length:
                paged.evict(pick % paged.length)
        paged.release()
        assert pool.num_free == pool.num_blocks


@st.composite
def causal_block(draw):
    """A (H, L, L) causal softmax attention block, as prefill records it."""
    heads = draw(st.integers(1, 3))
    length = draw(st.integers(2, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    scale = draw(st.sampled_from([0.5, 2.0, 6.0]))
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(heads, length, length)) * scale
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)
    return stable_softmax(np.where(mask, -1e30, logits), axis=-1)


class TestChunkedVotingExactness:
    """The prefix-cache contract: chunked observation == one-shot, bitwise."""

    @given(causal_block(), st.integers(0, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_chunked_continuation_matches_one_shot(
        self, attn, reserved, chunk
    ):
        length = attn.shape[1]
        positions = np.arange(length)
        one_shot = VotingPolicy(n_layers=1, reserved_length=reserved)
        chunked = VotingPolicy(n_layers=1, reserved_length=reserved)
        one_shot.observe_block(0, attn, positions, PREFILL)
        start = 0
        while start < length:
            stop = min(start + chunk, length)
            chunked.observe_continuation(
                0, attn[:, start:stop, :stop], positions[:stop], PREFILL
            )
            start = stop
        np.testing.assert_array_equal(
            one_shot.vote_counts(0), chunked.vote_counts(0)
        )

    @given(causal_block(), st.integers(0, 8), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_snapshot_import_matches_one_shot(self, attn, reserved, boundary):
        """Export at a boundary + import into a fresh policy + observe the
        rest == observing everything: the prefix-hit voting path."""
        length = attn.shape[1]
        positions = np.arange(length)
        boundary = min(boundary, length - 1)
        one_shot = VotingPolicy(n_layers=1, reserved_length=reserved)
        one_shot.observe_block(0, attn, positions, PREFILL)

        producer = VotingPolicy(n_layers=1, reserved_length=reserved)
        if boundary:
            producer.observe_continuation(
                0, attn[:, :boundary, :boundary], positions[:boundary], PREFILL
            )
        snapshot = producer.export_prefill_state(0, boundary)

        consumer = VotingPolicy(n_layers=1, reserved_length=reserved)
        consumer.import_prefill_state(0, snapshot, boundary)
        consumer.observe_continuation(
            0, attn[:, boundary:, :], positions, PREFILL
        )
        np.testing.assert_array_equal(
            one_shot.vote_counts(0), consumer.vote_counts(0)
        )

"""Property-based tests: eviction-policy invariants.

These are the system-level safety properties: under arbitrary softmax
attention streams and arbitrary eviction pressure, every policy must keep
its slot-aligned state consistent with the cache, never evict reserved
positions, and keep the cache within budget.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    H2OPolicy,
    StreamingLLMPolicy,
    VotingPolicy,
)
from repro.core.policies.base import GENERATION, PREFILL, EvictionPolicy
from repro.models.inference import stable_softmax


@st.composite
def attention_stream(draw):
    """A sequence of growing attention rows (heads × length)."""
    heads = draw(st.integers(1, 4))
    start = draw(st.integers(4, 10))
    steps = draw(st.integers(3, 12))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(steps):
        length = start + i
        logits = rng.normal(size=(heads, length)) * draw(
            st.sampled_from([0.5, 2.0, 6.0])
        )
        rows.append(stable_softmax(logits, axis=-1))
    return rows


def drive(policy, rows, budget, reserved=0):
    """Feed rows to a policy, evicting to budget; returns positions."""
    positions = list(range(rows[0].shape[1]))
    next_pos = positions[-1] + 1
    for row in rows[1:]:
        positions.append(next_pos)
        next_pos += 1
        attn = row[:, : len(positions)]
        policy.observe(0, attn[:, : len(positions)], np.array(positions), GENERATION)
        while len(positions) > budget:
            slot = policy.select_victim(0, np.array(positions))
            assert 0 <= slot < len(positions)
            positions.pop(slot)
            policy.on_evict(0, slot)
    return positions


class TestVotingInvariants:
    @given(attention_stream(), st.integers(5, 12))
    @settings(max_examples=40, deadline=None)
    def test_cache_bounded_and_sorted(self, rows, budget):
        policy = VotingPolicy(n_layers=1, reserved_length=2)
        positions = drive(policy, rows, budget)
        assert len(positions) <= budget
        assert positions == sorted(positions)

    @given(attention_stream(), st.integers(6, 12))
    @settings(max_examples=40, deadline=None)
    def test_reserved_positions_survive(self, rows, budget):
        reserved = 3
        policy = VotingPolicy(n_layers=1, reserved_length=reserved)
        positions = drive(policy, rows, budget)
        for p in range(min(reserved, rows[0].shape[1])):
            assert p in positions

    @given(attention_stream(), st.integers(5, 12))
    @settings(max_examples=40, deadline=None)
    def test_vote_state_stays_aligned(self, rows, budget):
        policy = VotingPolicy(n_layers=1, reserved_length=2)
        positions = drive(policy, rows, budget)
        counts = policy.vote_counts(0)
        assert counts.shape[0] >= len(positions) or counts.shape[0] == len(positions)

    @given(attention_stream())
    @settings(max_examples=30, deadline=None)
    def test_votes_monotone_without_eviction(self, rows):
        """Without eviction, per-slot vote counts never decrease."""
        policy = VotingPolicy(n_layers=1, reserved_length=2)
        previous = np.zeros(0, dtype=np.int64)
        positions = list(range(rows[0].shape[1]))
        next_pos = positions[-1] + 1
        for row in rows[1:]:
            positions.append(next_pos)
            next_pos += 1
            policy.observe(
                0, row[:, : len(positions)], np.array(positions), GENERATION
            )
            current = policy.vote_counts(0)
            assert np.all(current[: previous.shape[0]] >= previous)
            previous = current


@st.composite
def causal_block(draw):
    """A (H, L, L) causal softmax attention block, as prefill records it."""
    heads = draw(st.integers(1, 4))
    length = draw(st.integers(2, 28))
    seed = draw(st.integers(0, 2**31 - 1))
    scale = draw(st.sampled_from([0.5, 2.0, 6.0, 12.0]))
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(heads, length, length)) * scale
    mask = np.triu(np.ones((length, length), dtype=bool), k=1)
    return stable_softmax(np.where(mask, -1e30, logits), axis=-1)


class TestObserveBlockEquivalence:
    """The vectorized prefill observation is the scalar loop, exactly."""

    @given(causal_block(), st.integers(0, 12))
    @settings(max_examples=60, deadline=None)
    def test_vote_counts_bit_identical(self, attn, reserved):
        positions = np.arange(attn.shape[1])
        scalar = VotingPolicy(n_layers=1, reserved_length=reserved)
        vectorized = VotingPolicy(n_layers=1, reserved_length=reserved)
        # The base-class observe_block replays the block row by row
        # through the scalar ``observe`` — the reference semantics.
        EvictionPolicy.observe_block(scalar, 0, attn, positions, PREFILL)
        vectorized.observe_block(0, attn, positions, PREFILL)
        np.testing.assert_array_equal(
            scalar.vote_counts(0), vectorized.vote_counts(0)
        )

    @given(causal_block(), st.integers(0, 8), st.integers(2, 20))
    @settings(max_examples=40, deadline=None)
    def test_eviction_decisions_identical(self, attn, reserved, budget):
        """Identical vote state ⇒ identical victims down to any budget."""
        length = attn.shape[1]
        positions = np.arange(length)
        scalar = VotingPolicy(n_layers=1, reserved_length=reserved)
        vectorized = VotingPolicy(n_layers=1, reserved_length=reserved)
        EvictionPolicy.observe_block(scalar, 0, attn, positions, PREFILL)
        vectorized.observe_block(0, attn, positions, PREFILL)

        live = list(positions)
        while len(live) > budget:
            slot_scalar = scalar.select_victim(0, np.array(live))
            slot_vectorized = vectorized.select_victim(0, np.array(live))
            assert slot_scalar == slot_vectorized
            live.pop(slot_scalar)
            scalar.on_evict(0, slot_scalar)
            vectorized.on_evict(0, slot_scalar)
            np.testing.assert_array_equal(
                scalar.vote_counts(0), vectorized.vote_counts(0)
            )

    @given(causal_block(), st.integers(0, 8))
    @settings(max_examples=30, deadline=None)
    def test_sum_head_reduction_matches(self, attn, reserved):
        positions = np.arange(attn.shape[1])
        scalar = VotingPolicy(
            n_layers=1, reserved_length=reserved, head_reduction="sum"
        )
        vectorized = VotingPolicy(
            n_layers=1, reserved_length=reserved, head_reduction="sum"
        )
        EvictionPolicy.observe_block(scalar, 0, attn, positions, PREFILL)
        vectorized.observe_block(0, attn, positions, PREFILL)
        np.testing.assert_array_equal(
            scalar.vote_counts(0), vectorized.vote_counts(0)
        )


class TestH2OInvariants:
    @given(attention_stream(), st.integers(5, 12))
    @settings(max_examples=40, deadline=None)
    def test_cache_bounded(self, rows, budget):
        policy = H2OPolicy(n_layers=1, recent_window=2)
        positions = drive(policy, rows, budget)
        assert len(positions) <= budget

    @given(attention_stream())
    @settings(max_examples=30, deadline=None)
    def test_accumulated_scores_non_negative_monotone(self, rows):
        policy = H2OPolicy(n_layers=1, recent_window=0)
        positions = list(range(rows[0].shape[1]))
        next_pos = positions[-1] + 1
        previous = np.zeros(0)
        for row in rows[1:]:
            positions.append(next_pos)
            next_pos += 1
            policy.observe(0, row[:, : len(positions)], np.array(positions), GENERATION)
            current = policy.accumulated(0)
            assert np.all(current >= 0.0)
            assert np.all(current[: previous.shape[0]] >= previous - 1e-12)
            previous = current


class TestStreamingInvariants:
    @given(attention_stream(), st.integers(5, 12), st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_steady_state_structure(self, rows, budget, sinks):
        policy = StreamingLLMPolicy(n_layers=1, n_sinks=sinks)
        positions = drive(policy, rows, budget)
        assert len(positions) <= budget
        # Survivors = sink prefix + a contiguous recent suffix.
        non_sink = [p for p in positions if p >= sinks]
        if non_sink:
            assert non_sink == list(range(non_sink[0], non_sink[-1] + 1))

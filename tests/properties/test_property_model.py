"""Property-based tests: model substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kv_cache import LayerKVCache
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmaxGraphProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_softmax_rows_simplex(self, seed, n):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(3, n)) * 8)
        out = F.softmax(x).numpy()
        assert np.all(out >= 0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)

    @given(st.integers(0, 2**31 - 1), st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_cross_entropy_non_negative(self, seed, vocab):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(4, vocab)))
        targets = rng.integers(0, vocab, size=4)
        assert F.cross_entropy(logits, targets).item() >= 0.0


class TestKVCacheProperties:
    @given(
        st.integers(0, 2**31 - 1),
        st.lists(st.booleans(), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_append_evict_consistency(self, seed, ops):
        """Arbitrary interleavings of append/evict keep positions sorted,
        unique, and consistent with payloads."""
        rng = np.random.default_rng(seed)
        cache = LayerKVCache(n_heads=1, head_dim=2, capacity=80)
        payload = {}
        next_pos = 0
        for do_append in ops:
            if do_append or cache.length == 0:
                if cache.length >= cache.capacity:
                    continue
                k = rng.normal(size=(1, 2))
                cache.append(k, -k, next_pos)
                payload[next_pos] = k
                next_pos += 1
            else:
                slot = int(rng.integers(cache.length))
                evicted = cache.evict(slot)
                del payload[evicted]
        positions = cache.positions
        assert list(positions) == sorted(set(positions))
        for slot, pos in enumerate(positions):
            np.testing.assert_array_equal(cache.keys[:, slot], payload[pos])


class TestGradientProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_linearity_of_backward(self, seed):
        """grad(a*f + b*g) == a*grad(f) + b*grad(g)."""
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=5)

        def grad_of(scale_f, scale_g):
            x = Tensor(x_data, requires_grad=True)
            out = scale_f * (x**2).sum() + scale_g * x.exp().sum()
            out.backward()
            return x.grad

        g_f = grad_of(1.0, 0.0)
        g_g = grad_of(0.0, 1.0)
        combined = grad_of(2.0, 3.0)
        np.testing.assert_allclose(combined, 2 * g_f + 3 * g_g, atol=1e-9)

"""Property-based tests: fork/join block and refcount conservation.

Arbitrary admit / fork / diverge / prune / retire interleavings over
the KVResourceManager must conserve the pool exactly — every pool
refcount equals the number of live block tables referencing the block,
``num_used`` equals the count of distinct referenced blocks — and
copy-on-write divergence must never let one branch's appends show up in
a sibling's gathered KV state.  A final schedule checks that forking
composes with prefix-trie registration through the scheduler without
aliasing: shared-prefix fork families generate the same tokens as a
dense serve and drain the pool completely.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.core.policies.voting import VotingPolicy
from repro.serve import Request, Scheduler
from repro.serve.resources import KVResourceManager

CONFIG = tiny_config()
BLOCK_SIZE = 4
NUM_BLOCKS = 96
MAX_SLOTS = 8


def pattern(tag, layer, start, length):
    """Writer-identifying KV rows: (writer, layer, slot) all encoded."""
    base = float((hash((tag, layer)) % 997) + 1)
    slots = np.arange(start, start + length, dtype=float)[None, :, None]
    return base * 1000.0 + slots + np.zeros(
        (CONFIG.n_heads, length, CONFIG.head_dim)
    )


def append_rows(manager, expected, tag, rows):
    """Append ``rows`` patterned slots to every layer of ``tag``'s cache,
    extending the tracked expectation."""
    cache = manager.cache_bank.get(tag)
    for layer_index, layer in enumerate(cache):
        start = layer.length
        block = pattern(tag, layer_index, start, rows)
        layer.append_block(block, -block, np.arange(start, start + rows))
        expected[tag][layer_index] = np.concatenate(
            [expected[tag][layer_index], block], axis=1
        )


def assert_no_cross_branch_writes(manager, expected):
    """Every live cache reads back exactly what its own lineage wrote."""
    for tag, per_layer in expected.items():
        cache = manager.cache_bank.get(tag)
        for layer_index, layer in enumerate(cache):
            np.testing.assert_array_equal(layer.keys, per_layer[layer_index])
            np.testing.assert_array_equal(
                layer.values, -per_layer[layer_index]
            )


def assert_refcounts_exact(manager, expected):
    """Pool refcounts == live table references, num_used == distinct."""
    pool = manager.block_pool
    references = {}
    for tag in expected:
        for layer in manager.cache_bank.get(tag):
            for block_id in layer.block_ids:
                references[block_id] = references.get(block_id, 0) + 1
    assert pool.num_used == len(references)
    assert pool.num_free + pool.num_used == pool.num_blocks
    for block_id in range(pool.num_blocks):
        assert pool.refcount(block_id) == references.get(block_id, 0)


@st.composite
def op_schedule(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["admit", "fork", "diverge", "prune", "retire"]
                ),
                st.integers(0, 2**31 - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )


class TestForkConservation:
    @given(op_schedule())
    @settings(max_examples=40, deadline=None)
    def test_blocks_refcounts_and_contents_conserved(self, ops):
        manager = KVResourceManager(
            CONFIG,
            max_batch_size=MAX_SLOTS,
            paged=True,
            block_size=BLOCK_SIZE,
            num_blocks=NUM_BLOCKS,
            prefix_caching=False,
            policy_factory=lambda: VotingPolicy(CONFIG.n_layers),
        )
        pool = manager.block_pool
        expected = {}  # tag -> per-layer expected (H, n, d) keys
        next_root = 0
        next_child = 0

        for op, pick in ops:
            live = sorted(expected)
            if op == "admit" and manager.slots_free > 0:
                length = 1 + pick % 11
                needed = manager.blocks_for_rows(length + BLOCK_SIZE)
                if not manager.has_blocks(needed):
                    continue
                tag = f"root{next_root}"
                next_root += 1
                manager.admit(tag, length + 16)
                expected[tag] = [
                    np.zeros((CONFIG.n_heads, 0, CONFIG.head_dim))
                    for _ in range(CONFIG.n_layers)
                ]
                append_rows(manager, expected, tag, length)
            elif op == "fork" and live and manager.slots_free > 0:
                parent = live[pick % len(live)]
                child = f"{parent}#c{next_child}"
                next_child += 1
                manager.fork(parent, child)
                # The child's lineage so far is exactly the parent's.
                expected[child] = [
                    arr.copy() for arr in expected[parent]
                ]
            elif op == "diverge" and live:
                tag = live[pick % len(live)]
                rows = 1 + pick % 3
                # Worst case per layer: CoW the shared tail plus fresh
                # blocks for the new rows.
                worst = CONFIG.n_layers * (2 + rows // BLOCK_SIZE)
                if not manager.has_blocks(worst):
                    continue
                append_rows(manager, expected, tag, rows)
            elif op == "prune" and live:
                tag = live[pick % len(live)]
                manager.join(tag)
                del expected[tag]
            elif op == "retire" and live:
                tag = live[pick % len(live)]
                manager.retire(tag)
                del expected[tag]

            assert_refcounts_exact(manager, expected)
            assert_no_cross_branch_writes(manager, expected)
            assert manager.slots_used == len(expected)

        assert manager.joins + manager.forks >= 0  # counters monotone
        for tag in sorted(expected):
            manager.retire(tag)
        assert pool.num_free == pool.num_blocks
        assert manager.slots_used == 0

    @given(st.integers(1, 15), st.integers(2, 4), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_fork_shares_all_parent_blocks_until_divergence(
        self, length, width, extra_rows
    ):
        """Immediately after a fork the child allocates nothing; the
        first divergent append CoWs at most the partial tail."""
        manager = KVResourceManager(
            CONFIG,
            max_batch_size=MAX_SLOTS,
            paged=True,
            block_size=BLOCK_SIZE,
            num_blocks=NUM_BLOCKS,
            prefix_caching=False,
            policy_factory=lambda: VotingPolicy(CONFIG.n_layers),
        )
        pool = manager.block_pool
        expected = {"root": [
            np.zeros((CONFIG.n_heads, 0, CONFIG.head_dim))
            for _ in range(CONFIG.n_layers)
        ]}
        manager.admit("root", length + 16)
        append_rows(manager, expected, "root", length)
        used_before = pool.num_used

        children = []
        for i in range(width - 1):
            child = f"root#{i + 1}"
            manager.fork("root", child)
            expected[child] = [arr.copy() for arr in expected["root"]]
            children.append(child)
        assert pool.num_used == used_before  # CoW: zero new blocks

        if extra_rows:
            for tag in ["root"] + children:
                append_rows(manager, expected, tag, extra_rows)
            assert_no_cross_branch_writes(manager, expected)
        assert_refcounts_exact(manager, expected)

        # Prune every child: the pool returns to the root-only footprint.
        for child in children:
            manager.join(child)
            del expected[child]
        assert_refcounts_exact(manager, expected)
        manager.retire("root")
        assert pool.num_free == pool.num_blocks


class TestForkComposesWithPrefixTrie:
    @given(st.integers(0, 7))
    @settings(max_examples=8, deadline=None)
    def test_shared_prefix_families_drain_and_match_dense(self, seed):
        """Fork families over trie-registered prefixes: same tokens as
        dense, no leaked or aliased blocks after the cache drops."""
        model = _model()
        rng = np.random.default_rng(seed)
        vocab = model.config.vocab_size
        prefix = rng.integers(0, vocab, size=int(rng.integers(6, 14)))
        requests = []
        for i in range(3):
            tail = rng.integers(0, vocab, size=int(rng.integers(2, 8)))
            requests.append(
                Request(
                    f"r{i}",
                    np.concatenate([prefix, tail]),
                    max_new_tokens=int(rng.integers(3, 7)),
                    arrival_time=i,
                    seed=seed + 10 * i,
                    n=int(rng.integers(2, 4)),
                )
            )

        def serve(paged):
            scheduler = Scheduler(
                model,
                max_batch_size=8,
                paged=paged,
                block_size=BLOCK_SIZE,
            )
            for request in requests:
                scheduler.submit(request)
            scheduler.run()
            return scheduler

        dense = serve(paged=False)
        paged = serve(paged=True)
        for request in requests:
            assert paged.samples_for(request.request_id) == dense.samples_for(
                request.request_id
            )
        pool = paged.block_pool
        assert pool.num_used == paged.prefix_cache.num_blocks_held
        paged.release_prefix_cache()
        assert pool.num_free == pool.num_blocks


_MODEL = None


def _model():
    global _MODEL
    if _MODEL is None:
        from repro.models.inference import CachedTransformer
        from repro.models.transformer import TransformerLM

        _MODEL = CachedTransformer.from_module(
            TransformerLM(tiny_config(), seed=0)
        )
    return _MODEL

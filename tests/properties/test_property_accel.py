"""Property-based tests: accelerator invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import baseline_config, veda_config
from repro.accel.pe_array import (
    PEArray,
    inner_product_cycles,
    outer_product_cycles,
)
from repro.accel.scheduler import decode_attention, prefill_attention

dims = st.integers(1, 300)
widths = st.sampled_from([8, 16, 64, 128])


class TestCycleFormulaProperties:
    @given(dims, dims, widths)
    @settings(max_examples=100, deadline=None)
    def test_cycles_cover_work(self, k, n, width):
        """No configuration computes faster than peak: cycles × width ≥
        total MACs."""
        macs = k * n
        assert inner_product_cycles(k, n, width) * width >= macs
        assert outer_product_cycles(k, n, width) * width >= macs

    @given(dims, dims, widths)
    @settings(max_examples=100, deadline=None)
    def test_flexible_choice_at_least_as_good(self, k, n, width):
        """min(inner, outer) ≤ fixed inner — runtime reconfiguration can
        only help."""
        flexible = min(
            inner_product_cycles(k, n, width), outer_product_cycles(k, n, width)
        )
        assert flexible <= inner_product_cycles(k, n, width)

    @given(dims, widths)
    @settings(max_examples=100, deadline=None)
    def test_temporal_dim_exactly_absorbed(self, l, width):
        """The dimension mapped to time costs exactly its size (the
        paper's flexibility claim): no rounding on n for inner, none on
        k for outer."""
        assert inner_product_cycles(width, l, width) == l
        assert outer_product_cycles(l, width, width) == l


class TestFunctionalArrayProperties:
    @given(
        st.integers(1, 24),
        st.integers(1, 24),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_modes_agree_with_reference(self, k, n, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=k)
        m = rng.normal(size=(k, n))
        array = PEArray(width=8, quantize=False)
        np.testing.assert_allclose(array.inner_product(v, m), v @ m, atol=1e-9)
        np.testing.assert_allclose(array.outer_product(v, m), v @ m, atol=1e-9)

    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_fp16_error_bounded(self, k, n, seed):
        rng = np.random.default_rng(seed)
        v = rng.uniform(-1, 1, size=k)
        m = rng.uniform(-1, 1, size=(k, n))
        array = PEArray(width=8, quantize=True)
        exact = v @ m
        for mode in ("inner", "outer"):
            out = array.gemv(v, m, mode)
            bound = 2e-3 * (np.abs(v) @ np.abs(m) + 1.0)
            assert np.all(np.abs(out - exact) <= bound)


class TestSchedulerProperties:
    @given(st.integers(1, 2048), st.sampled_from([64, 128]), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_variant_ordering_decode(self, l, head_dim, heads):
        veda = decode_attention(l, head_dim, heads, veda_config())
        plus_f = decode_attention(
            l, head_dim, heads, baseline_config(flexible_dataflow=True)
        )
        base = decode_attention(l, head_dim, heads, baseline_config())
        assert base.total >= plus_f.total >= veda.total

    @given(st.integers(1, 2048))
    @settings(max_examples=40, deadline=None)
    def test_decode_monotone_in_cache_length(self, l):
        hw = veda_config()
        a = decode_attention(l, 128, 8, hw).total
        b = decode_attention(l + 1, 128, 8, hw).total
        assert b >= a

    @given(st.integers(1, 256))
    @settings(max_examples=20, deadline=None)
    def test_prefill_at_least_decode_sum(self, p):
        """Prefill attention (causal) costs at least the sum of decode
        steps at each length — it is the same work batched."""
        hw = veda_config()
        prefill = prefill_attention(p, 128, 1, hw).total
        decode_sum = sum(decode_attention(i, 128, 1, hw).total for i in range(1, p + 1))
        # element-serial drains are per-op in both; allow small slack.
        assert prefill <= decode_sum + p * hw.element_serial_drain + 1

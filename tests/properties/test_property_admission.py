"""Property-based tests: admission-policy ordering invariants.

The engine's SLA story rests on two order-theoretic guarantees that hold
for *any* request mix, which is exactly what hypothesis explores here:

- **EDF never inverts deadlines** — among arrived requests, whenever the
  policy ranks A before B and both carry deadlines, ``A.deadline <=
  B.deadline``; deadline-less requests never outrank deadlined ones.
- **Aging bounds starvation** — under priority admission with aging
  ``a > 0``, a request can be outranked for at most
  ``(p_max - p_min) / a`` rounds: after waiting that long it beats any
  fresher request of maximal priority, no matter what keeps arriving.

The selection rule mirrors the scheduler exactly: lowest ``key(request,
now)`` first, ties broken by submission index (see
``Scheduler._next_admission``).
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    EDFAdmission,
    FIFOAdmission,
    PriorityAdmission,
    Request,
)


def make_request(request_id, arrival, deadline=None, priority=0):
    return Request(
        request_id=request_id,
        prompt=np.array([1, 2, 3]),
        max_new_tokens=2,
        arrival_time=arrival,
        deadline=deadline,
        priority=priority,
    )


def admission_order(policy, requests, now):
    """The order the scheduler would admit ``requests`` in at round
    ``now`` if capacity freed one slot at a time (the scheduler's
    selection rule: lowest key, submit-index tie-break)."""
    return sorted(
        range(len(requests)),
        key=lambda i: (policy.key(requests[i], now), i),
    )


@st.composite
def arrived_requests(draw):
    """A batch of requests that have all arrived by ``now``."""
    count = draw(st.integers(2, 12))
    now = draw(st.integers(0, 100))
    requests = []
    for i in range(count):
        arrival = draw(st.integers(0, now))
        has_deadline = draw(st.booleans())
        deadline = (
            arrival + draw(st.integers(0, 200)) if has_deadline else None
        )
        priority = draw(st.integers(-5, 5))
        requests.append(make_request(f"r{i}", arrival, deadline, priority))
    return requests, now


class TestEDFInvariants:
    @given(arrived_requests())
    @settings(max_examples=200, deadline=None)
    def test_edf_never_inverts_deadlines(self, batch):
        requests, now = batch
        order = admission_order(EDFAdmission(), requests, now)
        ranked = [requests[i] for i in order]
        deadlines = [r.deadline for r in ranked if r.deadline is not None]
        assert deadlines == sorted(deadlines)

    @given(arrived_requests())
    @settings(max_examples=200, deadline=None)
    def test_edf_ranks_deadlined_before_deadline_less(self, batch):
        requests, now = batch
        order = admission_order(EDFAdmission(), requests, now)
        ranked = [requests[i] for i in order]
        seen_deadline_less = False
        for request in ranked:
            if request.deadline is None:
                seen_deadline_less = True
            else:
                assert not seen_deadline_less
        # Among deadline-less requests, EDF degrades to FIFO by arrival.
        tail = [r for r in ranked if r.deadline is None]
        assert [r.arrival_time for r in tail] == sorted(
            r.arrival_time for r in tail
        )

    @given(arrived_requests())
    @settings(max_examples=100, deadline=None)
    def test_fifo_orders_by_arrival(self, batch):
        requests, now = batch
        order = admission_order(FIFOAdmission(), requests, now)
        arrivals = [requests[i].arrival_time for i in order]
        assert arrivals == sorted(arrivals)


class TestAgingBoundsStarvation:
    @given(
        p_low=st.integers(-5, 5),
        p_high=st.integers(-5, 5),
        aging=st.floats(0.01, 2.0, allow_nan=False),
        extra_wait=st.integers(1, 50),
        fresh_arrivals=st.integers(1, 8),
    )
    @settings(max_examples=200, deadline=None)
    def test_waiting_past_the_bound_always_wins(
        self, p_low, p_high, aging, extra_wait, fresh_arrivals
    ):
        """After waiting strictly longer than (p_high - p_low) / aging
        rounds, the old low-priority request outranks any number of
        freshly-arrived requests of the highest priority."""
        p_low, p_high = min(p_low, p_high), max(p_low, p_high)
        policy = PriorityAdmission(aging=aging)
        bound = (p_high - p_low) / aging
        now = int(math.ceil(bound)) + extra_wait
        old_request = make_request("old", 0, priority=p_low)
        requests = [old_request] + [
            make_request(f"fresh{i}", now, priority=p_high)
            for i in range(fresh_arrivals)
        ]
        order = admission_order(policy, requests, now)
        assert order[0] == 0  # the starved request goes first

    @given(
        priorities=st.lists(st.integers(-5, 5), min_size=2, max_size=10),
        now=st.integers(0, 20),
    )
    @settings(max_examples=200, deadline=None)
    def test_zero_aging_is_strict_priority(self, priorities, now):
        """aging=0 degrades to strict priority order (which *can*
        starve — the bound above is what aging buys)."""
        policy = PriorityAdmission(aging=0.0)
        requests = [
            make_request(f"r{i}", 0, priority=p)
            for i, p in enumerate(priorities)
        ]
        order = admission_order(policy, requests, now)
        ranked = [requests[i].priority for i in order]
        assert ranked == sorted(ranked, reverse=True)

    @given(
        aging=st.floats(0.01, 2.0, allow_nan=False),
        waits=st.lists(st.integers(0, 100), min_size=2, max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_equal_priority_ages_to_fifo(self, aging, waits):
        """With equal priorities, aging preserves FIFO: longer-waiting
        requests always rank first."""
        now = max(waits)
        policy = PriorityAdmission(aging=aging)
        requests = [
            make_request(f"r{i}", now - wait, priority=1)
            for i, wait in enumerate(waits)
        ]
        order = admission_order(policy, requests, now)
        ranked_waits = [now - requests[i].arrival_time for i in order]
        assert ranked_waits == sorted(ranked_waits, reverse=True)

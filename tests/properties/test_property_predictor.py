"""Property-based tests: the memoized round-cost predictor.

The predictor's contract is *exactness*, not approximation: every cached
re-assembly must reproduce the uncached ``AcceleratorSimulator`` result
bit-for-bit, and the scalar helpers the scheduler leans on must be
monotone in the work they price (a bigger chunk or a wider decode batch
can never be predicted cheaper).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.config import baseline_config, veda_config
from repro.accel.predictor import RoundCostPredictor
from repro.accel.simulator import AcceleratorSimulator
from repro.config import llama2_7b_shapes

MODEL = llama2_7b_shapes()
#: Shared across examples on purpose: later examples re-hit earlier
#: examples' cache entries, so equality also covers the warm path.
PREDICTOR = RoundCostPredictor(veda_config(), MODEL)
SIMULATOR = AcceleratorSimulator(veda_config(), MODEL)
FIXED_PREDICTOR = RoundCostPredictor(baseline_config(), MODEL)
FIXED_SIMULATOR = AcceleratorSimulator(baseline_config(), MODEL)

rows = st.integers(1, 384)
prefixes = st.integers(0, 128)
lengths = st.integers(1, 512)
batches = st.lists(st.integers(1, 512), min_size=1, max_size=6)
dataflows = st.sampled_from(["auto", "prefill", "decode"])


def _phase_tuple(stats):
    return (
        stats.cycles,
        stats.linear_cycles,
        stats.attention.total,
        stats.nonlinear_cycles,
        stats.interconnect_cycles,
        stats.macs,
        stats.hbm_bytes,
        stats.interconnect_bytes,
    )


def _round_tuple(stats):
    return (
        stats.cycles,
        stats.linear_cycles,
        stats.attention_cycles,
        stats.nonlinear_cycles,
        stats.interconnect_cycles,
        stats.macs,
        stats.hbm_bytes,
        stats.interconnect_bytes,
        tuple(stats.per_sequence_attention),
    )


class TestPredictorMatchesSimulator:
    @given(rows, prefixes, dataflows)
    @settings(max_examples=60, deadline=None)
    def test_prefill_bitwise_equal(self, prompt, prefix, dataflow):
        """Cached prefill is the simulator's, bit for bit (the issue's
        <1% agreement bar, met with error exactly 0)."""
        fast = PREDICTOR.prefill(prompt, dataflow=dataflow, prefix_length=prefix)
        slow = SIMULATOR.prefill(prompt, dataflow=dataflow, prefix_length=prefix)
        assert _phase_tuple(fast) == _phase_tuple(slow)

    @given(batches, dataflows)
    @settings(max_examples=60, deadline=None)
    def test_decode_round_bitwise_equal(self, cache_lengths, dataflow):
        fast = PREDICTOR.decode_round(cache_lengths, dataflow=dataflow)
        slow = SIMULATOR.decode_round(cache_lengths, dataflow=dataflow)
        assert _round_tuple(fast) == _round_tuple(slow)

    @given(st.lists(rows, min_size=0, max_size=3), batches)
    @settings(max_examples=40, deadline=None)
    def test_mixed_round_bitwise_equal(self, prefill_lengths, decode_lengths):
        fast = PREDICTOR.mixed_round(
            prefill_lengths=prefill_lengths, decode_lengths=decode_lengths
        )
        slow = SIMULATOR.mixed_round(
            prefill_lengths=prefill_lengths, decode_lengths=decode_lengths
        )
        assert fast.cycles == slow.cycles
        assert fast.macs == slow.macs
        assert fast.hbm_bytes == slow.hbm_bytes

    @given(rows, prefixes)
    @settings(max_examples=30, deadline=None)
    def test_fixed_dataflow_hardware_equal(self, prompt, prefix):
        """The baseline array resolves every selection to one tiled
        mapping; the cache keys on the resolved mapping and must agree."""
        fast = FIXED_PREDICTOR.prefill(prompt, prefix_length=prefix)
        slow = FIXED_SIMULATOR.prefill(prompt, prefix_length=prefix)
        assert _phase_tuple(fast) == _phase_tuple(slow)


class TestPredictedCostMonotone:
    @given(rows, st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_prefill_nondecreasing_in_chunk_rows(self, prompt, extra):
        """A bigger prefill chunk never predicts cheaper — the ordering
        the adaptive chunk ladder's budget search relies on."""
        assert PREDICTOR.prefill_cycles(prompt + extra) >= PREDICTOR.prefill_cycles(
            prompt
        )

    @given(batches, lengths)
    @settings(max_examples=60, deadline=None)
    def test_decode_nondecreasing_in_width(self, cache_lengths, added):
        """Admitting one more decode sequence never predicts cheaper."""
        wider = cache_lengths + [added]
        assert PREDICTOR.decode_round_cycles(wider) >= PREDICTOR.decode_round_cycles(
            cache_lengths
        )

    @given(batches, st.integers(0, 5), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_decode_nondecreasing_in_length(self, cache_lengths, index, grow):
        """A longer resident KV never predicts a cheaper round."""
        index %= len(cache_lengths)
        longer = list(cache_lengths)
        longer[index] += grow
        assert PREDICTOR.decode_round_cycles(longer) >= PREDICTOR.decode_round_cycles(
            cache_lengths
        )

    @given(lengths)
    @settings(max_examples=30, deadline=None)
    def test_preempt_prices_positive(self, kv_slots):
        """Both preemption mechanisms cost real cycles, and a swap-out
        plus swap-in is exactly two one-way transfers."""
        assert PREDICTOR.preempt_swap_cycles(kv_slots) == 2 * PREDICTOR.swap_cycles(
            kv_slots
        )
        assert PREDICTOR.preempt_swap_cycles(kv_slots) > 0
        assert PREDICTOR.preempt_recompute_cycles(kv_slots) > 0

"""Property-based tests: speculative decoding equivalence invariants.

Speculation is a pure scheduling transformation: for any workload, any
draft window k, any storage layout (dense or paged), and any eviction
policy, the speculating scheduler must produce bit-identical tokens,
eviction logs, and cache-length traces to the plain scheduler — and
leave no resource behind (block conservation through propose / verify /
reject / preempt, eviction-policy state as if it never speculated).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.core.policies.h2o import H2OPolicy
from repro.core.policies.voting import VotingPolicy
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM
from repro.serve import Request, Scheduler


@pytest.fixture(scope="module")
def draft_inference():
    """An independently initialized tiny model (same vocab as the target)."""
    return CachedTransformer.from_module(TransformerLM(tiny_config(), seed=7))


def policy_factory(model, policy):
    if policy == "voting":
        return lambda: VotingPolicy(model.config.n_layers, reserved_length=2)
    return lambda: H2OPolicy(model.config.n_layers, recent_window=4)


def make_requests(seed, n, budget=None):
    rng = np.random.default_rng(seed)
    return [
        Request(
            request_id=f"r{i}",
            prompt=rng.integers(0, 64, size=int(rng.integers(8, 28))),
            max_new_tokens=int(rng.integers(3, 12)),
            seed=i,
            budget=budget,
        )
        for i in range(n)
    ]


def serve(model, requests, policy="voting", draft_model=None, spec_k=4, **kw):
    scheduler = Scheduler(
        model,
        policy_factory=policy_factory(model, policy),
        max_batch_size=kw.pop("max_batch_size", 3),
        draft_model=draft_model,
        spec_k=spec_k,
        **kw,
    )
    for request in requests:
        scheduler.submit(request)
    report = scheduler.run()
    return scheduler, report


def assert_same_outcome(base_sched, spec_sched):
    base = {s.request_id: s for s in base_sched.results()}
    spec = {s.request_id: s for s in spec_sched.results()}
    assert set(base) == set(spec)
    for request_id, b in base.items():
        s = spec[request_id]
        assert s.tokens == b.tokens
        assert s.evictions == b.evictions
        assert s.cache_lengths == b.cache_lengths
        assert s.finish_reason == b.finish_reason


def assert_same_policy_state(base_policy, spec_policy):
    """Structural equality of two eviction-policy instances."""
    assert type(base_policy) is type(spec_policy)
    base_dict, spec_dict = vars(base_policy), vars(spec_policy)
    assert set(base_dict) == set(spec_dict)
    for key, base_value in base_dict.items():
        spec_value = spec_dict[key]
        if isinstance(base_value, np.ndarray):
            assert np.array_equal(base_value, spec_value), key
        elif isinstance(base_value, (list, tuple)):
            assert len(base_value) == len(spec_value), key
            for b, s in zip(base_value, spec_value):
                if isinstance(b, np.ndarray):
                    assert np.array_equal(b, s), key
                else:
                    assert b == s, key
        else:
            assert base_value == spec_value, key


class TestBitIdentity:
    @pytest.mark.parametrize("paged", [False, True])
    @pytest.mark.parametrize("policy", ["voting", "h2o"])
    @given(
        seed=st.integers(0, 2**32 - 1),
        spec_k=st.sampled_from([1, 2, 4]),
        budget=st.sampled_from([None, 14, 20]),
    )
    @settings(max_examples=12, deadline=None)
    def test_tokens_and_eviction_state_match_plain_decode(
        self, tiny_inference, draft_inference, paged, policy, seed, spec_k, budget
    ):
        requests = make_requests(seed, n=3, budget=budget)
        kw = dict(paged=paged, block_size=4)

        def recording(factory):
            created = []

            def make():
                instance = factory()
                created.append(instance)
                return instance

            return make, created

        base_factory, base_policies = recording(
            policy_factory(tiny_inference, policy)
        )
        spec_factory, spec_policies = recording(
            policy_factory(tiny_inference, policy)
        )
        base_sched = Scheduler(
            tiny_inference,
            policy_factory=base_factory,
            max_batch_size=3,
            **kw,
        )
        spec_sched = Scheduler(
            tiny_inference,
            policy_factory=spec_factory,
            max_batch_size=3,
            draft_model=draft_inference,
            spec_k=spec_k,
            **kw,
        )
        for scheduler in (base_sched, spec_sched):
            for request in requests:
                scheduler.submit(request)
            scheduler.run()
        assert_same_outcome(base_sched, spec_sched)
        # Both runs admit in the same deterministic order, so policies
        # pair up by creation order; rollback must leave each spec
        # policy's state as if it had never speculated.
        assert len(base_policies) == len(spec_policies) == len(requests)
        for b, s in zip(base_policies, spec_policies):
            assert_same_policy_state(b, s)

    @given(seed=st.integers(0, 2**32 - 1), spec_k=st.sampled_from([1, 2, 4]))
    @settings(max_examples=8, deadline=None)
    def test_chunked_prefill_composes_with_speculation(
        self, tiny_inference, draft_inference, seed, spec_k
    ):
        requests = make_requests(seed, n=3)
        base_sched, _ = serve(tiny_inference, requests, prefill_chunk=8)
        spec_sched, report = serve(
            tiny_inference,
            requests,
            draft_model=draft_inference,
            spec_k=spec_k,
            prefill_chunk=8,
        )
        assert_same_outcome(base_sched, spec_sched)


class TestBlockConservation:
    @given(
        seed=st.integers(0, 2**32 - 1),
        spec_k=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=10, deadline=None)
    def test_every_block_returns_to_the_pool(
        self, tiny_inference, draft_inference, seed, spec_k
    ):
        requests = make_requests(seed, n=4)
        scheduler, report = serve(
            tiny_inference,
            requests,
            draft_model=draft_inference,
            spec_k=spec_k,
            paged=True,
            block_size=4,
            prefix_caching=False,
        )
        assert len(scheduler.results()) == len(requests)
        assert scheduler.block_pool.num_used == 0

    @given(
        seed=st.integers(0, 2**32 - 1),
        mode=st.sampled_from(["recompute", "swap"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_preemption_composes_with_speculation(
        self, tiny_inference, draft_inference, seed, mode
    ):
        # A pool too small for the whole batch forces preemption.
        requests = make_requests(seed, n=4)
        kw = dict(
            paged=True,
            block_size=4,
            num_blocks=48,
            prefix_caching=False,
            preempt=mode,
            max_batch_size=4,
        )
        base_sched, base_report = serve(tiny_inference, requests, **kw)
        spec_sched, spec_report = serve(
            tiny_inference,
            requests,
            draft_model=draft_inference,
            spec_k=2,
            **kw,
        )
        assume(base_report.preemptions > 0)
        assert spec_sched.block_pool.num_used == 0
        # Provisional verify blocks change pool pressure, so preemption
        # *timing* (and with it the cache-length trace) may differ from
        # the plain run — but greedy verification still pins the tokens.
        base = {s.request_id: s for s in base_sched.results()}
        spec = {s.request_id: s for s in spec_sched.results()}
        assert set(base) == set(spec)
        for request_id, b in base.items():
            assert spec[request_id].tokens == b.tokens
            assert spec[request_id].finish_reason == b.finish_reason

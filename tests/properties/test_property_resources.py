"""Property-based tests: KVResourceManager block conservation.

Arbitrary admit / preempt (recompute or swap) / resume / retire
interleavings must conserve the pool exactly: no leaked blocks, no
double frees, prefix-shared refcounts exact, and a swapped-out image
restored bit-exactly even after its freed blocks were handed to other
sequences in the meantime.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.core.policies.voting import VotingPolicy
from repro.serve.request import PREFILLING, RUNNING, SWAPPED, Request, SequenceState
from repro.serve.resources import KVResourceManager


CONFIG = tiny_config()
BLOCK_SIZE = 4
NUM_BLOCKS = 64


def fill_pattern(request_id, layer, length):
    """Recognizable per-sequence KV content (head x slot x dim)."""
    base = float((hash((request_id, layer)) % 997) + 1)
    slots = np.arange(length, dtype=float)[None, :, None]
    return base + slots + np.zeros((CONFIG.n_heads, length, CONFIG.head_dim))


def write_sequence(state, lengths):
    """Append ``lengths[layer]`` patterned slots into each layer."""
    for layer_index, layer in enumerate(state.cache):
        length = lengths[layer_index]
        if not length:
            continue
        pattern = fill_pattern(state.request_id, layer_index, length)
        layer.append_block(pattern, -pattern, np.arange(length))


def assert_image_matches(state):
    """The restored cache holds exactly the pattern written originally."""
    for layer_index, layer in enumerate(state.cache):
        length = layer.length
        pattern = fill_pattern(state.request_id, layer_index, length)
        np.testing.assert_array_equal(layer.keys, pattern[:, :length])
        np.testing.assert_array_equal(layer.values, -pattern[:, :length])
        np.testing.assert_array_equal(layer.positions, np.arange(length))


@st.composite
def op_schedule(draw):
    """A random lifecycle schedule over a handful of sequences."""
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["admit", "preempt", "resume", "retire", "scribble"]),
                st.integers(0, 2**31 - 1),
            ),
            min_size=1,
            max_size=50,
        )
    )


class TestManagerConservation:
    @given(op_schedule(), st.sampled_from(["recompute", "swap"]))
    @settings(max_examples=40, deadline=None)
    def test_blocks_conserved_and_images_intact(self, ops, preempt):
        manager = KVResourceManager(
            CONFIG,
            max_batch_size=3,
            paged=True,
            block_size=BLOCK_SIZE,
            num_blocks=NUM_BLOCKS,
            prefix_caching=False,
            preempt=preempt,
            policy_factory=lambda: VotingPolicy(CONFIG.n_layers),
        )
        pool = manager.block_pool
        states = {}  # request_id -> SequenceState (admitted or swapped)
        swapped = set()
        next_id = 0
        scribbler = 0  # churns freed blocks to catch stale image sharing

        for op, pick in ops:
            admitted = sorted(set(states) - swapped)
            if op == "admit" and manager.slots_free > 0:
                length = 1 + pick % 11
                capacity = length + 4
                needed = manager.blocks_for_rows(length)
                if not manager.has_blocks(needed):
                    continue
                request_id = f"s{next_id}"
                next_id += 1
                state = SequenceState(
                    Request(request_id, np.arange(4), max_new_tokens=4)
                )
                state.cache = manager.admit(request_id, capacity)
                state.status = RUNNING if pick % 2 else PREFILLING
                write_sequence(
                    state, [length] * CONFIG.n_layers
                )
                states[request_id] = state
            elif op == "preempt" and admitted:
                request_id = admitted[pick % len(admitted)]
                state = states[request_id]
                if preempt == "swap":
                    manager.swap_out(state)
                    state.status = SWAPPED
                    swapped.add(request_id)
                else:
                    manager.release(request_id)
                    del states[request_id]
            elif op == "resume" and swapped:
                request_id = sorted(swapped)[pick % len(swapped)]
                state = states[request_id]
                if manager.slots_free <= 0:
                    continue
                if not manager.has_blocks(
                    manager.swap_in_blocks_needed(request_id)
                ):
                    continue
                manager.swap_in(state)
                swapped.discard(request_id)
                # Restored bit-exactly, even though the blocks freed at
                # swap-out may have been scribbled over by other
                # sequences since ("swapped-out blocks are never handed
                # to other sequences" — the image is independent).
                assert_image_matches(state)
            elif op == "retire" and admitted:
                request_id = admitted[pick % len(admitted)]
                manager.retire(request_id)
                del states[request_id]
            elif op == "scribble" and manager.slots_free > 0 and pool.num_free:
                # An unrelated short-lived sequence reuses freed blocks.
                request_id = f"noise{scribbler}"
                scribbler += 1
                cache = manager.admit(request_id, BLOCK_SIZE)
                for layer in cache:
                    layer.append_block(
                        np.full((CONFIG.n_heads, 1, CONFIG.head_dim), 1e9),
                        np.full((CONFIG.n_heads, 1, CONFIG.head_dim), -1e9),
                        np.array([0]),
                    )
                manager.retire(request_id)

            # ---- invariants after every operation ----
            assert pool.num_free + pool.num_used == pool.num_blocks
            live = sum(
                states[rid].cache.num_blocks
                for rid in states
                if rid not in swapped
            )
            # No leaks, no double-frees: exactly the admitted sequences'
            # tables are live (no prefix cache in this schedule).
            assert pool.num_used == live
            assert manager.slots_used == len(states) - len(swapped)
            assert manager.num_swapped == len(swapped)
            host = sum(
                sum(manager._swapped[rid].lengths) for rid in swapped
            )
            assert manager.host_kv_slots == host

        # Drain: resume everything swapped, then retire everything.
        for request_id in sorted(swapped):
            state = states[request_id]
            while manager.slots_free <= 0:
                victim = sorted(set(states) - swapped)[0]
                manager.retire(victim)
                del states[victim]
            manager.swap_in(state)
            assert_image_matches(state)
        for request_id in sorted(states):
            manager.retire(request_id)
        assert pool.num_free == pool.num_blocks
        assert manager.host_kv_slots == 0

    @given(st.integers(1, 24), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_swap_roundtrip_preserves_voting_state(self, length, extra_votes):
        """The export/import snapshot path restores vote counters exactly."""
        manager = KVResourceManager(
            CONFIG,
            max_batch_size=2,
            paged=True,
            block_size=BLOCK_SIZE,
            num_blocks=NUM_BLOCKS,
            preempt="swap",
            policy_factory=lambda: VotingPolicy(CONFIG.n_layers),
        )
        state = SequenceState(Request("r0", np.arange(4), max_new_tokens=4))
        state.cache = manager.admit("r0", length + 8)
        state.status = RUNNING
        write_sequence(state, [length] * CONFIG.n_layers)
        policy = VotingPolicy(CONFIG.n_layers)
        rng = np.random.default_rng(length)
        for layer in range(CONFIG.n_layers):
            attn = rng.random((CONFIG.n_heads, length, length))
            attn /= attn.sum(axis=-1, keepdims=True)
            attn *= np.tril(np.ones((length, length)))
            policy.observe_block(layer, attn, np.arange(length), "prefill")
        expected = [policy.vote_counts(layer) for layer in range(CONFIG.n_layers)]
        state.policy = policy

        manager.swap_out(state)
        assert state.policy is None  # snapshot path pages the votes out
        manager.swap_in(state)
        assert isinstance(state.policy, VotingPolicy)
        assert state.policy is not policy  # rebuilt, not retained
        for layer in range(CONFIG.n_layers):
            np.testing.assert_array_equal(
                state.policy.vote_counts(layer), expected[layer]
            )
        manager.retire("r0")

    def test_prefix_refcounts_exact_across_swap(self):
        """A swapped sequence releases its references to shared prefix
        blocks; the prefix cache's own references survive untouched."""
        manager = KVResourceManager(
            CONFIG,
            max_batch_size=2,
            paged=True,
            block_size=BLOCK_SIZE,
            num_blocks=NUM_BLOCKS,
            prefix_caching=True,
            preempt="swap",
            policy_factory=lambda: VotingPolicy(CONFIG.n_layers),
        )
        pool = manager.block_pool
        # Register one full block per layer in the prefix cache.
        shared = [pool.allocate() for _ in range(CONFIG.n_layers)]
        root = manager.prefix_cache.root(("test",))
        manager.prefix_cache.insert(root, (1, 2, 3, 4), shared, None, pool)

        state = SequenceState(Request("r0", np.arange(8), max_new_tokens=4))
        state.cache = manager.admit("r0", 16)
        state.status = RUNNING
        state.cache.attach_prefix([[b] for b in shared], BLOCK_SIZE)
        for block in shared:
            pool.release(block)  # drop the allocation refs; cache + entry remain
        assert all(pool.refcount(b) == 2 for b in shared)

        manager.swap_out(state)
        assert all(pool.refcount(b) == 1 for b in shared)  # entry's ref only
        manager.swap_in(state)
        # Swap-in restores into private blocks; the shared originals
        # keep exactly the prefix cache's reference.
        assert all(pool.refcount(b) == 1 for b in shared)
        assert state.cache[0].length == BLOCK_SIZE
        manager.retire("r0")
        manager.clear_prefix_cache()
        assert pool.num_free == pool.num_blocks

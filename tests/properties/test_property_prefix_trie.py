"""Property-based tests: the radix-trie prefix cache.

Four invariants drawn over random block sequences:

- **Roundtrip / oracle** — ``match`` returns exactly the longest common
  prefix between the prompt and any registered chain (capped at
  ``len(prompt) - 1``); budgeted matches are the block-granular floor of
  the same quantity.
- **Partial-tail CoW never aliases** — adopting a divergent block at a
  mid-block shared length and then appending must copy, never clobber,
  the resident prefix.
- **Refcount conservation** — across arbitrary insert/reclaim/clear
  interleavings the pool's used-block count equals the trie's held-block
  count exactly (no leaks, no double frees).
- **Snapshot bit-equality** — an eviction policy resumed from a trie
  snapshot at an arbitrary block boundary exports bitwise the same state
  as one that observed the whole prefill cold (voting and H2O).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies.base import PREFILL
from repro.core.policies.h2o import H2OPolicy
from repro.core.policies.voting import VotingPolicy
from repro.serve.paging import BlockPool, PagedLayerKVCache
from repro.serve.prefix_cache import PrefixCache

BLOCK = 4
#: Tiny alphabet so random chains actually share prefixes.
token = st.integers(0, 2)
chain = st.lists(
    st.lists(token, min_size=BLOCK, max_size=BLOCK), min_size=1, max_size=4
).map(lambda blocks: tuple(t for b in blocks for t in b))


def common_prefix(a, b):
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def register_chain(cache, pool, tokens, policy_state=True):
    """Insert ``tokens`` (a multiple of BLOCK) as a chain of blocks,
    leaving the trie as the blocks' only owner."""
    parent = cache.root(("test",))
    for start in range(0, len(tokens), BLOCK):
        block_id = pool.allocate()
        node = cache.insert(
            parent,
            tokens[start : start + BLOCK],
            [block_id],
            [("snap", start + BLOCK)] if policy_state else None,
            pool,
        )
        pool.release(block_id)  # the trie's refcount keeps it alive
        parent = node
    return parent


class TestMatchOracle:
    @given(
        chains=st.lists(chain, min_size=1, max_size=5),
        prompt=st.lists(token, min_size=1, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_match_is_longest_common_prefix(self, chains, prompt):
        pool = BlockPool(n_heads=1, head_dim=2, block_size=BLOCK)
        cache = PrefixCache(block_size=BLOCK)
        for tokens in chains:
            register_chain(cache, pool, tokens)
        prompt = tuple(prompt)
        limit = len(prompt) - 1
        best = max(common_prefix(prompt, tokens) for tokens in chains)
        expected = min(limit, best)

        hit = cache.match(prompt, ("test",))
        assert hit.shared_length == expected
        # Fully-adopted nodes spell the prompt prefix back exactly.
        spelled = tuple(t for node in hit.nodes for t in node.tokens)
        assert spelled == prompt[: len(spelled)]
        if hit.tail_length:
            tail = hit.tail_node.tokens[: hit.tail_length]
            assert spelled + tuple(tail) == prompt[:expected]

        # Budgeted coverage is the block-granular floor of the same
        # quantity (every registered node carries a snapshot here).
        budgeted = cache.match(prompt, ("test",), budgeted=True)
        assert budgeted.shared_length == (expected // BLOCK) * BLOCK
        assert budgeted.tail_length == 0
        assert budgeted.policy_length == budgeted.shared_length

    @given(chains=st.lists(chain, min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_registered_chain_roundtrips(self, chains):
        pool = BlockPool(n_heads=1, head_dim=2, block_size=BLOCK)
        cache = PrefixCache(block_size=BLOCK)
        for tokens in chains:
            register_chain(cache, pool, tokens)
        for tokens in chains:
            # One extra token: the last live row is never adoptable.
            hit = cache.match(tokens + (0,), ("test",))
            assert hit.shared_length == len(tokens)
            assert hit.parent.depth == len(tokens)


class TestPartialTailNeverAliases:
    @given(
        shared=st.integers(1, 2 * BLOCK - 1),
        seed=st.integers(0, 2**31 - 1),
        extra=st.integers(1, BLOCK + 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_adopter_appends_copy_not_clobber(self, shared, seed, extra):
        """Adopt ``shared`` of 8 resident tokens (mid-block when shared
        is not a multiple of BLOCK) and append ``extra`` fresh rows: the
        resident KV must stay bit-identical and the adopter must see the
        shared rows plus its own."""
        rng = np.random.default_rng(seed)
        pool = BlockPool(n_heads=1, head_dim=2, block_size=BLOCK, num_blocks=8)
        owner = PagedLayerKVCache(pool, capacity=16)
        keys = rng.normal(size=(1, 2 * BLOCK, 2))
        owner.append_block(keys, -keys, np.arange(2 * BLOCK))
        owner_ids = list(owner.block_ids)
        before = [pool.keys[b].copy() for b in owner_ids]

        n_blocks = -(-shared // BLOCK)
        adopter = PagedLayerKVCache(pool, capacity=16)
        adopter.attach_blocks(owner_ids[:n_blocks], shared)
        fresh = rng.normal(size=(1, extra, 2)) + 100.0
        adopter.append_block(fresh, -fresh, np.arange(shared, shared + extra))

        for block_id, snapshot in zip(owner_ids, before):
            np.testing.assert_array_equal(pool.keys[block_id], snapshot)
        np.testing.assert_array_equal(adopter.keys[:, :shared], keys[:, :shared])
        np.testing.assert_array_equal(adopter.keys[:, shared:], fresh)
        if shared % BLOCK:
            assert pool.cow_copies == 1  # the partial block was copied
            assert adopter.block_ids[n_blocks - 1] != owner_ids[n_blocks - 1]
        adopter.release()
        owner.release()
        assert pool.num_used == 0


class TestRefcountConservation:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("insert"), chain),
                st.tuples(st.just("reclaim"), st.integers(1, 8)),
                st.tuples(st.just("match"), st.lists(token, min_size=1, max_size=12)),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_pool_usage_equals_trie_holdings(self, ops):
        pool = BlockPool(n_heads=1, head_dim=2, block_size=BLOCK)
        cache = PrefixCache(block_size=BLOCK)
        for op, arg in ops:
            if op == "insert":
                register_chain(cache, pool, arg)
            elif op == "reclaim":
                cache.reclaim(pool, arg)
            else:
                cache.match(tuple(arg), ("test",))
            assert pool.num_used == cache.num_blocks_held
            # Trie-held blocks are singly referenced (no live adopters).
            for node_count in [cache.num_entries]:
                assert node_count == cache.num_blocks_held
        cache.clear(pool)
        assert pool.num_used == 0
        assert cache.num_blocks_held == 0


def observe_range(policy, attn, start, end):
    """Feed rows [start, end) in block-sized chunks, as the scheduler's
    paged prefill does."""
    positions = np.arange(attn.shape[2])
    row = start
    while row < end:
        stop = min((row // BLOCK + 1) * BLOCK, end)
        policy.observe_continuation(
            0, attn[:, row:stop, :stop], positions[:stop], PREFILL
        )
        row = stop


class TestSnapshotBitEquality:
    @given(
        n_blocks=st.integers(1, 4),
        split_block=st.integers(1, 4),
        tail_rows=st.integers(1, BLOCK),
        seed=st.integers(0, 2**31 - 1),
        policy_cls=st.sampled_from([VotingPolicy, H2OPolicy]),
    )
    @settings(max_examples=60, deadline=None)
    def test_resume_from_trie_snapshot_matches_cold(
        self, n_blocks, split_block, tail_rows, seed, policy_cls
    ):
        """Register a prefill's boundary snapshots in the trie, re-match
        an arbitrary boundary split, import, continue observing — the
        final exported state is bitwise the cold run's."""
        split_block = min(split_block, n_blocks)
        total = n_blocks * BLOCK + tail_rows
        rng = np.random.default_rng(seed)
        attn = np.abs(rng.normal(size=(2, total, total)))
        prompt = tuple(int(t) for t in rng.integers(0, 3, size=total))

        pool = BlockPool(n_heads=1, head_dim=2, block_size=BLOCK)
        cache = PrefixCache(block_size=BLOCK)
        cold = policy_cls(1)
        parent = cache.root(("p",))
        for b in range(n_blocks):
            observe_range(cold, attn, b * BLOCK, (b + 1) * BLOCK)
            block_id = pool.allocate()
            parent = cache.insert(
                parent,
                prompt[b * BLOCK : (b + 1) * BLOCK],
                [block_id],
                [cold.export_prefill_state(0, (b + 1) * BLOCK)],
                pool,
            )
            pool.release(block_id)
        observe_range(cold, attn, n_blocks * BLOCK, total)

        # Match only up to the chosen split: divergent token right after.
        boundary = split_block * BLOCK
        query = prompt[:boundary] + ((prompt[boundary] + 1) % 3,)
        hit = cache.match(query, ("p",), budgeted=True)
        assert hit.policy_length == boundary

        warm = policy_cls(1)
        warm.import_prefill_state(0, hit.policy_state[0], boundary)
        observe_range(warm, attn, boundary, total)

        np.testing.assert_array_equal(
            warm.export_prefill_state(0, total),
            cold.export_prefill_state(0, total),
        )

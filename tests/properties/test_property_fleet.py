"""Property-based tests: fleet routing invariants.

Three invariants must hold for *every* workload and placement policy,
not just the benchmark presets: (1) routing is a partition — each
submitted request is served by exactly one replica, and the router's
recorded placement is where it actually retired; (2) per-replica
resource conservation — after a drained run each replica's block pool
holds exactly its prefix-trie blocks and releasing the trie frees the
pool completely, with zero batch slots left occupied; (3) prefix
affinity never routes to a replica whose trie match is strictly shorter
than the best available, and among deepest-match ties it picks the
least-loaded key exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_config
from repro.core.policies.voting import VotingPolicy
from repro.experiments.serving import make_workload
from repro.serve import PrefixAffinityPlacement, Request, ServingFleet

BLOCK_SIZE = 4
PLACEMENTS = ("round_robin", "least_loaded", "prefix_affinity")


def _fleet(model, replicas, placement):
    return ServingFleet(
        model,
        replicas=replicas,
        placement=placement,
        policy_factory=lambda: VotingPolicy(
            model.config.n_layers, reserved_length=4
        ),
        max_batch_size=4,
        paged=True,
        block_size=BLOCK_SIZE,
    )


def _workload(model, n_requests, turns, seed):
    return make_workload(
        n_requests=n_requests,
        turns=turns,
        vocab=model.config.vocab_size,
        seed=seed,
    )


class StubEngine:
    def __init__(self, match, outstanding, free):
        self.outstanding_tokens = outstanding
        self.free_kv_capacity = free
        self._match = match

    def prefix_probe(self, request):
        return self._match


class TestRoutingPartition:
    @given(
        st.integers(2, 3),
        st.sampled_from(PLACEMENTS),
        st.integers(2, 5),
        st.integers(1, 3),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_each_request_served_by_exactly_one_replica(
        self, replicas, placement, n_requests, turns, seed
    ):
        model = _model()
        workload = _workload(model, n_requests, turns, seed % 1000)
        fleet = _fleet(model, replicas, placement)
        fleet.play(workload)
        served = [
            {s.request.request_id for s in engine.scheduler.results()}
            for engine in fleet.engines
        ]
        # Pairwise disjoint, jointly complete, and placement-consistent.
        assert sum(len(ids) for ids in served) == len(workload)
        assert set().union(*served) == {r.request_id for r in workload}
        for request in workload:
            rid = request.request_id
            assert rid in served[fleet.replica_of(rid)]


class TestReplicaConservation:
    @given(
        st.sampled_from(PLACEMENTS),
        st.integers(2, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_drained_replicas_hold_only_trie_blocks(
        self, placement, n_requests, seed
    ):
        model = _model()
        fleet = _fleet(model, 2, placement)
        fleet.play(_workload(model, n_requests, 2, seed % 1000))
        assert fleet.drained
        for engine in fleet.engines:
            scheduler = engine.scheduler
            assert scheduler.manager.slots_used == 0
            pool = scheduler.block_pool
            assert (
                pool.num_used == scheduler.prefix_cache.num_blocks_held
            )
            scheduler.release_prefix_cache()
            assert pool.num_free == pool.num_blocks


class TestAffinityNeverShorter:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 20),
                st.integers(0, 100),
                st.integers(0, 50),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_choice_is_deepest_match_then_least_loaded(self, signals):
        """Against arbitrary replica signals: the chosen replica's match
        is never strictly shorter than the best, and deepest-match ties
        resolve to the minimal least-loaded key."""
        engines = [StubEngine(m, o, f) for m, o, f in signals]
        request = Request("probe", np.arange(8), max_new_tokens=2)
        index = PrefixAffinityPlacement().choose(request, engines)
        matches = [engine.prefix_probe(request) for engine in engines]
        assert matches[index] == max(matches)
        tied = [i for i, m in enumerate(matches) if m == max(matches)]

        def load_key(i):
            return (
                engines[i].outstanding_tokens,
                -engines[i].free_kv_capacity,
                i,
            )

        assert load_key(index) == min(load_key(i) for i in tied)

    @given(st.integers(2, 3), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_live_fleet_routes_to_a_deepest_match(self, replicas, seed):
        """The same invariant over *real* trie probes: record every
        routing decision's probe vector during a served stream."""
        observations = []

        class Recording(PrefixAffinityPlacement):
            def choose(self, request, engines):
                index = super().choose(request, engines)
                observations.append(
                    (
                        [e.prefix_probe(request) for e in engines],
                        index,
                    )
                )
                return index

        model = _model()
        fleet = _fleet(model, replicas, Recording())
        fleet.play(_workload(model, 4, 2, seed % 1000))
        assert len(observations) == 8  # one decision per request
        assert any(max(matches) > 0 for matches, _ in observations)
        for matches, index in observations:
            assert matches[index] == max(matches)


_MODEL = None


def _model():
    global _MODEL
    if _MODEL is None:
        from repro.models.inference import CachedTransformer
        from repro.models.transformer import TransformerLM

        _MODEL = CachedTransformer.from_module(
            TransformerLM(tiny_config(), seed=0)
        )
    return _MODEL

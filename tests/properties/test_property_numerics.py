"""Property-based tests: numeric substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp
from scipy import special

from repro.numerics.fixed_point import SaturatingCounter, clamp_unsigned
from repro.numerics.fp16 import fp16_quantize
from repro.numerics.online import (
    OnlineSoftmaxNormalizer,
    WelfordAccumulator,
    online_softmax,
    stable_softmax,
)

finite_floats = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 64),
    elements=finite_floats,
)


class TestOnlineSoftmaxProperties:
    @given(float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_matches_two_pass(self, x):
        np.testing.assert_allclose(
            online_softmax(x), stable_softmax(x), atol=1e-10
        )

    @given(float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_sums_to_one(self, x):
        assert online_softmax(x).sum() == np.float64(1.0).__class__(
            online_softmax(x).sum()
        )
        np.testing.assert_allclose(online_softmax(x).sum(), 1.0, atol=1e-9)

    @given(float_arrays, finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, x, shift):
        np.testing.assert_allclose(
            online_softmax(x), online_softmax(x + shift), atol=1e-9
        )

    @given(float_arrays)
    @settings(max_examples=50, deadline=None)
    def test_order_of_stream_does_not_matter_for_state(self, x):
        forward = OnlineSoftmaxNormalizer()
        for v in x:
            forward.update(v)
        backward = OnlineSoftmaxNormalizer()
        for v in x[::-1]:
            backward.update(v)
        assert forward.max == backward.max
        np.testing.assert_allclose(forward.exp_sum, backward.exp_sum, rtol=1e-9)


class TestWelfordProperties:
    @given(float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, x):
        acc = WelfordAccumulator()
        acc.update_many(x)
        np.testing.assert_allclose(acc.mean, np.mean(x), atol=1e-8)
        np.testing.assert_allclose(acc.variance, np.var(x), atol=1e-6)

    @given(float_arrays)
    @settings(max_examples=50, deadline=None)
    def test_variance_non_negative(self, x):
        acc = WelfordAccumulator()
        acc.update_many(x)
        assert acc.variance >= 0.0


class TestFP16Properties:
    @given(float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, x):
        once = fp16_quantize(x)
        np.testing.assert_array_equal(once, fp16_quantize(once))

    @given(float_arrays)
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, x):
        """Quantization preserves (weak) ordering."""
        ordered = np.sort(x)
        quantized = fp16_quantize(ordered)
        assert np.all(np.diff(quantized) >= 0.0)

    @given(finite_floats)
    @settings(max_examples=100, deadline=None)
    def test_sign_preserved(self, v):
        q = fp16_quantize(v)
        assert np.sign(q) == np.sign(v) or q == 0.0


class TestSaturatingCounterProperties:
    @given(
        st.lists(
            hnp.arrays(dtype=np.int64, shape=8, elements=st.integers(0, 3)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_max_never_negative(self, increments):
        counter = SaturatingCounter(8, bits=6)  # max 63
        for inc in increments:
            counter.increment(inc)
        assert np.all(counter.counts <= 63)
        assert np.all(counter.counts >= 0)

    @given(
        hnp.arrays(dtype=np.int64, shape=8, elements=st.integers(0, 100)),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_clamped_sum(self, inc):
        counter = SaturatingCounter(8, bits=6)
        counter.increment(inc)
        np.testing.assert_array_equal(counter.counts, clamp_unsigned(inc, 6))

"""SFU: streaming softmax/layernorm units and stall model."""

import numpy as np
import pytest
from scipy import special

from repro.accel.config import veda_config
from repro.accel.sfu import (
    LayerNormUnit,
    SoftmaxUnit,
    layernorm_stall_cycles,
    softmax_stall_cycles,
)


@pytest.fixture()
def hw():
    return veda_config()


class TestStallModel:
    def test_element_serial_is_o1(self, hw):
        """The headline claim: stall independent of length (O(1) SFU)."""
        short = softmax_stall_cycles(16, hw, element_serial=True)
        long = softmax_stall_cycles(4096, hw, element_serial=True)
        assert short == long == hw.element_serial_drain

    def test_conventional_scales_with_length(self, hw):
        s1 = softmax_stall_cycles(256, hw, element_serial=False)
        s2 = softmax_stall_cycles(512, hw, element_serial=False)
        assert s2 > s1
        assert s2 - s1 == 128  # 256 extra elements / 2 exp units

    def test_layernorm_element_serial(self, hw):
        assert layernorm_stall_cycles(4096, hw, True) == hw.element_serial_drain

    def test_layernorm_conventional(self, hw):
        stall = layernorm_stall_cycles(4096, hw, False)
        assert stall == 2048 + 2048 + hw.softmax_stage_overhead

    def test_rejects_bad_length(self, hw):
        with pytest.raises(ValueError):
            softmax_stall_cycles(0, hw, True)
        with pytest.raises(ValueError):
            layernorm_stall_cycles(-1, hw, False)


class TestSoftmaxUnit:
    def test_matches_scipy_float64(self, rng):
        unit = SoftmaxUnit(quantize=False)
        x = rng.normal(size=64) * 4
        np.testing.assert_allclose(unit(x), special.softmax(x), atol=1e-12)

    def test_fp16_close_to_exact(self, rng):
        unit = SoftmaxUnit(quantize=True)
        x = rng.normal(size=32)
        np.testing.assert_allclose(unit(x), special.softmax(x), atol=2e-3)

    def test_reduction_then_normalize_stages(self, rng):
        unit = SoftmaxUnit(quantize=False)
        x = rng.normal(size=16)
        normalizer = unit.reduce(x)
        assert normalizer.max == pytest.approx(np.max(x))
        out = unit.normalize(x, normalizer)
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    def test_op_counters(self, rng):
        unit = SoftmaxUnit()
        unit(rng.normal(size=10))
        # reduction: 1 exp per element; normalization: 1 exp + 1 div each.
        assert unit.counters.exp_ops == 20
        assert unit.counters.div_ops == 10


class TestLayerNormUnit:
    def test_matches_reference(self, rng):
        unit = LayerNormUnit(quantize=False)
        x = rng.normal(size=128) * 3 + 5
        out = unit(x)
        expected = (x - x.mean()) / np.sqrt(x.var() + 1e-5)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_fp16_close(self, rng):
        unit = LayerNormUnit(quantize=True)
        x = rng.normal(size=64)
        expected = (x - x.mean()) / np.sqrt(x.var() + 1e-5)
        np.testing.assert_allclose(unit(x), expected, atol=5e-3)

    def test_sqrt_counter(self, rng):
        unit = LayerNormUnit()
        unit(rng.normal(size=8))
        assert unit.counters.sqrt_ops == 1
        assert unit.counters.div_ops == 8

"""End-to-end accelerator simulator."""

import pytest

from repro.accel.config import ablation_configs, veda_config
from repro.accel.simulator import AcceleratorSimulator
from repro.config import llama2_7b_shapes, tiny_config


@pytest.fixture(scope="module")
def llama_sim():
    return AcceleratorSimulator(veda_config(), llama2_7b_shapes())


class TestDecodeStep:
    def test_cycles_positive_and_monotone_in_cache(self, llama_sim):
        short = llama_sim.decode_step(128)
        long = llama_sim.decode_step(1024)
        assert 0 < short.cycles < long.cycles
        assert short.attention.total < long.attention.total

    def test_linear_layers_memory_bound(self, llama_sim):
        """Decode weights stream from HBM: linear cycles ≈ weight bytes /
        bandwidth."""
        stats = llama_sim.decode_step(128)
        model = llama_sim.model
        weight_bytes = (
            model.n_layers * (4 * model.d_model**2 + 3 * model.d_model * model.d_ff)
            + model.d_model * model.vocab_size
        ) * 2
        expected = weight_bytes / llama_sim.hw.bytes_per_cycle
        assert stats.linear_cycles == pytest.approx(expected, rel=0.01)

    def test_macs_counted(self, llama_sim):
        stats = llama_sim.decode_step(256)
        model = llama_sim.model
        linear_macs = (
            model.n_layers * (4 * model.d_model**2 + 3 * model.d_model * model.d_ff)
            + model.d_model * model.vocab_size
        )
        attn_macs = model.n_layers * 2 * model.d_model * 256
        assert stats.macs == pytest.approx(linear_macs + attn_macs)


class TestPrefill:
    def test_prefill_scales_superlinearly(self, llama_sim):
        """Attention is quadratic in prompt length."""
        short = llama_sim.prefill(128)
        long = llama_sim.prefill(512)
        assert long.attention.total > 10 * short.attention.total

    def test_rejects_bad_prompt(self, llama_sim):
        with pytest.raises(ValueError):
            llama_sim.prefill(0)

    def test_near_full_utilization(self, llama_sim):
        """Prefill GEMMs on aligned Llama shapes keep the array busy
        (paper: 245/256 GOPS)."""
        stats = llama_sim.prefill(512)
        gops = llama_sim.achieved_gops(stats)
        assert gops > 0.9 * llama_sim.hw.peak_gops


class TestRun:
    def test_cache_trajectory_without_budget(self, llama_sim):
        assert llama_sim.cache_length_at(512, 1) == 513
        assert llama_sim.cache_length_at(512, 100) == 612

    def test_cache_trajectory_with_budget(self, llama_sim):
        assert llama_sim.cache_length_at(512, 100, kv_budget=256) == 257

    def test_budget_speeds_up_decode(self, llama_sim):
        full = llama_sim.run(512, 64)
        compressed = llama_sim.run(512, 64, kv_budget=128)
        assert compressed.decode.cycles < full.decode.cycles
        assert compressed.prefill.cycles == full.prefill.cycles

    def test_mean_attention_metrics(self, llama_sim):
        stats = llama_sim.run(512, 32)
        assert stats.mean_decode_attention() > 0
        assert stats.mean_attention_per_token(512) > 0
        assert len(stats.decode_attention_per_token) == 32

    def test_vote_traffic_charged_only_with_budget(self, llama_sim):
        with_budget = llama_sim.run(512, 16, kv_budget=256)
        without = llama_sim.run(512, 16)
        per_step_without = without.decode.hbm_bytes
        # budgeted run reads less KV but adds vote counters; both effects
        # must at least be present (bytes differ).
        assert with_budget.decode.hbm_bytes != per_step_without

    def test_no_decode_steps_raises_on_mean(self, llama_sim):
        stats = llama_sim.run(512, 0)
        with pytest.raises(ValueError):
            stats.mean_decode_attention()


class TestEndToEnd:
    def test_tokens_per_second_matches_paper(self, llama_sim):
        """Paper: 18.6 tokens/s for one VEDA on Llama-2 7B."""
        tps = llama_sim.tokens_per_second(512, 64, kv_budget=256)
        assert tps == pytest.approx(18.6, rel=0.05)

    def test_ablation_ordering_full_run(self):
        model = llama2_7b_shapes()
        totals = {}
        for name, hw in ablation_configs().items():
            sim = AcceleratorSimulator(hw, model)
            totals[name] = sim.run(512, 64).total_attention_cycles
        assert totals["Baseline"] > totals["Baseline+F"] > totals["Baseline+F+E"]

    def test_small_model_shapes_work(self):
        """The simulator accepts arbitrary model shapes (e.g. the tiny
        test model with d_head 16 < array width)."""
        sim = AcceleratorSimulator(veda_config(), tiny_config())
        stats = sim.run(16, 4, kv_budget=8)
        assert stats.total_cycles > 0

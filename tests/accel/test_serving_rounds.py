"""Batched decode rounds, mixed-round costing, and dataflow selection."""

import pytest

from repro.accel.config import baseline_config, veda_config
from repro.accel.scheduler import (
    DATAFLOWS,
    decode_attention,
    prefill_attention,
    resolve_dataflow,
)
from repro.accel.simulator import AcceleratorSimulator
from repro.config import llama2_7b_shapes, tiny_config


@pytest.fixture()
def hw():
    return veda_config()


@pytest.fixture()
def shapes():
    return llama2_7b_shapes()


class TestResolveDataflow:
    def test_auto_resolves_to_phase(self, hw):
        assert resolve_dataflow("auto", hw, "prefill") == "prefill"
        assert resolve_dataflow("auto", hw, "decode") == "decode"

    def test_pinned_selection_overrides_phase(self, hw):
        assert resolve_dataflow("prefill", hw, "decode") == "prefill"
        assert resolve_dataflow("decode", hw, "prefill") == "decode"

    def test_fixed_hardware_collapses_to_tiled(self):
        fixed = baseline_config()
        assert resolve_dataflow("auto", fixed, "decode") == "prefill"
        assert resolve_dataflow("prefill", fixed, "prefill") == "prefill"

    def test_fixed_hardware_rejects_streaming(self):
        with pytest.raises(ValueError):
            resolve_dataflow("decode", baseline_config(), "decode")

    def test_unknown_dataflow_rejected(self, hw):
        with pytest.raises(ValueError):
            resolve_dataflow("gemm", hw, "decode")
        with pytest.raises(ValueError):
            resolve_dataflow("auto", hw, "mixed")


class TestDataflowPenalties:
    """Each phase is native under its own mapping and pays cross-phase."""

    def test_decode_native_mapping_matches_default(self, hw, shapes):
        for length in (7, 64, 500, 4096):
            default = decode_attention(length, shapes.head_dim, shapes.n_heads, hw)
            streaming = decode_attention(
                length, shapes.head_dim, shapes.n_heads, hw, dataflow="decode"
            )
            assert streaming.total == default.total

    def test_decode_under_tiled_mapping_costs_more(self, hw, shapes):
        for length in (7, 64, 500, 4096):
            native = decode_attention(length, shapes.head_dim, shapes.n_heads, hw)
            pinned = decode_attention(
                length, shapes.head_dim, shapes.n_heads, hw, dataflow="prefill"
            )
            assert pinned.total > native.total

    def test_prefill_native_mapping_matches_default(self, hw, shapes):
        default = prefill_attention(48, shapes.head_dim, shapes.n_heads, hw)
        tiled = prefill_attention(
            48, shapes.head_dim, shapes.n_heads, hw, dataflow="prefill"
        )
        assert tiled.total == default.total

    def test_prefill_under_streaming_mapping_costs_more(self, hw, shapes):
        """7B shapes are bandwidth-balanced, so per-row K/V re-streaming
        through the strided derate is strictly memory-bound."""
        native = prefill_attention(48, shapes.head_dim, shapes.n_heads, hw)
        pinned = prefill_attention(
            48, shapes.head_dim, shapes.n_heads, hw, dataflow="decode"
        )
        assert pinned.total > native.total

    def test_fixed_hardware_keeps_baseline_costs(self, shapes):
        fixed = baseline_config()
        for dataflow in ("auto", "prefill"):
            assert (
                decode_attention(
                    100, shapes.head_dim, shapes.n_heads, fixed, dataflow=dataflow
                ).total
                == decode_attention(100, shapes.head_dim, shapes.n_heads, fixed).total
            )

    def test_prefix_length_extends_attended_keys(self, hw, shapes):
        """A continuation row attends to resident prefix keys, so pricing
        rows [P+1, P+S] of a cold prefill equals the continuation cost."""
        full = prefill_attention(48, shapes.head_dim, shapes.n_heads, hw)
        head = prefill_attention(32, shapes.head_dim, shapes.n_heads, hw)
        tail = prefill_attention(
            16, shapes.head_dim, shapes.n_heads, hw, prefix_length=32
        )
        assert head.total + tail.total == pytest.approx(full.total)


class TestDecodeRound:
    def test_single_sequence_matches_decode_step(self, hw, shapes):
        """The anchor for batch-size-1 serving-cosim equivalence: exact
        equality, not approximate."""
        sim = AcceleratorSimulator(hw, shapes)
        for length in (5, 64, 500):
            step = sim.decode_step(length)
            round_stats = sim.decode_round([length])
            assert round_stats.cycles == step.cycles
            assert round_stats.linear_cycles == step.linear_cycles
            assert round_stats.attention.total == step.attention.total
            assert round_stats.nonlinear_cycles == step.nonlinear_cycles
            assert round_stats.macs == step.macs
            assert round_stats.hbm_bytes == step.hbm_bytes

    def test_batched_round_amortizes_weight_fetch(self, shapes):
        """On bandwidth-rich hardware decode GEMVs are memory-bound, so
        one weight fetch serving the whole batch beats per-sequence
        streaming."""
        cloud = veda_config(pe_arrays=32)
        sim = AcceleratorSimulator(cloud, shapes)
        lengths = [256] * 8
        batched = sim.decode_round(lengths)
        sequential = sum(sim.decode_step(l).cycles for l in lengths)
        assert batched.cycles < sequential

    def test_batched_round_never_beats_per_token_attention(self, hw, shapes):
        """Attention is per-sequence (private KV): the batched round's
        attention cycles equal the sum over sequences."""
        sim = AcceleratorSimulator(hw, shapes)
        lengths = [100, 200, 300]
        round_stats = sim.decode_round(lengths)
        per_seq = [
            decode_attention(l, shapes.head_dim, shapes.n_heads, hw).total
            * shapes.n_layers
            for l in lengths
        ]
        assert round_stats.per_sequence_attention == per_seq

    def test_empty_round_rejected(self, hw, shapes):
        with pytest.raises(ValueError):
            AcceleratorSimulator(hw, shapes).decode_round([])


class TestMixedRound:
    def test_composition(self, hw, shapes):
        """A mixed round is its prefill passes plus one batched decode."""
        sim = AcceleratorSimulator(hw, shapes)
        mixed = sim.mixed_round([32], [128, 256], dataflow="auto")
        assert mixed.prefill_cycles == sim.prefill(32).cycles
        assert mixed.decode_cycles == sim.decode_round([128, 256]).cycles
        assert mixed.cycles == mixed.prefill_cycles + mixed.decode_cycles
        assert len(mixed.per_sequence_attention) == 2

    def test_decode_only_round(self, hw, shapes):
        sim = AcceleratorSimulator(hw, shapes)
        mixed = sim.mixed_round(decode_lengths=[64])
        assert mixed.prefills == []
        assert mixed.cycles == sim.decode_round([64]).cycles

    def test_prefill_only_round(self, hw, shapes):
        sim = AcceleratorSimulator(hw, shapes)
        mixed = sim.mixed_round(prefill_lengths=[16, 24])
        assert mixed.decode is None
        assert mixed.decode_cycles == 0.0
        assert mixed.cycles == sim.prefill(16).cycles + sim.prefill(24).cycles

    def test_empty_round_rejected(self, hw, shapes):
        with pytest.raises(ValueError):
            AcceleratorSimulator(hw, shapes).mixed_round()

    def test_mismatched_prefix_lengths_rejected(self, hw, shapes):
        with pytest.raises(ValueError):
            AcceleratorSimulator(hw, shapes).mixed_round(
                [16], [64], prefix_lengths=[0, 0]
            )

    def test_auto_lower_bounds_both_pinned_mappings(self, hw, shapes):
        """The acceptance inequality at the single-round level: per-phase
        reconfiguration is at least as cheap as either pinned mapping,
        strictly cheaper on a genuinely mixed round."""
        sim = AcceleratorSimulator(hw, shapes)
        auto = sim.mixed_round([48], [300, 400], dataflow="auto").cycles
        for pinned in ("prefill", "decode"):
            assert auto < sim.mixed_round([48], [300, 400], dataflow=pinned).cycles

    def test_prefix_hit_prices_fewer_rows(self, hw, shapes):
        sim = AcceleratorSimulator(hw, shapes)
        cold = sim.prefill(48)
        warm = sim.prefill(16, prefix_length=32)
        assert warm.cycles < cold.cycles
        assert warm.hbm_bytes < cold.hbm_bytes


class TestDataflowConstants:
    def test_dataflows_tuple(self):
        assert DATAFLOWS == ("auto", "prefill", "decode")

"""Technology scaling, GPU roofline, and hardware config."""

import pytest

from repro.accel.config import HardwareConfig, ablation_configs, baseline_config, veda_config
from repro.accel.gpu_model import RTX4090, GPUSpec, decode_energy_per_token, decode_tokens_per_second
from repro.accel.scaling import (
    SUPPORTED_NODES,
    area_factor,
    energy_factor,
    scale_area,
    scale_energy_efficiency,
)


class TestScaling:
    def test_identity(self):
        assert area_factor(28, 28) == 1.0
        assert energy_factor(40, 40) == 1.0

    def test_shrink_improves(self):
        assert area_factor(55, 28) < 1.0
        assert energy_factor(55, 28) < 1.0

    def test_round_trip(self):
        assert area_factor(55, 28) * area_factor(28, 55) == pytest.approx(1.0)

    def test_scale_area(self):
        scaled = scale_area(16.9, 55, 28)
        assert scaled == pytest.approx(16.9 / 3.86, rel=1e-9)

    def test_efficiency_improves_at_smaller_node(self):
        assert scale_energy_efficiency(192.0, 55, 28) > 192.0

    def test_paper_claim_holds_after_scaling(self):
        """VEDA (653 GOPS/W @28nm) still beats Sanger and SpAtten scaled
        to 28 nm — the paper's '(it remains true after technology
        scaling)' parenthetical."""
        sanger = scale_energy_efficiency(192.0, 55, 28)
        spatten = scale_energy_efficiency(382.0, 40, 28)
        assert sanger < 653
        assert spatten < 653

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            area_factor(32, 28)

    def test_nodes_sorted(self):
        assert SUPPORTED_NODES == sorted(SUPPORTED_NODES)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            scale_area(-1.0, 55, 28)


class TestGPUModel:
    def test_memory_bound_decode(self):
        """7B FP16 decode ≈ bandwidth / model bytes, ~50 tokens/s."""
        tps = decode_tokens_per_second(RTX4090, 13.48e9)
        assert 45 < tps < 60

    def test_kv_bytes_slow_it_down(self):
        base = decode_tokens_per_second(RTX4090, 13.48e9)
        with_kv = decode_tokens_per_second(RTX4090, 13.48e9, kv_bytes_per_token=2e9)
        assert with_kv < base

    def test_energy_per_token(self):
        tps = decode_tokens_per_second(RTX4090, 13.48e9)
        energy = decode_energy_per_token(RTX4090, 13.48e9)
        assert energy == pytest.approx(450.0 / tps)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GPUSpec("bad", fp16_tflops=0, mem_bandwidth_gb_s=1, board_power_w=1)
        with pytest.raises(ValueError):
            GPUSpec("bad", 1, 1, 1, efficiency=0.0)

    def test_model_bytes_validation(self):
        with pytest.raises(ValueError):
            decode_tokens_per_second(RTX4090, 0)


class TestHardwareConfig:
    def test_paper_defaults(self):
        hw = veda_config()
        assert hw.n_pe == 128
        assert hw.peak_gops == 256.0
        assert hw.bytes_per_cycle == 256.0
        assert hw.onchip_buffer_bytes == 256 * 1024

    def test_baseline_flags(self):
        hw = baseline_config()
        assert not hw.flexible_dataflow
        assert not hw.element_serial

    def test_ablation_configs_ordered(self):
        configs = ablation_configs()
        assert list(configs) == ["Baseline", "Baseline+F", "Baseline+F+E"]
        assert configs["Baseline+F"].flexible_dataflow
        assert not configs["Baseline+F"].element_serial

    def test_overrides(self):
        hw = veda_config(pe_arrays=4)
        assert hw.n_pe == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareConfig(pe_rows=0)
        with pytest.raises(ValueError):
            HardwareConfig(dram_strided_derate=0.0)

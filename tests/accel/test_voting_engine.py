"""Hardware voting engine: bit-true behaviour and policy equivalence."""

import numpy as np
import pytest

from repro.accel.voting_engine import VotingEngine
from repro.core.policies.base import GENERATION
from repro.core.policies.voting import VotingPolicy
from repro.models.inference import stable_softmax


def random_attention(rng, heads, length, sharpness=3.0):
    logits = rng.normal(size=(heads, length)) * sharpness
    return stable_softmax(logits, axis=-1)


class TestBasics:
    def test_votes_accumulate(self):
        engine = VotingEngine(capacity=16, reserved_length=0, b=0.0)
        attn = np.array([[0.5, 0.3, 0.1, 0.1]])
        engine.process_token(attn, np.arange(4))
        engine.process_token(attn, np.arange(4))
        np.testing.assert_array_equal(engine.vote_counts, [0, 0, 2, 2])

    def test_reserved_rows_skip(self):
        engine = VotingEngine(capacity=16, reserved_length=8)
        attn = np.array([[0.2, 0.3, 0.5]])
        votes = engine.process_token(attn, np.arange(3))
        assert not votes.any()

    def test_eviction_index_tie_earliest(self):
        engine = VotingEngine(capacity=16, reserved_length=0, b=0.0)
        engine.process_token(np.array([[0.4, 0.1, 0.1, 0.4]]), np.arange(4))
        assert engine.eviction_index(np.arange(4)) == 1

    def test_eviction_respects_reserved(self):
        engine = VotingEngine(capacity=16, reserved_length=4)
        engine.process_token(
            np.full((1, 8), 1.0 / 8), np.arange(8)
        )
        assert engine.eviction_index(np.arange(8)) >= 4

    def test_index_fits_uint12(self):
        engine = VotingEngine(capacity=4096, reserved_length=0)
        idx = engine.eviction_index(np.arange(100))
        assert 0 <= idx < 4096

    def test_capacity_addressability(self):
        with pytest.raises(ValueError):
            VotingEngine(capacity=8192, index_bits=12)

    def test_on_evict_compacts(self):
        engine = VotingEngine(capacity=16, reserved_length=0, b=0.0)
        engine.process_token(np.array([[0.5, 0.1, 0.3, 0.1]]), np.arange(4))
        engine.on_evict(1)
        np.testing.assert_array_equal(engine.vote_counts, [0, 0, 1])

    def test_busy_cycles_track_stream(self):
        engine = VotingEngine(capacity=64)
        engine.process_token(np.full((2, 10), 0.1), np.arange(10))
        assert engine.busy_cycles == 2 * 10 + 4

    def test_reset(self):
        engine = VotingEngine(capacity=16, reserved_length=0)
        engine.process_token(np.array([[0.9, 0.1]]), np.arange(2))
        engine.reset()
        assert engine.length == 0
        assert engine.busy_cycles == 0


class TestPolicyEquivalence:
    """The FP16/UINT16 engine must make (near-)identical decisions to the
    float64 VotingPolicy — quantization may flip borderline votes, so a
    small disagreement rate is tolerated but decisions must agree in the
    overwhelming majority of random trials."""

    def test_vote_agreement_rate(self, rng):
        agreements = 0
        trials = 60
        for t in range(trials):
            length = int(rng.integers(8, 48))
            attn = random_attention(rng, heads=4, length=length)
            positions = np.arange(length)

            policy = VotingPolicy(n_layers=1, reserved_length=4)
            policy.observe(0, attn, positions, GENERATION)

            engine = VotingEngine(capacity=64, reserved_length=4)
            engine.process_token(attn, positions)

            if np.array_equal(policy.vote_counts(0), engine.vote_counts):
                agreements += 1
        assert agreements >= trials * 0.9

    def test_eviction_decision_agreement(self, rng):
        matches = 0
        trials = 40
        for t in range(trials):
            length = int(rng.integers(16, 64))
            positions = np.arange(length)
            policy = VotingPolicy(n_layers=1, reserved_length=4)
            engine = VotingEngine(capacity=128, reserved_length=4)
            for _ in range(5):
                attn = random_attention(rng, heads=2, length=length)
                policy.observe(0, attn, positions, GENERATION)
                engine.process_token(attn, positions)
            if policy.select_victim(0, positions) == engine.eviction_index(positions):
                matches += 1
        assert matches >= trials * 0.9

    def test_exact_agreement_on_fp16_inputs(self, rng):
        """When inputs are already FP16-representable and well separated
        from the threshold, decisions must agree exactly."""
        length = 16
        row = np.full(length, 1.0 / 16)  # fp16-exact
        row[5] = 1.0 / 8
        row[9] = 0.0
        row = row / row.sum()
        attn = np.tile(row, (2, 1))
        positions = np.arange(length)

        policy = VotingPolicy(n_layers=1, reserved_length=2)
        policy.observe(0, attn, positions, GENERATION)
        engine = VotingEngine(capacity=32, reserved_length=2)
        engine.process_token(attn, positions)
        assert policy.select_victim(0, positions) == engine.eviction_index(positions)

"""Reconfigurable PE array: functional correctness and cycle counts."""

import numpy as np
import pytest

from repro.accel.pe_array import (
    PEArray,
    adder_tree_types,
    fixed_tree_cycles,
    inner_product_cycles,
    outer_product_cycles,
    tree_sum_fp16,
)
from repro.numerics.fp16 import fp16_quantize


class TestCycleFormulas:
    def test_inner_basic(self):
        assert inner_product_cycles(k=128, n=100, width=128) == 100

    def test_inner_chunks_k(self):
        assert inner_product_cycles(k=129, n=10, width=128) == 20

    def test_outer_basic(self):
        assert outer_product_cycles(k=100, n=128, width=128) == 100

    def test_outer_chunks_n(self):
        assert outer_product_cycles(k=10, n=129, width=128) == 20

    def test_flexibility_advantage(self):
        """The paper's point: for (1,l)×(l,d) with growing l, the outer
        product absorbs l in time while a fixed inner product pads it to
        tree epochs."""
        d, width = 128, 128
        for l in [100, 300, 513, 1000]:
            flexible = outer_product_cycles(k=l, n=d, width=width)
            fixed = fixed_tree_cycles(k=l, n=d, width=width)
            assert flexible <= fixed
        # the 256 -> 257 epoch jump from the paper's introduction
        assert fixed_tree_cycles(k=257, n=128, width=128) == 3 * 128
        assert outer_product_cycles(k=257, n=128, width=128) == 257

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            inner_product_cycles(0, 4, 128)
        with pytest.raises(ValueError):
            outer_product_cycles(4, 0, 128)


class TestAdderTree:
    def test_type_assignment(self):
        types = adder_tree_types(8)
        assert types == ["A", "B", "A", "B", "A", "B", "A", "B"]

    def test_rejects_odd_width(self):
        with pytest.raises(ValueError):
            adder_tree_types(7)

    def test_tree_sum_exact_for_exact_values(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert tree_sum_fp16(values) == 10.0

    def test_tree_sum_empty(self):
        assert tree_sum_fp16([]) == 0.0

    def test_tree_sum_odd_length(self):
        assert tree_sum_fp16([1.0, 2.0, 3.0]) == 6.0

    def test_tree_sum_error_bounded(self, rng):
        values = rng.normal(size=128)
        exact = float(np.sum(values))
        tree = tree_sum_fp16(values)
        # FP16 pairwise tree: error grows with log2(n) * eps * magnitude.
        assert abs(tree - exact) <= 2e-2 * max(np.abs(values).sum(), 1.0)


class TestFunctionalArray:
    def test_inner_matches_matmul_float64(self, rng):
        array = PEArray(width=16, quantize=False)
        v = rng.normal(size=24)
        m = rng.normal(size=(24, 5))
        out = array.inner_product(v, m)
        np.testing.assert_allclose(out, v @ m, atol=1e-12)

    def test_outer_matches_matmul_float64(self, rng):
        array = PEArray(width=16, quantize=False)
        v = rng.normal(size=7)
        m = rng.normal(size=(7, 20))
        out = array.outer_product(v, m)
        np.testing.assert_allclose(out, v @ m, atol=1e-12)

    def test_modes_agree_fp16_within_tolerance(self, rng):
        """Inner and outer product compute the same GEMV; FP16 rounding
        differences stay within a small bound."""
        array = PEArray(width=8, quantize=True)
        v = rng.normal(size=12)
        m = rng.normal(size=(12, 8))
        inner = array.inner_product(v, m)
        outer = array.outer_product(v, m)
        exact = v @ m
        np.testing.assert_allclose(inner, exact, atol=0.05)
        np.testing.assert_allclose(outer, exact, atol=0.05)

    def test_fp16_quantization_actually_applied(self):
        array = PEArray(width=4, quantize=True)
        v = np.array([1.0 + 2.0**-12])  # rounds to 1.0 in fp16
        m = np.array([[1.0]])
        out = array.inner_product(v, m)
        assert out[0] == 1.0

    def test_cycle_accounting(self, rng):
        array = PEArray(width=8)
        v = rng.normal(size=16)
        m = rng.normal(size=(16, 3))
        array.inner_product(v, m)
        assert array.cycles == inner_product_cycles(16, 3, 8)
        array.reset_cycles()
        array.outer_product(rng.normal(size=5), rng.normal(size=(5, 16)))
        assert array.cycles == outer_product_cycles(5, 16, 8)

    def test_gemv_dispatch(self, rng):
        array = PEArray(width=8, quantize=False)
        v = rng.normal(size=8)
        m = rng.normal(size=(8, 8))
        np.testing.assert_allclose(
            array.gemv(v, m, "inner"), array.gemv(v, m, "outer"), atol=1e-12
        )
        with pytest.raises(ValueError):
            array.gemv(v, m, "diagonal")

    def test_shape_mismatch(self, rng):
        array = PEArray(width=8)
        with pytest.raises(ValueError):
            array.inner_product(rng.normal(size=4), rng.normal(size=(5, 2)))

    def test_attention_no_transpose_equivalence(self, rng):
        """The flexible-product trick: q×Kᵀ via inner product over K rows
        and s'×V via outer product over V rows — K and V both stored
        (l, d), no transpose — equals the mathematical attention."""
        l, d = 10, 8
        array = PEArray(width=8, quantize=False)
        q = rng.normal(size=d)
        K = rng.normal(size=(l, d))
        V = rng.normal(size=(l, d))
        s = array.inner_product(q, K.T)  # (d, l) accessed column-wise = K rows
        np.testing.assert_allclose(s, q @ K.T, atol=1e-12)
        o = array.outer_product(s, V)
        np.testing.assert_allclose(o, (q @ K.T) @ V, atol=1e-10)

"""RTL-like PE grid vs the vectorized array and the analytic formulas —
the reproduction's version of "cross-validated with RTL simulations"."""

import numpy as np
import pytest

from repro.accel.pe_array import (
    PEArray,
    inner_product_cycles,
    outer_product_cycles,
)
from repro.accel.rtl_array import RTLArray


@pytest.fixture()
def grid():
    return RTLArray(rows=2, cols=4, quantize=True)  # width 8, fast tests


class TestAgainstReference:
    def test_inner_matches_float64(self, rng):
        grid = RTLArray(2, 4, quantize=False)
        v = rng.normal(size=13)
        m = rng.normal(size=(13, 5))
        np.testing.assert_allclose(grid.inner_product(v, m), v @ m, atol=1e-12)

    def test_outer_matches_float64(self, rng):
        grid = RTLArray(2, 4, quantize=False)
        v = rng.normal(size=6)
        m = rng.normal(size=(6, 11))
        np.testing.assert_allclose(grid.outer_product(v, m), v @ m, atol=1e-12)

    def test_inner_bit_identical_to_pe_array(self, grid, rng):
        """Same tree topology + same rounding points ⇒ bit-identical
        FP16 results as the vectorized functional model."""
        array = PEArray(width=8, quantize=True)
        v = rng.normal(size=19)
        m = rng.normal(size=(19, 4))
        np.testing.assert_array_equal(
            grid.inner_product(v, m), array.inner_product(v, m)
        )

    def test_outer_bit_identical_to_pe_array(self, grid, rng):
        array = PEArray(width=8, quantize=True)
        v = rng.normal(size=9)
        m = rng.normal(size=(9, 13))
        np.testing.assert_array_equal(
            grid.outer_product(v, m), array.outer_product(v, m)
        )


class TestCycleCrossValidation:
    @pytest.mark.parametrize("k,n", [(8, 3), (9, 3), (16, 1), (5, 20)])
    def test_inner_cycles_match_analytic(self, grid, rng, k, n):
        grid.reset_cycles()
        grid.inner_product(rng.normal(size=k), rng.normal(size=(k, n)))
        assert grid.cycles == inner_product_cycles(k, n, width=8)

    @pytest.mark.parametrize("k,n", [(3, 8), (3, 9), (1, 16), (20, 5)])
    def test_outer_cycles_match_analytic(self, grid, rng, k, n):
        grid.reset_cycles()
        grid.outer_product(rng.normal(size=k), rng.normal(size=(k, n)))
        assert grid.cycles == outer_product_cycles(k, n, width=8)


class TestGridStructure:
    def test_type_b_at_odd_columns(self, grid):
        for row in grid.grid:
            for c, pe in enumerate(row):
                assert pe.type_b == (c % 2 == 1)

    def test_width(self):
        assert RTLArray(8, 8).width == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            RTLArray(rows=0)
        with pytest.raises(ValueError):
            RTLArray(rows=2, cols=3)

    def test_shape_mismatch(self, grid, rng):
        with pytest.raises(ValueError):
            grid.inner_product(rng.normal(size=4), rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            grid.outer_product(rng.normal(size=4), rng.normal(size=(5, 2)))

    def test_reconfiguration_between_ops(self, grid, rng):
        """The same grid switches between modes at runtime (the paper's
        runtime reconfigurability): inner then outer on one instance."""
        v = rng.normal(size=8)
        m = rng.normal(size=(8, 8))
        s = grid.inner_product(v, m)
        o = grid.outer_product(s, m)
        np.testing.assert_allclose(o, (v @ m) @ m, atol=0.5)

"""Area/power model vs paper Table I."""

import pytest

from repro.accel.area_power import PAPER_TABLE1, AreaPowerModel
from repro.accel.config import veda_config


@pytest.fixture(scope="module")
def model():
    return AreaPowerModel(veda_config())


class TestAgainstPaper:
    @pytest.mark.parametrize("module_name", list(PAPER_TABLE1))
    def test_module_area_within_5pct(self, model, module_name):
        modeled = {m.name: m for m in model.breakdown()}[module_name]
        paper_area, _ = PAPER_TABLE1[module_name]
        assert modeled.area_mm2 == pytest.approx(paper_area, rel=0.05)

    @pytest.mark.parametrize("module_name", list(PAPER_TABLE1))
    def test_module_power_within_5pct(self, model, module_name):
        modeled = {m.name: m for m in model.breakdown()}[module_name]
        _, paper_power = PAPER_TABLE1[module_name]
        assert modeled.power_mw == pytest.approx(paper_power, rel=0.05)

    def test_sfu_below_3_percent_area(self, model):
        """Paper: 'SFU consumes less than 3% due to element-serial
        scheduling' — true of its area share (its power share is 3.5%
        in the paper's own Table I)."""
        breakdown = {m.name: m for m in model.breakdown()}
        share = breakdown["Special Function Unit"].area_mm2 / breakdown["Total"].area_mm2
        assert share < 0.03

    def test_voting_overhead_about_6_5_percent(self, model):
        breakdown = {m.name: m for m in model.breakdown()}
        share = breakdown["Voting Engine"].power_mw / breakdown["Total"].power_mw
        assert share == pytest.approx(0.065, abs=0.01)


class TestParametricScaling:
    def test_pe_array_scales_with_pe_count(self):
        small = AreaPowerModel(veda_config(pe_arrays=1)).pe_array()
        big = AreaPowerModel(veda_config(pe_arrays=2)).pe_array()
        assert big.area_mm2 == pytest.approx(2 * small.area_mm2)
        assert big.power_mw == pytest.approx(2 * small.power_mw)

    def test_buffer_scales_with_capacity(self):
        small = AreaPowerModel(veda_config(onchip_buffer_kb=128)).onchip_buffer()
        big = AreaPowerModel(veda_config(onchip_buffer_kb=256)).onchip_buffer()
        assert big.area_mm2 > small.area_mm2

    def test_sfu_scales_with_units(self):
        base = AreaPowerModel(veda_config()).sfu()
        more = AreaPowerModel(veda_config(n_exp_units=4, n_div_units=4)).sfu()
        assert more.area_mm2 > base.area_mm2
        assert more.power_mw > base.power_mw

    def test_totals_helpers(self, model):
        assert model.total_area_mm2() == pytest.approx(1.058, rel=0.02)
        assert model.total_power_w() == pytest.approx(0.375, rel=0.02)


class TestRunEnergy:
    """The pJ-denominated constants must land in joules explicitly."""

    def test_mac_energy_pj_to_joules(self, model):
        """1e12 MACs at ENERGY_MAC pJ each is exactly ENERGY_MAC joules
        (the 1e-12 pJ->J conversion, isolated: no cycles, no traffic)."""
        energy = model.run_energy_joules(cycles=0, macs=1e12, hbm_bytes=0)
        assert energy == pytest.approx(model.ENERGY_MAC)

    def test_dram_energy_pj_per_bit_to_joules(self, model):
        """One byte moves 8 bits at ENERGY_HBM_PJ_PER_BIT pJ each."""
        energy = model.run_energy_joules(cycles=0, macs=0, hbm_bytes=1e12)
        assert energy == pytest.approx(8.0 * model.ENERGY_HBM_PJ_PER_BIT)

    def test_background_power_times_wall_time(self, model):
        """With no activity, a one-second run burns exactly the static
        (non-PE-array) power budget."""
        one_second_cycles = model.hw.clock_ghz * 1e9
        energy = model.run_energy_joules(one_second_cycles, macs=0, hbm_bytes=0)
        background_w = model.total_power_w() - model.pe_array().power_mw * 1e-3
        assert energy == pytest.approx(background_w)

    def test_components_sum(self, model):
        cycles, macs, hbm = 1e9, 3e11, 5e9
        total = model.run_energy_joules(cycles, macs, hbm)
        parts = (
            model.run_energy_joules(cycles, 0, 0)
            + model.run_energy_joules(0, macs, 0)
            + model.run_energy_joules(0, 0, hbm)
        )
        assert total == pytest.approx(parts)

    def test_joules_per_token(self, model):
        energy = model.run_energy_joules(1e9, 3e11, 5e9)
        assert model.joules_per_token(1e9, 3e11, 5e9, tokens=10) == pytest.approx(
            energy / 10
        )
        assert model.joules_per_token(1e9, 3e11, 5e9, tokens=0) == 0.0

    def test_negative_inputs_rejected(self, model):
        with pytest.raises(ValueError):
            model.run_energy_joules(-1, 0, 0)
        with pytest.raises(ValueError):
            model.run_energy_joules(0, -1, 0)
        with pytest.raises(ValueError):
            model.run_energy_joules(0, 0, -1)

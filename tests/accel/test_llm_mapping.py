"""Layer-to-accelerator operator mapping."""

import pytest

from repro.accel.llm_mapping import LinearOp, decode_linear_ops, prefill_linear_ops
from repro.config import llama2_7b_shapes, tiny_config


class TestLinearOp:
    def test_macs_and_bytes(self):
        op = LinearOp("w", k=4096, n=4096)
        assert op.macs == 4096 * 4096
        assert op.weight_bytes == 4096 * 4096 * 2

    def test_inner_cycles(self):
        op = LinearOp("w", k=256, n=10, dataflow="inner")
        assert op.compute_cycles(width=128) == 10 * 2

    def test_outer_cycles(self):
        op = LinearOp("w", k=10, n=256, dataflow="outer")
        assert op.compute_cycles(width=128) == 10 * 2

    def test_rows_multiply(self):
        op = LinearOp("w", k=128, n=4, rows=7, dataflow="inner")
        assert op.compute_cycles(width=128) == 7 * 4


class TestDecodeOps:
    def test_llama_op_set(self):
        per_layer, head = decode_linear_ops(llama2_7b_shapes())
        names = [op.name for op in per_layer]
        assert names == ["wq", "wk", "wv", "wo", "ffn_gate", "ffn_up", "ffn_down"]
        assert head[0].name == "lm_head"
        assert head[0].n == 32000

    def test_gelu_model_has_two_ffn_ops(self):
        per_layer, _ = decode_linear_ops(tiny_config(activation="gelu"))
        names = [op.name for op in per_layer]
        assert "ffn_gate" not in names
        assert names.count("ffn_up") == 1

    def test_total_weight_bytes_match_7b(self):
        """Per-token streamed weights ≈ the 7B parameter footprint."""
        model = llama2_7b_shapes()
        per_layer, head = decode_linear_ops(model)
        total = model.n_layers * sum(op.weight_bytes for op in per_layer)
        total += sum(op.weight_bytes for op in head)
        params = total / 2
        assert 6.4e9 < params < 7.1e9

    def test_fig1_dataflow_colors(self):
        """QKV generation consumes normalized input → outer (blue);
        projections feeding reductions → inner (green)."""
        per_layer, _ = decode_linear_ops(llama2_7b_shapes())
        by_name = {op.name: op for op in per_layer}
        assert by_name["wq"].dataflow == "outer"
        assert by_name["wo"].dataflow == "inner"
        assert by_name["ffn_down"].dataflow == "inner"


class TestPrefillOps:
    def test_rows_set_to_prompt(self):
        per_layer, head = prefill_linear_ops(llama2_7b_shapes(), prompt_length=512)
        assert all(op.rows == 512 for op in per_layer)
        assert head[0].rows == 1  # LM head only runs on the last token

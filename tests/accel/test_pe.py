"""Single PE: modes and registers."""

import pytest

from repro.accel.pe import PEMode, ProcessingElement


class TestModes:
    def test_disable_holds_state(self):
        pe = ProcessingElement()
        pe.load(2.0, 3.0)
        pe.mode = PEMode.ACCUMULATE
        pe.step()
        pe.mode = PEMode.DISABLE
        assert pe.step() is None
        assert pe.acc_reg == 6.0

    def test_accumulate(self):
        pe = ProcessingElement()
        pe.mode = PEMode.ACCUMULATE
        pe.load(2.0, 3.0)
        pe.step()
        pe.load(1.0, 4.0)
        pe.step()
        assert pe.acc_reg == 10.0

    def test_clear(self):
        pe = ProcessingElement()
        pe.mode = PEMode.ACCUMULATE
        pe.load(5.0, 5.0)
        pe.step()
        pe.mode = PEMode.CLEAR
        pe.step()
        assert pe.acc_reg == 0.0

    def test_transmit_type_a(self):
        pe = ProcessingElement(type_b=False)
        pe.mode = PEMode.TRANSMIT
        pe.load(2.0, 3.0)
        assert pe.step(transmitted=4.0) == 10.0

    def test_transmit_type_b_adds_externals(self):
        pe = ProcessingElement(type_b=True)
        pe.mode = PEMode.TRANSMIT
        assert pe.step(transmitted=4.0, second_operand=5.0) == 9.0

    def test_type_b_requires_second_operand(self):
        pe = ProcessingElement(type_b=True)
        pe.mode = PEMode.TRANSMIT
        with pytest.raises(ValueError):
            pe.step(transmitted=1.0)

    def test_fp16_rounding_in_registers(self):
        pe = ProcessingElement()
        pe.load(1.0 + 2.0**-12, 1.0)  # rounds to 1.0
        assert pe.input_reg == 1.0
        assert pe.multiply() == 1.0

    def test_mode_encoding_is_2bit(self):
        assert {int(m) for m in PEMode} <= set(range(4))

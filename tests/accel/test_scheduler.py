"""Attention cycle model and the Fig. 6(a) timeline."""

import pytest

from repro.accel.config import ablation_configs, baseline_config, veda_config
from repro.accel.scheduler import (
    attention_timeline,
    decode_attention,
    prefill_attention,
)


class TestDecodeAttention:
    def test_flexible_attention_linear_in_l(self):
        hw = veda_config()
        a = decode_attention(256, head_dim=128, n_heads=1, hw=hw)
        b = decode_attention(512, head_dim=128, n_heads=1, hw=hw)
        # qk and sv both scale with l exactly (no padding).
        assert b.qk == 2 * a.qk
        assert b.sv == 2 * a.sv

    def test_element_serial_removes_softmax_stall(self):
        on = decode_attention(512, 128, 1, veda_config())
        off = decode_attention(512, 128, 1, veda_config(element_serial=False))
        assert on.softmax < off.softmax
        assert on.qk == off.qk and on.sv == off.sv

    def test_baseline_sv_penalty(self):
        """Fixed dataflow pays tree padding and strided V access on s'×V."""
        flexible = decode_attention(513, 128, 1, veda_config())
        fixed = decode_attention(513, 128, 1, baseline_config())
        assert fixed.sv > flexible.sv
        assert fixed.qk == flexible.qk  # qK identical in both designs

    def test_heads_scale_linearly(self):
        one = decode_attention(100, 128, 1, veda_config())
        many = decode_attention(100, 128, 32, veda_config())
        assert many.total == pytest.approx(32 * one.total)

    def test_variant_ordering(self):
        """Baseline >= +F >= +F+E at any cache length."""
        for l in [64, 257, 512, 1500]:
            totals = {
                name: decode_attention(l, 128, 32, hw).total
                for name, hw in ablation_configs().items()
            }
            assert totals["Baseline"] >= totals["Baseline+F"] >= totals["Baseline+F+E"]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            decode_attention(0, 128, 1, veda_config())


class TestPrefillAttention:
    def test_causal_skip_halves_compute(self):
        """Flexible prefill compute ≈ half of the full l² (upper triangle
        skipped)."""
        hw = veda_config()
        breakdown = prefill_attention(256, 128, 1, hw)
        assert breakdown.qk == pytest.approx(256 * 257 / 2)

    def test_baseline_tile_padding(self):
        flexible = prefill_attention(300, 128, 1, veda_config())
        fixed = prefill_attention(300, 128, 1, baseline_config(element_serial=True))
        assert fixed.qk > flexible.qk
        assert fixed.sv > flexible.sv

    def test_variant_ordering(self):
        totals = {
            name: prefill_attention(512, 128, 8, hw).total
            for name, hw in ablation_configs().items()
        }
        assert totals["Baseline"] > totals["Baseline+F"] > totals["Baseline+F+E"]

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            prefill_attention(0, 128, 1, veda_config())


class TestBreakdownArithmetic:
    def test_total_and_add(self):
        a = decode_attention(10, 128, 1, veda_config())
        b = decode_attention(20, 128, 1, veda_config())
        combined = a + b
        assert combined.total == pytest.approx(a.total + b.total)

    def test_scaled(self):
        a = decode_attention(10, 128, 1, veda_config())
        assert a.scaled(3).total == pytest.approx(3 * a.total)


class TestTimeline:
    def test_element_serial_overlaps(self):
        """Fig. 6(a): with E, SFU work runs concurrently with the PE
        array; total ≈ qk + sv + drain."""
        hw = veda_config()
        segments, total = attention_timeline(100, 128, hw)
        assert total == 100 + hw.element_serial_drain + 100
        sfu = [s for s in segments if s.engine == "sfu"]
        pe = [s for s in segments if s.engine == "pe_array"]
        assert len(sfu) == 2 and len(pe) == 2
        # normalization and s'×V occupy the same interval (overlap).
        norm = next(s for s in sfu if "normalize" in s.label)
        sv = next(s for s in pe if "s'×V" in s.label)
        assert norm.start == sv.start and norm.end == sv.end

    def test_conventional_serializes(self):
        hw = veda_config(element_serial=False)
        segments, total = attention_timeline(100, 128, hw)
        stall = next(s for s in segments if s.engine == "sfu")
        sv = [s for s in segments if s.engine == "pe_array"][1]
        assert sv.start == stall.end  # PE array idles during the SFU stage
        assert total > 200

    def test_element_serial_faster(self):
        _, fast = attention_timeline(500, 128, veda_config())
        _, slow = attention_timeline(500, 128, veda_config(element_serial=False))
        assert fast < slow

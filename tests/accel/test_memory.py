"""HBM and SRAM models."""

import numpy as np
import pytest

from repro.accel.memory import HBMModel, SRAMModel


class TestHBM:
    def test_stream_cycles(self):
        hbm = HBMModel(bandwidth_gb_s=256, clock_ghz=1.0)
        assert hbm.stream_cycles(256) == 1.0
        assert hbm.stream_cycles(2560) == 10.0

    def test_strided_derate(self):
        hbm = HBMModel(bandwidth_gb_s=256, strided_derate=0.5)
        assert hbm.strided_cycles(256) == pytest.approx(2.0)
        assert hbm.strided_cycles(256) > hbm.stream_cycles(256)

    def test_traffic_accounting(self):
        hbm = HBMModel()
        hbm.stream_cycles(1000)
        hbm.strided_cycles(500)
        assert hbm.traffic.streamed_bytes == 1000
        assert hbm.traffic.strided_bytes == 500
        assert hbm.traffic.total_bytes == 1500

    def test_energy(self):
        hbm = HBMModel(energy_pj_per_bit=2.5)
        hbm.stream_cycles(1e9)  # 1 GB
        assert hbm.energy_joules() == pytest.approx(1e9 * 8 * 2.5e-12)

    def test_default_energy_is_hbm2e_class(self):
        assert HBMModel().energy_pj_per_bit == pytest.approx(2.0)

    def test_reset(self):
        hbm = HBMModel()
        hbm.stream_cycles(100)
        hbm.reset_traffic()
        assert hbm.traffic.total_bytes == 0

    def test_unrecorded_access(self):
        hbm = HBMModel()
        hbm.stream_cycles(100, record=False)
        assert hbm.traffic.total_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HBMModel(bandwidth_gb_s=0)
        with pytest.raises(ValueError):
            HBMModel(strided_derate=1.5)
        hbm = HBMModel()
        with pytest.raises(ValueError):
            hbm.stream_cycles(-1)


class TestSRAM:
    def test_area_grows_sublinearly_in_density(self):
        """Bigger macros are denser (µm²/byte falls with capacity)."""
        small = SRAMModel(8 * 1024)
        large = SRAMModel(256 * 1024)
        assert small.area_mm2 / 8 > large.area_mm2 / 256  # per-KB density

    def test_calibrated_to_table1_macros(self):
        """The paper's macros: 256 KB buffer ≈ 0.426 mm²; the two 8 KB
        voting stores ≈ 0.069 mm² together (with logic)."""
        buffer = SRAMModel(256 * 1024)
        assert buffer.area_mm2 == pytest.approx(0.426, rel=0.03)
        voting = 2 * SRAMModel(8 * 1024).area_mm2
        assert voting == pytest.approx(0.067, rel=0.06)

    def test_energy_grows_with_capacity(self):
        assert (
            SRAMModel(256 * 1024).energy_pj_per_byte
            > SRAMModel(8 * 1024).energy_pj_per_byte
        )

    def test_access_tracking(self):
        sram = SRAMModel(1024, width_bits=128)
        cycles = sram.read(64)
        assert cycles == 4  # 64 B = 512 bits / 128-bit port
        sram.write(16)
        assert sram.reads == 4
        assert sram.writes == 1

    def test_fits(self):
        sram = SRAMModel(1024)
        assert sram.fits(1024)
        assert not sram.fits(1025)

    def test_energy_joules(self):
        sram = SRAMModel(1024, width_bits=8)
        sram.read(100)
        expected = 100 * sram.energy_pj_per_byte * 1e-12
        assert sram.energy_joules() == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMModel(0)
        with pytest.raises(ValueError):
            SRAMModel(64, width_bits=7)
        with pytest.raises(ValueError):
            SRAMModel(64).read(-1)

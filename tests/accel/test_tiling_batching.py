"""Prefill tiling plans and the batching analysis."""

import math

import pytest

from repro.accel.config import veda_config
from repro.accel.tiling import (
    TilePlan,
    compute_bound_prompt_threshold,
    plan_weight_tiling,
    prefill_gemm_cycles,
)
from repro.experiments import batching


class TestTilePlanning:
    def test_llama_weight_needs_tiling(self):
        """A 4096×4096 FP16 matrix cannot sit in 256 KB."""
        plan = plan_weight_tiling(4096, 4096, buffer_bytes=256 * 1024)
        assert plan.n_tiles > 1
        assert plan.fits_buffer

    def test_small_weight_single_tile(self):
        plan = plan_weight_tiling(128, 128, buffer_bytes=256 * 1024)
        assert plan.n_tiles == 1
        assert plan.tile_rows == 128 and plan.tile_cols == 128

    def test_full_rows_preferred(self):
        """While a reduction row fits, tiles keep k intact (no partial-sum
        spill)."""
        plan = plan_weight_tiling(4096, 4096, buffer_bytes=256 * 1024)
        assert plan.tile_rows == 4096

    def test_huge_k_splits_rows(self):
        plan = plan_weight_tiling(10**6, 4, buffer_bytes=64 * 1024)
        assert plan.tile_rows < 10**6
        assert plan.tile_cols == 1

    def test_tile_count_covers_matrix(self):
        plan = plan_weight_tiling(1000, 777, buffer_bytes=32 * 1024)
        covers = (
            math.ceil(1000 / plan.tile_rows) * math.ceil(777 / plan.tile_cols)
        )
        assert plan.n_tiles == covers

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_weight_tiling(0, 4, 1024)
        with pytest.raises(ValueError):
            plan_weight_tiling(4, 4, 0)
        with pytest.raises(ValueError):
            plan_weight_tiling(4, 4, 1024, reserve_fraction=1.0)


class TestPrefillRoofline:
    def test_long_prompt_compute_bound(self):
        hw = veda_config()
        plan = plan_weight_tiling(4096, 4096, hw.onchip_buffer_bytes)
        total, compute, memory = prefill_gemm_cycles(
            plan, prompt_length=512, width=hw.tree_width,
            bytes_per_cycle=hw.bytes_per_cycle,
        )
        assert compute > memory
        assert total == pytest.approx(compute)

    def test_balanced_design_threshold(self):
        """VEDA pairs 128 lanes with 256 B/cycle FP16: the compute/memory
        crossover sits at P* = 1 (decode itself is balanced)."""
        hw = veda_config()
        assert compute_bound_prompt_threshold(
            hw.tree_width, hw.bytes_per_cycle
        ) == 1

    def test_narrow_memory_raises_threshold(self):
        assert compute_bound_prompt_threshold(128, 32.0) == 8

    def test_cycles_validation(self):
        plan = TilePlan(4, 4, 4, 4, 1, 32, True)
        with pytest.raises(ValueError):
            prefill_gemm_cycles(plan, 0, 128, 256.0)


class TestBatchingAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return batching.run()

    def test_linear_amortizes_on_cloud_ratio(self, result):
        linear = [row["linear_cycles/token"] for row in result.rows]
        assert linear == sorted(linear, reverse=True)
        assert linear[-1] < 0.25 * linear[0]  # big win at batch 16

    def test_attention_flat(self, result):
        attn = {row["attention_cycles/token"] for row in result.rows}
        assert len(attn) == 1  # identical at every batch size

    def test_attention_share_grows(self, result):
        """The paper's point: batching makes attention the bottleneck."""
        shares = [row["attention_share_%"] for row in result.rows]
        assert shares == sorted(shares)
        assert shares[-1] > 3 * shares[0]

    def test_veda_balanced_gains_nothing(self):
        """On VEDA's own compute:bandwidth ratio, batching does not move
        per-token linear cost — decode already saturates the machine."""
        from repro.accel.config import veda_config

        result = batching.run(hw=veda_config())
        linear = [row["linear_cycles/token"] for row in result.rows]
        assert max(linear) == pytest.approx(min(linear))

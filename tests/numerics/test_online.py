"""Streaming reductions: online softmax and Welford statistics."""

import numpy as np
import pytest
from scipy import special

from repro.numerics.online import (
    OnlineSoftmaxNormalizer,
    WelfordAccumulator,
    online_softmax,
    stable_softmax,
    streaming_mean_std,
)


class TestOnlineSoftmax:
    def test_matches_batch_softmax(self, rng):
        x = rng.normal(size=64) * 10
        np.testing.assert_allclose(online_softmax(x), special.softmax(x), atol=1e-12)

    def test_stable_softmax_matches_scipy(self, rng):
        x = rng.normal(size=(4, 9))
        np.testing.assert_allclose(
            stable_softmax(x), special.softmax(x, axis=-1), atol=1e-12
        )

    def test_extreme_values(self):
        x = np.array([-1e4, 0.0, 1e4])
        out = online_softmax(x)
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0], atol=1e-12)

    def test_normalizer_state(self):
        n = OnlineSoftmaxNormalizer()
        for v in [1.0, 3.0, 2.0]:
            n.update(v)
        assert n.max == 3.0
        assert n.exp_sum == pytest.approx(
            np.exp(1 - 3) + np.exp(3 - 3) + np.exp(2 - 3)
        )
        assert n.count == 3

    def test_tile_update_equivalent_to_elementwise(self, rng):
        x = rng.normal(size=100) * 5
        elementwise = OnlineSoftmaxNormalizer()
        for v in x:
            elementwise.update(v)
        tiled = OnlineSoftmaxNormalizer()
        for start in range(0, 100, 16):
            tiled.update_tile(x[start : start + 16])
        assert tiled.max == elementwise.max
        assert tiled.exp_sum == pytest.approx(elementwise.exp_sum, rel=1e-12)

    def test_empty_tile_ignored(self):
        n = OnlineSoftmaxNormalizer()
        n.update_tile([])
        assert n.count == 0

    def test_normalize_before_update_raises(self):
        with pytest.raises(ValueError):
            OnlineSoftmaxNormalizer().normalize([1.0])

    def test_empty_input(self):
        assert online_softmax(np.array([])).size == 0


class TestWelford:
    def test_matches_numpy(self, rng):
        x = rng.normal(size=500) * 3 + 7
        acc = WelfordAccumulator()
        acc.update_many(x)
        assert acc.mean == pytest.approx(np.mean(x), rel=1e-12)
        assert acc.variance == pytest.approx(np.var(x), rel=1e-10)
        assert acc.std == pytest.approx(np.std(x), rel=1e-10)

    def test_streaming_mean_std(self, rng):
        x = rng.uniform(size=128)
        mean, std = streaming_mean_std(x)
        assert mean == pytest.approx(np.mean(x))
        assert std == pytest.approx(np.std(x))

    def test_single_element(self):
        acc = WelfordAccumulator()
        acc.update(5.0)
        assert acc.mean == 5.0
        assert acc.variance == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            WelfordAccumulator().mean
        with pytest.raises(ValueError):
            streaming_mean_std([])

    def test_numerical_robustness_large_offset(self):
        # Naive sum-of-squares catastrophically cancels here; Welford not.
        x = np.array([1e8 + 1, 1e8 + 2, 1e8 + 3], dtype=np.float64)
        acc = WelfordAccumulator()
        acc.update_many(x)
        assert acc.variance == pytest.approx(2.0 / 3.0, rel=1e-6)

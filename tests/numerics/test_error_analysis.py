"""FP16 datapath error analysis."""

import numpy as np
import pytest

from repro.numerics.error_analysis import (
    gemv_error_sweep,
    model_logit_error,
    quantize_state_dict,
    softmax_error,
)


class TestGemvErrorSweep:
    def test_errors_small_and_reported(self):
        rows = gemv_error_sweep(k_values=(16, 256))
        assert [row["k"] for row in rows] == [16, 256]
        for row in rows:
            assert 0 <= row["inner_rel_error"] < 0.02
            assert 0 <= row["outer_rel_error"] < 0.02

    def test_tree_beats_or_matches_sequential_growth(self):
        """Inner (tree) error grows slower than the outer (sequential)
        error as k increases — a known property of pairwise summation."""
        rows = gemv_error_sweep(k_values=(16, 1024))
        growth_inner = rows[1]["inner_rel_error"] / max(rows[0]["inner_rel_error"], 1e-9)
        growth_outer = rows[1]["outer_rel_error"] / max(rows[0]["outer_rel_error"], 1e-9)
        assert growth_inner <= growth_outer * 4  # lax: same order at worst


class TestSoftmaxError:
    def test_bounded(self):
        rows = softmax_error(lengths=(16, 256))
        for row in rows:
            assert row["max_abs_error"] < 5e-3


class TestModelQuantization:
    def test_quantize_state_dict_roundtrip(self, tiny_model):
        quantized = quantize_state_dict(tiny_model.state_dict())
        for name, value in quantized.items():
            np.testing.assert_array_equal(
                value, np.asarray(value, dtype=np.float16).astype(np.float64)
            )

    def test_logit_error_small(self, tiny_model, rng):
        tokens = rng.integers(0, 64, size=24)
        max_error, agreement = model_logit_error(tiny_model, tokens)
        assert max_error < 0.5  # untrained logits are O(1)
        assert agreement in (0.0, 1.0)

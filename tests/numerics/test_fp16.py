"""FP16 quantization helpers."""

import numpy as np
import pytest

from repro.numerics.fp16 import (
    FP16_MAX,
    fp16_quantize,
    fp16_relative_error,
    is_fp16_representable,
)


class TestQuantize:
    def test_exact_values_unchanged(self):
        for v in [0.0, 1.0, -2.5, 0.125, 1024.0]:
            assert fp16_quantize(v) == v

    def test_rounding_happens(self):
        # 1 + 2^-11 is not representable in fp16 (10 mantissa bits).
        value = 1.0 + 2.0**-11
        assert fp16_quantize(value) != value

    def test_saturation(self):
        assert fp16_quantize(1e6) == FP16_MAX
        assert fp16_quantize(-1e6) == -FP16_MAX

    def test_no_saturation_gives_inf(self):
        assert np.isinf(fp16_quantize(1e6, saturate=False))

    def test_array_shape_preserved(self, rng):
        x = rng.normal(size=(3, 4))
        out = fp16_quantize(x)
        assert out.shape == (3, 4)
        assert out.dtype == np.float64

    def test_scalar_returns_float(self):
        assert isinstance(fp16_quantize(1.5), float)

    def test_idempotent(self, rng):
        x = rng.normal(size=100)
        once = fp16_quantize(x)
        np.testing.assert_array_equal(once, fp16_quantize(once))


class TestRepresentable:
    def test_detects_representable(self):
        assert is_fp16_representable(0.5)
        assert is_fp16_representable(np.array([1.0, 2.0, 4.0]))

    def test_detects_unrepresentable(self):
        assert not is_fp16_representable(1.0 + 2.0**-11)


class TestRelativeError:
    def test_zero_error_for_exact(self):
        np.testing.assert_array_equal(fp16_relative_error([1.0, 2.0]), [0.0, 0.0])

    def test_error_bounded_by_eps(self, rng):
        x = rng.uniform(0.1, 100.0, size=1000)
        err = fp16_relative_error(x)
        assert err.max() <= 2.0**-10  # half eps rounding bound ~2^-11, be lax

    def test_zero_input_no_nan(self):
        assert fp16_relative_error([0.0])[0] == 0.0

"""Saturating counters (voting-engine storage semantics)."""

import numpy as np
import pytest

from repro.numerics.fixed_point import SaturatingCounter, clamp_unsigned


class TestClamp:
    def test_in_range_passthrough(self):
        assert clamp_unsigned(100, 12) == 100

    def test_saturates_at_max(self):
        assert clamp_unsigned(5000, 12) == 4095
        assert clamp_unsigned(70000, 16) == 65535

    def test_negative_clamps_to_zero(self):
        assert clamp_unsigned(-5, 8) == 0

    def test_array(self):
        out = clamp_unsigned(np.array([-1, 10, 300]), 8)
        np.testing.assert_array_equal(out, [0, 10, 255])

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            clamp_unsigned(1, 0)


class TestSaturatingCounter:
    def test_increment(self):
        c = SaturatingCounter(4, bits=16)
        c.increment(np.array([1, 0, 1, 0]))
        c.increment(np.array([1, 0, 0, 0]))
        np.testing.assert_array_equal(c.counts, [2, 0, 1, 0])

    def test_saturation_no_wrap(self):
        c = SaturatingCounter(2, bits=4)  # max 15
        for _ in range(20):
            c.increment(np.array([1, 0]))
        np.testing.assert_array_equal(c.counts, [15, 0])

    def test_argmax_earliest_tie_break(self):
        c = SaturatingCounter(5)
        c.increment(np.array([0, 2, 1, 2, 0]))
        assert c.argmax_earliest() == 1  # first of the tied maxima

    def test_argmax_valid_length(self):
        c = SaturatingCounter(5)
        c.increment(np.array([0, 1, 0, 9, 0]))
        assert c.argmax_earliest(valid_length=3) == 1

    def test_clear_slot(self):
        c = SaturatingCounter(3)
        c.increment(np.array([4, 5, 6]))
        c.clear(1)
        np.testing.assert_array_equal(c.counts, [4, 0, 6])

    def test_clear_all(self):
        c = SaturatingCounter(3)
        c.increment(np.array([1, 1, 1]))
        c.clear_all()
        np.testing.assert_array_equal(c.counts, [0, 0, 0])

    def test_counts_read_only(self):
        c = SaturatingCounter(2)
        with pytest.raises(ValueError):
            c.counts[0] = 5

    def test_negative_increment_rejected(self):
        c = SaturatingCounter(2)
        with pytest.raises(ValueError):
            c.increment(np.array([-1, 0]))

    def test_shape_mismatch_rejected(self):
        c = SaturatingCounter(3)
        with pytest.raises(ValueError):
            c.increment(np.array([1, 0]))

    def test_empty_argmax_rejected(self):
        c = SaturatingCounter(3)
        with pytest.raises(ValueError):
            c.argmax_earliest(valid_length=0)

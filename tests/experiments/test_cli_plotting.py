"""CLI and ASCII plotting."""

import pytest

from repro.cli import main
from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart


class TestPlotting:
    def test_line_chart_contains_markers(self):
        chart = ascii_line_chart(
            {"a": [(0, 1.0), (1, 2.0)], "b": [(0, 2.0), (1, 1.0)]}, title="t"
        )
        assert "t" in chart
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_line_chart_empty(self):
        assert ascii_line_chart({}) == "(no data)"

    def test_line_chart_flat_series(self):
        chart = ascii_line_chart({"flat": [(0, 1.0), (5, 1.0)]})
        assert "*" in chart

    def test_bar_chart(self):
        chart = ascii_bar_chart({"x": 2.0, "y": 1.0}, title="bars")
        assert "bars" in chart
        assert chart.count("█") > 2

    def test_bar_chart_empty(self):
        assert ascii_bar_chart({}) == "(no data)"


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8_center" in out and "table1" in out

    def test_table1_runs(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_RESULTS_DIR", tmp_path)
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "PE Array" in out
        assert (tmp_path / "table1.txt").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_fig8_center_with_chartless_path(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "_RESULTS_DIR", tmp_path)
        assert main(["fig8_center"]) == 0
        assert "Baseline+F+E" in capsys.readouterr().out

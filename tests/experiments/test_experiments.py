"""Experiment harnesses: structure and headline numbers vs the paper."""

import numpy as np
import pytest

from repro.experiments import fig8_center, fig8_right, table1, table2
from repro.experiments.common import ExperimentResult, format_table


class TestCommon:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = format_table(rows, title="t")
        assert "t" in text and "a" in text and "2.500" in text and "-" in text

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_result_columns(self):
        res = ExperimentResult("x", "t", rows=[{"a": 1}])
        assert res.column_names() == ["a"]
        assert "x" in res.to_table()


class TestFig8Center:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_center.run()

    def test_rows_cover_gen_lengths(self, result):
        assert [row["gen_length"] for row in result.rows] == [0, 128, 256, 512, 1024]

    def test_baseline_normalized_to_one(self, result):
        assert all(row["Baseline"] == pytest.approx(1.0) for row in result.rows)

    def test_f_reduction_about_25pct(self, result):
        """Paper: +F at 0.72-0.75 of baseline."""
        for row in result.rows:
            assert 0.70 <= row["Baseline+F"] <= 0.82

    def test_fe_reduction_in_paper_band(self, result):
        """Paper: +F+E at 0.55-0.63, rising with generation length."""
        values = [row["Baseline+F+E"] for row in result.rows]
        assert all(0.52 <= v <= 0.68 for v in values)
        assert values[-1] > values[0]  # rising trend

    def test_close_to_paper_numbers(self, result):
        # Within 7 points of the paper's curves (see EXPERIMENTS.md: our
        # +F trend rises mildly with length where the paper's falls
        # mildly; magnitudes and the who-wins ordering agree).
        for row in result.rows:
            assert row["Baseline+F"] == pytest.approx(row["paper_F"], abs=0.07)
            assert row["Baseline+F+E"] == pytest.approx(row["paper_F+E"], abs=0.07)


class TestFig8Right:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_right.run()

    def test_speedups_match_paper_within_10pct(self, result):
        for row in result.rows:
            for ratio in (0.5, 0.4, 0.3, 0.2):
                measured = row[f"VEDA+{ratio}KV"]
                paper = row[f"paper@{ratio}"]
                assert measured == pytest.approx(paper, rel=0.10), (
                    f"gen={row['gen_length']} ratio={ratio}"
                )

    def test_speedup_grows_with_compression(self, result):
        for row in result.rows:
            assert row["VEDA+0.2KV"] > row["VEDA+0.3KV"] > row["VEDA+0.5KV"]

    def test_speedup_grows_with_length(self, result):
        col = [row["VEDA+0.2KV"] for row in result.rows]
        assert col == sorted(col)

    def test_corner_values(self, result):
        """Paper corners: 2.3x and 10.0x."""
        first, last = result.rows[0], result.rows[-1]
        assert first["VEDA+0.5KV"] == pytest.approx(2.3, abs=0.15)
        assert last["VEDA+0.2KV"] == pytest.approx(10.0, abs=0.5)


class TestTable1:
    def test_matches_paper(self):
        result = table1.run()
        for row in result.rows:
            assert row["area_mm2"] == pytest.approx(row["paper_area"], rel=0.05)
            assert row["power_mw"] == pytest.approx(row["paper_power"], rel=0.05)

    def test_has_all_modules(self):
        result = table1.run()
        assert len(result.rows) == 6  # 5 modules + total


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run()

    def test_veda_row_figures(self, result):
        veda = next(r for r in result.rows if r["accelerator"] == "VEDA")
        assert veda["area_mm2"] == pytest.approx(1.06, abs=0.02)
        assert veda["GOPS"] == pytest.approx(245.0, rel=0.06)
        assert veda["GOPS/W"] == pytest.approx(653.0, rel=0.08)

    def test_veda_wins_energy_efficiency_even_scaled(self, result):
        veda = next(r for r in result.rows if r["accelerator"] == "VEDA")
        for row in result.rows:
            if row["accelerator"] != "VEDA":
                assert row["GOPS/W@28nm"] < veda["GOPS/W@28nm"]

    def test_veda_smallest_area(self, result):
        veda = next(r for r in result.rows if r["accelerator"] == "VEDA")
        for row in result.rows:
            if row["accelerator"] != "VEDA":
                assert veda["area_mm2"] < row["area_mm2"]

    def test_end_to_end_ratios(self, result):
        metrics = {e["metric"]: e["value"] for e in result.end_to_end}
        tokens = metrics["VEDA tokens/s"]
        assert tokens == pytest.approx(18.6, rel=0.06)
        ratio8 = metrics["8-VEDA throughput ratio vs GPU"]
        assert ratio8 == pytest.approx(2.86, rel=0.12)
        energy = metrics["energy-efficiency ratio (VEDA vs GPU)"]
        assert energy == pytest.approx(38.8, rel=0.15)

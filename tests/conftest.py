"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.config import tiny_config
from repro.models.inference import CachedTransformer
from repro.models.transformer import TransformerLM


@pytest.fixture(scope="session")
def tiny_model():
    """An untrained tiny model (deterministic weights)."""
    return TransformerLM(tiny_config(), seed=1234)


@pytest.fixture(scope="session")
def tiny_inference(tiny_model):
    """The cached-inference twin of :func:`tiny_model`."""
    return CachedTransformer.from_module(tiny_model)


@pytest.fixture()
def rng():
    return np.random.default_rng(99)

"""Dataset windowing and batching."""

import numpy as np
import pytest

from repro.data.datasets import BatchIterator, build_lm_data, make_windows
from repro.data.tokenizer import WordTokenizer


class TestMakeWindows:
    def test_non_overlapping(self):
        windows = make_windows(np.arange(10), seq_len=4)
        assert windows.shape == (2, 4)
        np.testing.assert_array_equal(windows[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(windows[1], [4, 5, 6, 7])

    def test_overlapping_stride(self):
        windows = make_windows(np.arange(8), seq_len=4, stride=2)
        assert windows.shape == (3, 4)
        np.testing.assert_array_equal(windows[1], [2, 3, 4, 5])

    def test_short_stream(self):
        windows = make_windows(np.arange(3), seq_len=8)
        assert windows.shape == (0, 8)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_windows(np.arange(10), seq_len=1)
        with pytest.raises(ValueError):
            make_windows(np.arange(10), seq_len=4, stride=0)
        with pytest.raises(ValueError):
            make_windows(np.zeros((2, 2)), seq_len=2)


class TestBatchIterator:
    def test_batch_shape(self):
        windows = np.arange(40).reshape(10, 4)
        batches = BatchIterator(windows, batch_size=3, seed=0)
        batch = next(batches)
        assert batch.shape == (3, 4)

    def test_deterministic_given_seed(self):
        windows = np.arange(40).reshape(10, 4)
        a = next(BatchIterator(windows, 4, seed=5))
        b = next(BatchIterator(windows, 4, seed=5))
        np.testing.assert_array_equal(a, b)

    def test_small_pool_replaces(self):
        windows = np.arange(8).reshape(2, 4)
        batch = next(BatchIterator(windows, batch_size=5, seed=0))
        assert batch.shape == (5, 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BatchIterator(np.zeros((0, 4)), 2)


class TestBuildLmData:
    def test_concatenates_documents(self):
        tok = WordTokenizer(["a", "b"])
        windows = build_lm_data([["a", "b"], ["b", "a"]], tok, seq_len=2)
        assert windows.shape == (2, 2)

"""Synthetic book corpus: structure and long-range dependencies."""

import numpy as np
import pytest

from repro.data.corpus import WORD_LISTS, BookConfig, generate_book, generate_corpus


@pytest.fixture()
def book():
    return generate_book(BookConfig(n_characters=3, n_sentences=40), np.random.default_rng(5))


class TestBookStructure:
    def test_bos_eos(self, book):
        assert book[0] == "<bos>"
        assert book[-1] == "<eos>"

    def test_deterministic(self):
        cfg = BookConfig()
        a = generate_book(cfg, np.random.default_rng(1))
        b = generate_book(cfg, np.random.default_rng(1))
        assert a == b

    def test_intros_come_first(self, book):
        """Character introductions precede the body."""
        # The first sentence after <bos> is an intro: name the profession ...
        assert book[1] in WORD_LISTS["names"]
        assert book[2] == "the"
        assert book[3] in WORD_LISTS["professions"]

    def test_unique_bindings_within_book(self, book):
        """Each introduced character has exactly one profession binding."""
        bindings = {}
        i = 1
        for _ in range(3):
            name, _, prof = book[i], book[i + 1], book[i + 2]
            assert name not in bindings
            bindings[name] = prof
            i += 10  # intro template length
        assert len(set(bindings.values())) == 3  # professions sampled w/o replacement

    def test_recall_sentences_consistent(self):
        """Every 'NAME the X' occurrence matches the introduced profession."""
        cfg = BookConfig(n_characters=4, n_sentences=80, recall_probability=0.5)
        book = generate_book(cfg, np.random.default_rng(9))
        bindings = {}
        i = 1
        for _ in range(4):
            bindings[book[i]] = book[i + 2]
            i += 10
        names = set(bindings)
        for j in range(len(book) - 2):
            if book[j] in names and book[j + 1] == "the" and book[j + 2] in WORD_LISTS["professions"]:
                assert book[j + 2] == bindings[book[j]]

    def test_city_recalls_consistent(self):
        cfg = BookConfig(n_characters=4, n_sentences=80, recall_probability=0.5)
        book = generate_book(cfg, np.random.default_rng(21))
        city_of = {}
        i = 1
        for _ in range(4):
            # intro: name the prof lived in CITY with a OBJ .
            city_of[book[i]] = book[i + 5]
            i += 10
        for j in range(len(book) - 3):
            if book[j] in city_of and book[j + 1] == "stayed" and book[j + 2] == "in":
                assert book[j + 3] == city_of[book[j]]


class TestConfigValidation:
    def test_zero_characters(self):
        with pytest.raises(ValueError):
            BookConfig(n_characters=0)

    def test_too_many_characters(self):
        with pytest.raises(ValueError):
            BookConfig(n_characters=999)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            BookConfig(recall_probability=1.5)


class TestCorpus:
    def test_book_count(self):
        corpus = generate_corpus(5, seed=3)
        assert len(corpus) == 5

    def test_books_differ(self):
        corpus = generate_corpus(3, seed=3)
        assert corpus[0] != corpus[1]

    def test_seed_reproducibility(self):
        assert generate_corpus(2, seed=7) == generate_corpus(2, seed=7)

    def test_rejects_zero_books(self):
        with pytest.raises(ValueError):
            generate_corpus(0)

    def test_vocabulary_closed(self):
        """Every emitted word is in the fixed template vocabulary."""
        known = set(w for words in WORD_LISTS.values() for w in words)
        known |= {
            "<bos>", "<eos>", "the", "lived", "in", "with", "a", ".", "one",
            "walked", "to", "and", "quietly", '"', "said", "near", "people",
            "saw", "stayed", "through", "kept", "close", "at", "hand",
        }
        for book in generate_corpus(4, seed=2):
            unknown = set(book) - known
            assert not unknown, f"words outside fixed vocab: {unknown}"

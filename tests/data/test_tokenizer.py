"""Word tokenizer."""

import numpy as np
import pytest

from repro.data.tokenizer import WordTokenizer


@pytest.fixture()
def tok():
    return WordTokenizer(["apple", "banana", "cherry"])


class TestBasics:
    def test_specials_first(self, tok):
        assert tok.pad_id == 0
        assert tok.unk_id == 1
        assert tok.bos_id == 2
        assert tok.eos_id == 3

    def test_vocab_size(self, tok):
        assert tok.vocab_size == 7
        assert len(tok) == 7

    def test_encode_decode_roundtrip(self, tok):
        text = "apple cherry banana"
        ids = tok.encode(text)
        assert tok.decode(ids) == text

    def test_encode_list_input(self, tok):
        ids = tok.encode(["apple", "banana"])
        assert ids.dtype == np.int64
        assert ids.shape == (2,)

    def test_unknown_maps_to_unk(self, tok):
        ids = tok.encode("durian apple")
        assert ids[0] == tok.unk_id
        assert tok.decode(ids) == "<unk> apple"

    def test_skip_specials_on_decode(self, tok):
        ids = tok.encode(["<bos>", "apple", "<eos>"])
        assert tok.decode(ids, skip_specials=True) == "apple"

    def test_token_id_and_word(self, tok):
        i = tok.token_id("banana")
        assert tok.word(i) == "banana"


class TestConstruction:
    def test_deterministic_ordering(self):
        a = WordTokenizer(["zebra", "ant", "moose"])
        b = WordTokenizer(["moose", "zebra", "ant"])
        assert a.encode("zebra ant").tolist() == b.encode("zebra ant").tolist()

    def test_duplicates_ignored(self):
        tok = WordTokenizer(["a", "a", "b"])
        assert tok.vocab_size == 6

    def test_specials_in_input_not_duplicated(self):
        tok = WordTokenizer(["<bos>", "word"])
        assert tok.vocab_size == 5

    def test_from_corpus(self):
        tok = WordTokenizer.from_corpus([["hello", "world"], "hello again"])
        assert tok.token_id("again") != tok.unk_id
        assert tok.vocab_size == 7

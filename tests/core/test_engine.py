"""Generation engine: budgets, eviction wiring, perplexity protocol."""

import numpy as np
import pytest

from repro.core.engine import GenerationEngine, budget_from_ratio
from repro.core.policies import (
    FullCachePolicy,
    StreamingLLMPolicy,
    VotingPolicy,
)
from repro.core.sampling import greedy


@pytest.fixture()
def prompt(rng):
    return rng.integers(0, 64, size=24)


class TestBudgetFromRatio:
    def test_paper_formula(self):
        assert budget_from_ratio(0.5, 512) == 256
        assert budget_from_ratio(0.2, 512) == 102

    def test_reserved_lower_bound(self):
        assert budget_from_ratio(0.01, 100, minimum=32) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_from_ratio(0.0, 100)
        with pytest.raises(ValueError):
            budget_from_ratio(1.5, 100)


class TestGenerate:
    def test_unbounded_cache_grows(self, tiny_inference, prompt):
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        result = engine.generate(prompt, max_new_tokens=6)
        assert len(result.tokens) == 6
        assert result.cache_lengths[-1] == 24 + 6
        assert result.num_evictions == 0

    def test_budget_enforced_every_step(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        engine = GenerationEngine(
            tiny_inference, VotingPolicy(n_layers, reserved_length=2), budget=16
        )
        result = engine.generate(prompt, max_new_tokens=8)
        assert all(length <= 16 for length in result.cache_lengths)
        # prefill 24 -> evict 8 per layer, then 1 per step per layer
        assert result.num_evictions == n_layers * (24 - 16) + n_layers * 8

    def test_streaming_budget(self, tiny_inference, prompt):
        engine = GenerationEngine(
            tiny_inference,
            StreamingLLMPolicy(tiny_inference.config.n_layers, n_sinks=2),
            budget=12,
        )
        result = engine.generate(prompt, max_new_tokens=5)
        assert result.cache_lengths[-1] == 12

    def test_deterministic_greedy(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        a = GenerationEngine(
            tiny_inference, VotingPolicy(n_layers), budget=16
        ).generate(prompt, 5)
        b = GenerationEngine(
            tiny_inference, VotingPolicy(n_layers), budget=16
        ).generate(prompt, 5)
        assert a.tokens == b.tokens

    def test_eos_stops(self, tiny_inference, prompt):
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        # Force every sampled token to be 7 and declare it EOS.
        result = engine.generate(
            prompt, max_new_tokens=10, sampler=lambda logits, rng: 7, eos=7
        )
        assert result.tokens == [7]

    def test_evictions_per_step_limit(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        engine = GenerationEngine(
            tiny_inference,
            VotingPolicy(n_layers, reserved_length=2),
            budget=8,
            evictions_per_step=1,
        )
        result = engine.generate(prompt, max_new_tokens=4)
        # Prefill put 24 entries; with 1 eviction/step the cache shrinks
        # by one per processed step, so it cannot have reached budget yet.
        assert result.cache_lengths[-1] > 8
        # but the eviction log grows exactly 1 per layer per step.
        steps_processed = 1 + 4  # prefill + 4 generation steps
        assert result.num_evictions == n_layers * steps_processed

    def test_rejects_empty_prompt(self, tiny_inference):
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        with pytest.raises(ValueError):
            engine.generate(np.array([], dtype=int), 4)

    def test_rejects_bad_budget(self, tiny_inference):
        with pytest.raises(ValueError):
            GenerationEngine(
                tiny_inference,
                FullCachePolicy(tiny_inference.config.n_layers),
                budget=0,
            )


class TestPerplexity:
    def test_full_cache_matches_training_nll(self, tiny_model, tiny_inference, rng):
        """Engine NLL with no eviction == training-graph cross entropy."""
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor

        tokens = rng.integers(0, 64, size=20)
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        result = engine.perplexity(tokens, prefill_length=10)

        logits = tiny_model(tokens[None, :-1]).numpy()[0]
        expected = []
        for i in range(9, 19):
            row = Tensor(logits[i][None, :])
            nll = F.cross_entropy(row, np.array([tokens[i + 1]]))
            expected.append(nll.item())
        np.testing.assert_allclose(result.nll_per_token, expected, atol=1e-9)

    def test_eviction_changes_nll(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=32)
        full = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        ).perplexity(tokens, prefill_length=8)
        tiny_budget = GenerationEngine(
            tiny_inference,
            StreamingLLMPolicy(tiny_inference.config.n_layers, n_sinks=1),
            budget=4,
        ).perplexity(tokens, prefill_length=8)
        assert full.num_tokens == tiny_budget.num_tokens
        assert full.nll_per_token != tiny_budget.nll_per_token

    def test_perplexity_is_exp_mean_nll(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=16)
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        result = engine.perplexity(tokens, prefill_length=4)
        assert result.perplexity == pytest.approx(np.exp(result.mean_nll))

    def test_token_count(self, tiny_inference, rng):
        tokens = rng.integers(0, 64, size=30)
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        result = engine.perplexity(tokens, prefill_length=10)
        assert result.num_tokens == 20  # tokens 10..29 predicted

    def test_too_short_rejected(self, tiny_inference):
        engine = GenerationEngine(
            tiny_inference, FullCachePolicy(tiny_inference.config.n_layers)
        )
        with pytest.raises(ValueError):
            engine.perplexity(np.array([1]))

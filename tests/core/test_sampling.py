"""Token samplers."""

import numpy as np
import pytest

from repro.core.sampling import greedy, temperature_sampler, top_k_sampler


class TestGreedy:
    def test_argmax(self):
        assert greedy(np.array([0.1, 0.9, 0.3])) == 1

    def test_rng_ignored(self):
        assert greedy(np.array([1.0, 2.0]), rng=None) == 1


class TestTemperature:
    def test_low_temperature_approaches_greedy(self):
        sample = temperature_sampler(temperature=0.01)
        rng = np.random.default_rng(0)
        logits = np.array([0.0, 5.0, 1.0])
        picks = {sample(logits, rng) for _ in range(20)}
        assert picks == {1}

    def test_high_temperature_spreads(self):
        sample = temperature_sampler(temperature=100.0)
        rng = np.random.default_rng(0)
        logits = np.array([0.0, 5.0, 1.0])
        picks = {sample(logits, rng) for _ in range(200)}
        assert len(picks) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            temperature_sampler(0.0)


class TestTopK:
    def test_restricts_support(self):
        sample = top_k_sampler(k=2)
        rng = np.random.default_rng(0)
        logits = np.array([10.0, 9.0, -5.0, -6.0])
        picks = {sample(logits, rng) for _ in range(100)}
        assert picks <= {0, 1}

    def test_k_larger_than_vocab(self):
        sample = top_k_sampler(k=100)
        rng = np.random.default_rng(0)
        assert sample(np.array([0.0, 1.0]), rng) in (0, 1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_sampler(0)

"""The voting-based eviction policy (paper Fig. 3)."""

import numpy as np
import pytest

from repro.core.policies.base import GENERATION, PREFILL
from repro.core.policies.voting import VotingPolicy, adaptive_threshold, vote_mask


class TestAdaptiveThreshold:
    def test_uniform_row(self):
        """Even distribution: std=0 so T = a * 1/l (highest threshold)."""
        row = np.full(10, 0.1)
        assert adaptive_threshold(row) == pytest.approx(0.1)

    def test_sparse_row_lowers_threshold(self):
        """Sparse (spiky) rows have large std → lower threshold (paper:
        'a sparse attention score results in ... a lower threshold')."""
        uniform = np.full(8, 1 / 8)
        sparse = np.zeros(8)
        sparse[0] = 1.0
        assert adaptive_threshold(sparse) < adaptive_threshold(uniform)

    def test_mean_is_inverse_length(self, rng):
        """Softmax rows sum to 1, so mean = 1/l regardless of content."""
        row = rng.dirichlet(np.ones(16))
        t_mean = adaptive_threshold(row, a=1.0, b=0.0)
        assert t_mean == pytest.approx(1.0 / 16)

    def test_hyperparameters(self):
        row = np.array([0.7, 0.1, 0.1, 0.1])
        t1 = adaptive_threshold(row, a=1.0, b=0.0)
        t2 = adaptive_threshold(row, a=1.0, b=0.5)
        assert t2 < t1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            adaptive_threshold(np.array([]))


class TestVoteMask:
    def test_below_threshold_votes(self):
        row = np.array([0.5, 0.3, 0.1, 0.1])  # mean 0.25
        mask = vote_mask(row, np.arange(4), reserved_length=0, b=0.0)
        np.testing.assert_array_equal(mask, [False, False, True, True])

    def test_reserved_positions_never_voted(self):
        row = np.array([0.01, 0.01, 0.49, 0.49])
        mask = vote_mask(row, np.arange(4), reserved_length=2, b=0.0)
        assert not mask[0] and not mask[1]

    def test_negative_threshold_votes_minimum_only(self):
        # Extremely spiky row: T = mean - 0.2*std < 0 for large spike.
        row = np.zeros(32)
        row[5] = 1.0
        row[7] = 1e-6
        assert adaptive_threshold(row) < 0
        mask = vote_mask(row, np.arange(32), reserved_length=0)
        assert mask.sum() == 1
        assert mask[np.argmin(row)]

    def test_negative_threshold_respects_reserved(self):
        row = np.zeros(32)
        row[8] = 1.0
        assert adaptive_threshold(row) < 0
        # minimum ties at every zero slot; first *eligible* one wins,
        # which must be outside the reserved prefix.
        mask = vote_mask(row, np.arange(32), reserved_length=4)
        voted = np.nonzero(mask)[0]
        assert voted.size == 1 and voted[0] == 4

    def test_all_reserved_no_votes(self):
        row = np.full(4, 0.25)
        mask = vote_mask(row, np.arange(4), reserved_length=10)
        assert not mask.any()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            vote_mask(np.ones(3), np.arange(4), 0)


class TestVotingPolicy:
    def _observe_uniformish(self, policy, length, spiky_at=None):
        row = np.full(length, 1.0 / length)
        if spiky_at is not None:
            row[:] = 0.5 / (length - 1)
            row[spiky_at] = 0.5
        policy.observe(0, row[None, :], np.arange(length), GENERATION)

    def test_reserved_rows_do_not_vote(self):
        policy = VotingPolicy(n_layers=1, reserved_length=8)
        # Voter at position 5 (< R): must not vote.
        attn = np.array([[0.1, 0.1, 0.1, 0.2, 0.2, 0.3]])
        policy.observe(0, attn, np.arange(6), PREFILL)
        assert policy.vote_counts(0).sum() == 0

    def test_votes_accumulate(self):
        policy = VotingPolicy(n_layers=1, reserved_length=0, b=0.0)
        attn = np.array([[0.5, 0.3, 0.1, 0.1]])
        policy.observe(0, attn, np.arange(4), GENERATION)
        policy.observe(0, attn, np.arange(4), GENERATION)
        np.testing.assert_array_equal(policy.vote_counts(0), [0, 0, 2, 2])

    def test_select_victim_max_votes(self):
        policy = VotingPolicy(n_layers=1, reserved_length=0, b=0.0)
        attn = np.array([[0.4, 0.05, 0.4, 0.15]])
        policy.observe(0, attn, np.arange(4), GENERATION)
        assert policy.select_victim(0, np.arange(4)) == 1

    def test_tie_breaks_earliest(self):
        policy = VotingPolicy(n_layers=1, reserved_length=0, b=0.0)
        attn = np.array([[0.4, 0.1, 0.1, 0.4]])
        policy.observe(0, attn, np.arange(4), GENERATION)
        # slots 1 and 2 tie with one vote each; earliest (1) wins.
        assert policy.select_victim(0, np.arange(4)) == 1

    def test_reserved_never_evicted(self):
        policy = VotingPolicy(n_layers=1, reserved_length=4)
        # All votes are zero: victim must still be a non-reserved slot.
        assert policy.select_victim(0, np.arange(10)) >= 4

    def test_head_averaging(self):
        """Layer-wise aggregation: heads are averaged before voting."""
        policy = VotingPolicy(n_layers=1, reserved_length=0, b=0.0)
        # Head 0 says slot 1 is unimportant; head 1 says it is pivotal.
        attn = np.array([[0.6, 0.05, 0.35], [0.1, 0.7, 0.2]])
        policy.observe(0, attn, np.arange(3), GENERATION)
        counts = policy.vote_counts(0)
        # Averaged row: [0.35, 0.375, 0.275]; mean 1/3: only slot 2 below.
        np.testing.assert_array_equal(counts, [0, 0, 1])

    def test_on_evict_compacts_votes(self):
        policy = VotingPolicy(n_layers=1, reserved_length=0, b=0.0)
        attn = np.array([[0.5, 0.3, 0.1, 0.1]])
        policy.observe(0, attn, np.arange(4), GENERATION)
        policy.on_evict(0, 2)
        np.testing.assert_array_equal(policy.vote_counts(0), [0, 0, 1])

    def test_recency_preserved(self):
        """Item-count fairness: recent slots have fewer vote chances.

        After many steps of uniform-ish attention with a persistent
        low-score early slot, the victim should be that early slot, not a
        recent one (contrast with H2O's item-count bias test).
        """
        policy = VotingPolicy(n_layers=1, reserved_length=2, b=0.0)
        length = 12
        for step in range(6, length + 1):
            row = np.full(step, 1.0 / step)
            row[3] = row[3] / 10  # persistently unimportant position 3
            row = row / row.sum()
            policy.observe(0, row[None, :], np.arange(step), GENERATION)
        assert policy.select_victim(0, np.arange(length)) == 3

    def test_outlier_does_not_immortalize(self):
        """Uniform weight voting: one huge score cannot save a slot that
        is judged unimportant by every later voter (paper bias ③)."""
        policy = VotingPolicy(n_layers=1, reserved_length=0, b=0.0)
        # Step 1: slot 1 gets an enormous score (outlier).
        policy.observe(0, np.array([[0.01, 0.99]]), np.arange(2), GENERATION)
        # Later steps: slot 1 consistently unimportant.
        for step in range(3, 8):
            row = np.full(step, 1.0 / step)
            row[1] = row[1] / 20
            row = row / row.sum()
            policy.observe(0, row[None, :], np.arange(step), GENERATION)
        assert policy.select_victim(0, np.arange(7)) == 1

    def test_reset(self):
        policy = VotingPolicy(n_layers=1, reserved_length=0)
        self._observe_uniformish(policy, 4, spiky_at=0)
        policy.reset()
        assert policy.vote_counts(0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            VotingPolicy(n_layers=1, reserved_length=-1)
        with pytest.raises(ValueError):
            VotingPolicy(n_layers=1, head_reduction="median")
        policy = VotingPolicy(n_layers=1)
        with pytest.raises(ValueError):
            policy.observe(0, np.ones(4), np.arange(4), GENERATION)
        with pytest.raises(IndexError):
            policy.select_victim(5, np.arange(4))

"""Evictable KV cache."""

import numpy as np
import pytest

from repro.core.kv_cache import BatchedKVCache, KVCache, LayerKVCache


@pytest.fixture()
def layer():
    return LayerKVCache(n_heads=2, head_dim=4, capacity=8)


def kv(value, heads=2, dim=4):
    return np.full((heads, dim), float(value)), np.full((heads, dim), float(-value))


class TestAppend:
    def test_append_and_views(self, layer):
        k, v = kv(1)
        layer.append(k, v, position=0)
        assert layer.length == 1
        np.testing.assert_array_equal(layer.keys[:, 0], k)
        np.testing.assert_array_equal(layer.values[:, 0], v)
        np.testing.assert_array_equal(layer.positions, [0])

    def test_append_block(self, layer):
        keys = np.arange(2 * 3 * 4).reshape(2, 3, 4).astype(float)
        values = -keys
        layer.append_block(keys, values, np.array([0, 1, 2]))
        assert layer.length == 3
        np.testing.assert_array_equal(layer.keys, keys)
        np.testing.assert_array_equal(layer.positions, [0, 1, 2])

    def test_overflow_raises(self, layer):
        for i in range(8):
            layer.append(*kv(i), position=i)
        with pytest.raises(RuntimeError):
            layer.append(*kv(9), position=8)

    def test_block_overflow_raises(self, layer):
        with pytest.raises(RuntimeError):
            layer.append_block(
                np.zeros((2, 9, 4)), np.zeros((2, 9, 4)), np.arange(9)
            )

    def test_shape_validation(self, layer):
        with pytest.raises(ValueError):
            layer.append(np.zeros((2, 5)), np.zeros((2, 4)), position=0)


class TestEvict:
    def test_evict_middle_compacts(self, layer):
        for i in range(5):
            layer.append(*kv(i), position=i)
        evicted = layer.evict(2)
        assert evicted == 2
        assert layer.length == 4
        np.testing.assert_array_equal(layer.positions, [0, 1, 3, 4])
        np.testing.assert_array_equal(layer.keys[0, 2], np.full(4, 3.0))

    def test_evict_first_and_last(self, layer):
        for i in range(3):
            layer.append(*kv(i), position=i)
        layer.evict(0)
        np.testing.assert_array_equal(layer.positions, [1, 2])
        layer.evict(1)
        np.testing.assert_array_equal(layer.positions, [1])

    def test_evict_out_of_range(self, layer):
        layer.append(*kv(0), position=0)
        with pytest.raises(IndexError):
            layer.evict(1)
        with pytest.raises(IndexError):
            layer.evict(-1)

    def test_positions_stay_sorted_after_evictions(self, layer, rng):
        for i in range(8):
            layer.append(*kv(i), position=i)
        while layer.length > 2:
            layer.evict(int(rng.integers(layer.length)))
        positions = layer.positions
        assert np.all(np.diff(positions) > 0)

    def test_evict_then_append_reuses_slot(self, layer):
        for i in range(8):
            layer.append(*kv(i), position=i)
        layer.evict(0)
        layer.append(*kv(8), position=8)
        assert layer.length == 8
        assert layer.positions[-1] == 8


class TestKVCache:
    def test_layer_independence(self):
        cache = KVCache(n_layers=3, n_heads=2, head_dim=4, capacity=4)
        cache[0].append(*kv(1), position=0)
        assert cache.lengths == [1, 0, 0]

    def test_iteration(self):
        cache = KVCache(2, 2, 4, 4)
        assert len(list(cache)) == 2

    def test_repr(self):
        cache = KVCache(2, 2, 4, 4)
        assert "lengths" in repr(cache)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LayerKVCache(2, 4, capacity=0)


class TestBatchedKVCache:
    def test_add_get_remove_lifecycle(self):
        bank = BatchedKVCache(n_layers=2, n_heads=2, head_dim=4)
        cache = bank.add_sequence("a", capacity=4)
        assert bank.get("a") is cache
        assert "a" in bank and len(bank) == 1
        removed = bank.remove_sequence("a")
        assert removed is cache
        assert "a" not in bank and len(bank) == 0

    def test_duplicate_and_unknown_ids_raise(self):
        bank = BatchedKVCache(n_layers=1, n_heads=2, head_dim=4)
        bank.add_sequence("a", capacity=4)
        with pytest.raises(KeyError):
            bank.add_sequence("a", capacity=4)
        with pytest.raises(KeyError):
            bank.get("b")
        with pytest.raises(KeyError):
            bank.remove_sequence("b")

    def test_sequences_are_independent(self):
        bank = BatchedKVCache(n_layers=1, n_heads=2, head_dim=4)
        first = bank.add_sequence("a", capacity=4)
        second = bank.add_sequence("b", capacity=8)
        first[0].append(*kv(1), position=0)
        assert first[0].length == 1
        assert second[0].length == 0
        assert bank.total_entries == 1

    def test_select_preserves_order(self):
        bank = BatchedKVCache(n_layers=1, n_heads=2, head_dim=4)
        a = bank.add_sequence("a", capacity=4)
        b = bank.add_sequence("b", capacity=4)
        assert bank.select(["b", "a"]) == [b, a]
        assert bank.sequence_ids == ["a", "b"]

    def test_capacity_is_per_sequence(self):
        bank = BatchedKVCache(n_layers=1, n_heads=2, head_dim=4)
        small = bank.add_sequence("small", capacity=1)
        small[0].append(*kv(0), position=0)
        with pytest.raises(RuntimeError):
            small[0].append(*kv(1), position=1)
        large = bank.add_sequence("large", capacity=2)
        large[0].append(*kv(0), position=0)
        large[0].append(*kv(1), position=1)

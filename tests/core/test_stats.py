"""Fig. 2 bias diagnostics."""

import numpy as np
import pytest

from repro.core.stats import (
    accumulated_importance,
    criteria_spread,
    figure2_example,
    item_count_bias,
    outlier_contribution,
    vote_counts_from_rows,
)


def causal_uniform(length):
    attn = np.zeros((length, length))
    for i in range(length):
        attn[i, : i + 1] = 1.0 / (i + 1)
    return attn


class TestAccumulation:
    def test_column_sums(self):
        attn = causal_uniform(3)
        imp = accumulated_importance(attn)
        np.testing.assert_allclose(imp, [1 + 0.5 + 1 / 3, 0.5 + 1 / 3, 1 / 3])

    def test_rejects_non_causal(self):
        attn = np.ones((3, 3))
        with pytest.raises(ValueError):
            accumulated_importance(attn)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            accumulated_importance(np.zeros((2, 3)))


class TestBiasDiagnostics:
    def test_item_count_bias(self):
        counts = item_count_bias(causal_uniform(6))
        np.testing.assert_array_equal(counts, [6, 5, 4, 3, 2, 1])

    def test_criteria_spread_is_inverse_length(self):
        spreads = criteria_spread(causal_uniform(4))
        np.testing.assert_allclose(spreads, [1.0, 0.5, 1 / 3, 0.25])

    def test_outlier_contribution(self):
        attn = causal_uniform(4)
        attn[2, 1] = 9.0
        attn[2, :3] /= attn[2, :3].sum()
        frac = outlier_contribution(attn)
        assert frac[1] > 0.5  # the outlier dominates column 1

    def test_uniform_attention_recency_bias(self):
        """With uniform attention, accumulation evicts the newest token."""
        imp = accumulated_importance(causal_uniform(8))
        assert np.argmin(imp) == 7


class TestVoteReplay:
    def test_uniform_attention_no_votes(self):
        """Uniform rows have std=0 and all elements == mean: nothing is
        below threshold, so no votes are cast."""
        counts = vote_counts_from_rows(causal_uniform(6), reserved_length=0)
        assert counts.sum() == 0

    def test_persistent_low_scorer_collects_votes(self):
        length = 8
        attn = np.zeros((length, length))
        for i in range(length):
            row = np.full(i + 1, 1.0)
            if i >= 2:
                row[2] = 0.05
            attn[i, : i + 1] = row / row.sum()
        counts = vote_counts_from_rows(attn, reserved_length=0)
        assert counts.argmax() == 2

    def test_reserved_rows_and_columns(self):
        attn = causal_uniform(6)
        attn[4, 0] = 0.001
        attn[4, :5] /= attn[4, :5].sum()
        counts = vote_counts_from_rows(attn, reserved_length=2)
        assert counts[0] == 0 and counts[1] == 0


class TestFigure2Example:
    def test_voting_targets_genuinely_unimportant(self):
        example = figure2_example()
        # Position 3 is constructed to be unimportant to every voter.
        assert example["voting_victim"] == 3

    def test_accumulation_disagrees(self):
        example = figure2_example()
        # Accumulation's minimum lands on the newest position (item-count
        # bias), not on the genuinely unimportant one.
        assert example["accumulation_victim"] == 7
        assert example["accumulation_victim"] != example["voting_victim"]

    def test_outlier_column_protected_by_accumulation(self):
        example = figure2_example()
        imp = example["accumulated_importance"]
        # Column 2 holds the outlier: its accumulated importance is
        # inflated far above the genuinely comparable column 3.
        assert imp[2] > 3 * imp[3]
        # …while voting is outlier-blind: column 2 collects no more votes
        # than its uniform neighbours.
        counts = example["vote_counts"]
        assert counts[2] <= counts[3]

"""Extension policies: TOVA, Scissorhands, decayed accumulation."""

import numpy as np
import pytest

from repro.core.policies.base import GENERATION
from repro.core.policies.extensions import (
    DecayedAccumulationPolicy,
    ScissorhandsPolicy,
    TOVAPolicy,
)


def row(values):
    values = np.asarray(values, dtype=np.float64)
    return (values / values.sum())[None, :]


class TestTOVA:
    def test_evicts_least_attended_now(self):
        policy = TOVAPolicy(n_layers=1, protected_prefix=0, recent_window=0)
        policy.observe(0, row([0.4, 0.05, 0.35, 0.2]), np.arange(4), GENERATION)
        assert policy.select_victim(0, np.arange(4)) == 1

    def test_myopia(self):
        """Only the latest row matters — earlier observations are
        forgotten (the design's known weakness)."""
        policy = TOVAPolicy(n_layers=1, protected_prefix=0, recent_window=0)
        policy.observe(0, row([0.9, 0.05, 0.05]), np.arange(3), GENERATION)
        policy.observe(0, row([0.05, 0.9, 0.05]), np.arange(3), GENERATION)
        # slot 0 was huge last-but-one step; the fresh row decides.
        assert policy.select_victim(0, np.arange(3)) in (0, 2)

    def test_protected_prefix(self):
        policy = TOVAPolicy(n_layers=1, protected_prefix=2, recent_window=0)
        policy.observe(0, row([0.01, 0.01, 0.49, 0.49]), np.arange(4), GENERATION)
        assert policy.select_victim(0, np.arange(4)) >= 2

    def test_on_evict_compacts(self):
        policy = TOVAPolicy(n_layers=1, protected_prefix=0, recent_window=0)
        policy.observe(0, row([0.5, 0.1, 0.4]), np.arange(3), GENERATION)
        policy.on_evict(0, 1)
        assert policy.select_victim(0, np.arange(2)) == 1  # 0.4 < 0.5

    def test_reset(self):
        policy = TOVAPolicy(n_layers=1)
        policy.observe(0, row([0.5, 0.5]), np.arange(2), GENERATION)
        policy.reset()
        assert policy._last_row[0].size == 0


class TestScissorhands:
    def test_persistent_token_survives(self):
        policy = ScissorhandsPolicy(n_layers=1, history=32, protected_prefix=0, recent_window=0)
        # Slots 0 and 1 are pivotal (above the 1/3 row mean); slot 2 never.
        for _ in range(6):
            policy.observe(0, row([0.5, 0.4, 0.1]), np.arange(3), GENERATION)
        assert policy.select_victim(0, np.arange(3)) == 2

    def test_hits_decay(self):
        policy = ScissorhandsPolicy(n_layers=1, history=2, protected_prefix=0, recent_window=0)
        policy.observe(0, row([0.9, 0.1]), np.arange(2), GENERATION)
        early = policy.persistence(0)[0]
        # Many steps where slot 0 is NOT pivotal: its old hit decays.
        for _ in range(10):
            policy.observe(0, row([0.1, 0.9]), np.arange(2), GENERATION)
        assert policy.persistence(0)[0] < early

    def test_protected_prefix(self):
        policy = ScissorhandsPolicy(n_layers=1, protected_prefix=1, recent_window=0)
        policy.observe(0, row([0.05, 0.9, 0.05]), np.arange(3), GENERATION)
        assert policy.select_victim(0, np.arange(3)) != 0

    def test_on_evict(self):
        policy = ScissorhandsPolicy(n_layers=1, protected_prefix=0, recent_window=0)
        policy.observe(0, row([0.6, 0.1, 0.3]), np.arange(3), GENERATION)
        policy.on_evict(0, 0)
        assert policy.persistence(0).shape == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ScissorhandsPolicy(n_layers=1, history=0)


class TestDecayedAccumulation:
    def test_reduces_to_h2o_at_long_half_life(self):
        """With a huge half-life the score ordering matches pure
        accumulation."""
        policy = DecayedAccumulationPolicy(
            n_layers=1, half_life=10**6, protected_prefix=0, recent_window=0
        )
        r = row([0.5, 0.2, 0.3])
        for _ in range(4):
            policy.observe(0, r, np.arange(3), GENERATION)
        scores = policy.accumulated(0)
        assert scores[0] > scores[2] > scores[1]
        assert policy.select_victim(0, np.arange(3)) == 1

    def test_decay_counters_item_count_bias(self):
        """Under uniform attention, pure accumulation evicts the newest
        token; decay narrows old/new gap so the margin shrinks."""
        slow = DecayedAccumulationPolicy(n_layers=1, half_life=10**6, protected_prefix=0, recent_window=0)
        fast = DecayedAccumulationPolicy(n_layers=1, half_life=2, protected_prefix=0, recent_window=0)
        for step in range(2, 9):
            r = row(np.ones(step))
            slow.observe(0, r, np.arange(step), GENERATION)
            fast.observe(0, r, np.arange(step), GENERATION)
        gap_slow = slow.accumulated(0)[0] - slow.accumulated(0)[-1]
        gap_fast = fast.accumulated(0)[0] - fast.accumulated(0)[-1]
        assert gap_fast < gap_slow

    def test_on_evict(self):
        policy = DecayedAccumulationPolicy(n_layers=1, protected_prefix=0, recent_window=0)
        policy.observe(0, row([0.2, 0.5, 0.3]), np.arange(3), GENERATION)
        policy.on_evict(0, 0)
        np.testing.assert_allclose(policy.accumulated(0), [0.5, 0.3])

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedAccumulationPolicy(n_layers=1, half_life=0)

"""Attention-trace analysis utilities."""

import numpy as np
import pytest

from repro.core.analysis import attention_sparsity, row_entropy, sink_mass


def synthetic_attention(length=64, heads=2, sink_share=0.5, seed=0):
    """Causal attention where each row puts ``sink_share`` on position 0."""
    rng = np.random.default_rng(seed)
    attn = np.zeros((heads, length, length))
    for i in range(length):
        rest = rng.uniform(size=(heads, i + 1))
        rest[:, 0] = 0.0
        rest = rest / np.maximum(rest.sum(axis=-1, keepdims=True), 1e-12)
        attn[:, i, : i + 1] = (1 - sink_share) * rest
        attn[:, i, 0] += sink_share
    return attn


class TestSinkMass:
    def test_detects_sink(self):
        attn = synthetic_attention(sink_share=0.5)
        mass = sink_mass([attn], sink_length=1)
        assert mass[0] == pytest.approx(0.5, abs=0.02)

    def test_no_sink_uniform(self):
        length = 64
        attn = np.zeros((1, length, length))
        for i in range(length):
            attn[0, i, : i + 1] = 1.0 / (i + 1)
        mass = sink_mass([attn], sink_length=4)
        # Uniform rows: sink share ≈ 4 / row length.
        assert mass[0] < 0.15

    def test_per_layer_output(self):
        attn = synthetic_attention()
        assert len(sink_mass([attn, attn])) == 2


class TestSparsity:
    def test_one_hot_is_sparse(self):
        length = 64
        attn = np.zeros((1, length, length))
        for i in range(length):
            attn[0, i, max(i - 1, 0)] = 1.0
        frac = attention_sparsity([attn], mass=0.9)
        assert frac[0] < 0.1

    def test_uniform_is_dense(self):
        length = 64
        attn = np.zeros((1, length, length))
        for i in range(length):
            attn[0, i, : i + 1] = 1.0 / (i + 1)
        frac = attention_sparsity([attn], mass=0.9)
        assert frac[0] > 0.8

    def test_mass_validation(self):
        with pytest.raises(ValueError):
            attention_sparsity([], mass=1.5)


class TestEntropy:
    def test_bounds(self):
        attn = synthetic_attention()
        values = row_entropy([attn])
        assert 0.0 <= values[0] <= 1.0

    def test_uniform_maximal(self):
        length = 64
        uniform = np.zeros((1, length, length))
        onehot = np.zeros((1, length, length))
        for i in range(length):
            uniform[0, i, : i + 1] = 1.0 / (i + 1)
            onehot[0, i, i] = 1.0
        assert row_entropy([uniform])[0] > 0.99
        assert row_entropy([onehot])[0] < 0.05

"""Eviction policies: registry, streaming, H2O, random, full."""

import numpy as np
import pytest

from repro.core.policies import (
    FullCachePolicy,
    H2OPolicy,
    RandomEvictionPolicy,
    StreamingLLMPolicy,
    available_policies,
    make_policy,
)
from repro.core.policies.base import GENERATION


def uniform_attn(heads, length):
    return np.full((heads, length), 1.0 / length)


class TestRegistry:
    def test_all_policies_registered(self):
        names = available_policies()
        for expected in ["full", "streaming", "h2o", "voting", "random"]:
            assert expected in names

    def test_make_policy(self):
        policy = make_policy("streaming", n_layers=2, n_sinks=3)
        assert isinstance(policy, StreamingLLMPolicy)
        assert policy.n_sinks == 3

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_policy("nonexistent", n_layers=1)

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            StreamingLLMPolicy(n_layers=0)


class TestFullCache:
    def test_never_selects(self):
        policy = FullCachePolicy(n_layers=1)
        with pytest.raises(RuntimeError):
            policy.select_victim(0, np.arange(5))


class TestStreaming:
    def test_evicts_oldest_non_sink(self):
        policy = StreamingLLMPolicy(n_layers=1, n_sinks=4)
        positions = np.arange(10)
        assert policy.select_victim(0, positions) == 4

    def test_respects_gaps(self):
        policy = StreamingLLMPolicy(n_layers=1, n_sinks=4)
        # sinks 0-3 retained, then survivors 7, 9, 10
        positions = np.array([0, 1, 2, 3, 7, 9, 10])
        assert policy.select_victim(0, positions) == 4  # position 7

    def test_all_sinks_fallback(self):
        policy = StreamingLLMPolicy(n_layers=1, n_sinks=8)
        assert policy.select_victim(0, np.arange(3)) == 2

    def test_empty_cache_rejected(self):
        policy = StreamingLLMPolicy(n_layers=1)
        with pytest.raises(ValueError):
            policy.select_victim(0, np.array([]))

    def test_steady_state_is_sinks_plus_recent(self):
        """Simulated long run: survivors = sinks + most recent window."""
        policy = StreamingLLMPolicy(n_layers=1, n_sinks=2)
        positions = list(range(8))
        for new_pos in range(8, 40):
            positions.append(new_pos)
            slot = policy.select_victim(0, np.array(positions))
            positions.pop(slot)
        assert positions[:2] == [0, 1]
        assert positions[2:] == list(range(34, 40))


class TestH2O:
    def test_accumulates_scores(self):
        policy = H2OPolicy(n_layers=1, recent_window=0)
        attn = np.array([[0.5, 0.3, 0.2], [0.1, 0.8, 0.1]])
        policy.observe(0, attn, np.arange(3), GENERATION)
        np.testing.assert_allclose(policy.accumulated(0), [0.3, 0.55, 0.15])

    def test_evicts_minimum(self):
        policy = H2OPolicy(n_layers=1, recent_window=0)
        policy.observe(0, np.array([[0.2, 0.1, 0.7]]), np.arange(3), GENERATION)
        assert policy.select_victim(0, np.arange(3)) == 1

    def test_recent_window_protected(self):
        policy = H2OPolicy(n_layers=1, recent_window=2)
        policy.observe(0, np.array([[0.5, 0.3, 0.1, 0.1]]), np.arange(4), GENERATION)
        # Minimum is slot 2 or 3 but both are protected; next-lowest is 1.
        assert policy.select_victim(0, np.arange(4)) == 1

    def test_on_evict_compacts(self):
        policy = H2OPolicy(n_layers=1, recent_window=0)
        policy.observe(0, np.array([[0.2, 0.3, 0.5]]), np.arange(3), GENERATION)
        policy.on_evict(0, 0)
        np.testing.assert_allclose(policy.accumulated(0), [0.3, 0.5])

    def test_growing_rows(self):
        policy = H2OPolicy(n_layers=1, recent_window=0)
        policy.observe(0, uniform_attn(2, 2), np.arange(2), GENERATION)
        policy.observe(0, uniform_attn(2, 4), np.arange(4), GENERATION)
        assert policy.accumulated(0).shape == (4,)

    def test_sum_reduction(self):
        policy = H2OPolicy(n_layers=1, head_reduction="sum", recent_window=0)
        policy.observe(0, np.array([[0.5, 0.5], [0.5, 0.5]]), np.arange(2), GENERATION)
        np.testing.assert_allclose(policy.accumulated(0), [1.0, 1.0])

    def test_reset(self):
        policy = H2OPolicy(n_layers=1)
        policy.observe(0, uniform_attn(1, 3), np.arange(3), GENERATION)
        policy.reset()
        assert policy.accumulated(0).shape == (0,)

    def test_item_count_bias_demonstrated(self):
        """Earlier positions accumulate more mass — the paper's critique ①.

        With perfectly uniform attention, pure accumulation always evicts
        the newest position even though nothing distinguishes it.
        """
        policy = H2OPolicy(n_layers=1, recent_window=0)
        positions = np.arange(6)
        for step in range(1, 7):
            policy.observe(0, uniform_attn(1, step), positions[:step], GENERATION)
        scores = policy.accumulated(0)
        assert np.all(np.diff(scores) < 0)  # strictly decreasing with position
        assert policy.select_victim(0, positions) == 5  # evicts the newest


class TestRandom:
    def test_respects_protected_prefix(self):
        policy = RandomEvictionPolicy(n_layers=1, protected_prefix=5, seed=1)
        for _ in range(50):
            slot = policy.select_victim(0, np.arange(10))
            assert slot >= 5

    def test_reset_restores_stream(self):
        policy = RandomEvictionPolicy(n_layers=1, seed=3)
        first = [policy.select_victim(0, np.arange(10)) for _ in range(5)]
        policy.reset()
        second = [policy.select_victim(0, np.arange(10)) for _ in range(5)]
        assert first == second

    def test_all_protected_fallback(self):
        policy = RandomEvictionPolicy(n_layers=1, protected_prefix=99)
        assert policy.select_victim(0, np.arange(4)) == 3

"""End-to-end integration: the full pipeline on the cached micro model.

Exercises the complete reproduction stack in one place: corpus →
tokenizer → trained model (zoo cache) → cached inference → every eviction
policy under budget pressure → co-simulation on the accelerator — and
checks cross-cutting invariants none of the unit tests can see.
"""

import numpy as np
import pytest

from repro.accel.config import veda_config
from repro.core import (
    FullCachePolicy,
    GenerationEngine,
    available_policies,
    make_policy,
)
from repro.cosim import CoSimulator
from repro.zoo import default_corpus, get_pretrained

POLICY_KWARGS = {
    "voting": {"reserved_length": 4},
    "h2o": {"recent_window": 4},
    "streaming": {"n_sinks": 2},
    "tova": {"protected_prefix": 2, "recent_window": 4},
    "scissorhands": {"protected_prefix": 2, "recent_window": 4},
    "decayed_h2o": {"protected_prefix": 2, "recent_window": 4},
    "random": {"protected_prefix": 2},
    "full": {},
}


@pytest.fixture(scope="module")
def micro():
    model, tokenizer, metadata = get_pretrained("micro")
    return model, tokenizer, metadata


@pytest.fixture(scope="module")
def eval_tokens(micro):
    _, tokenizer, _ = micro
    _, documents = default_corpus("eval")
    return tokenizer.encode(documents[0])[:160]


class TestTrainedModel:
    def test_training_actually_learned(self, micro):
        _, _, metadata = micro
        assert metadata["final_loss"] < 0.5 * metadata["initial_loss"]

    def test_generates_grammatical_tokens(self, micro):
        model, tokenizer, _ = micro
        engine = GenerationEngine(model, FullCachePolicy(model.config.n_layers))
        prompt = tokenizer.encode("<bos>")
        result = engine.generate(prompt, max_new_tokens=20)
        text = tokenizer.decode(result.tokens)
        # A trained model emits words, not <unk> soup.
        assert "<unk>" not in text
        assert "." in text  # sentence structure learned


class TestAllPoliciesUnderPressure:
    @pytest.mark.parametrize(
        "name", [n for n in POLICY_KWARGS if n != "full"]
    )
    def test_policy_full_run(self, micro, eval_tokens, name):
        """Every registered policy completes a budgeted PPL evaluation
        with a bounded cache and finite NLL."""
        model, _, _ = micro
        policy = make_policy(
            name, n_layers=model.config.n_layers, **POLICY_KWARGS[name]
        )
        engine = GenerationEngine(model, policy, budget=24)
        result = engine.perplexity(eval_tokens, prefill_length=32)
        assert np.isfinite(result.mean_nll)
        assert result.perplexity > 1.0

    def test_registry_covers_all_policies(self):
        assert set(POLICY_KWARGS) == set(available_policies())

    def test_no_policy_catastrophic(self, micro, eval_tokens):
        """No policy degrades the micro model beyond a sane factor of the
        full-cache reference.  (Policy *ordering* is a property of the
        trained small model and is asserted in the policy-zoo benchmark;
        at micro scale single-window noise dominates the ordering.)"""
        model, _, _ = micro
        full = GenerationEngine(
            model, FullCachePolicy(model.config.n_layers)
        ).perplexity(eval_tokens, prefill_length=32)
        for name in ("voting", "h2o", "streaming", "random"):
            policy = make_policy(
                name, n_layers=model.config.n_layers, **POLICY_KWARGS[name]
            )
            engine = GenerationEngine(model, policy, budget=24)
            result = engine.perplexity(eval_tokens, prefill_length=32)
            assert result.perplexity < 4.0 * full.perplexity, name


class TestAlgorithmHardwareLoop:
    def test_cosim_quality_latency_tradeoff(self, micro, eval_tokens):
        """Smaller budgets cost quality but save cycles — both visible
        from one coupled run."""
        model, _, _ = micro
        n_layers = model.config.n_layers
        prompt = eval_tokens[:64]

        cycles, ppl = {}, {}
        for budget in (16, 48):
            policy = make_policy("voting", n_layers=n_layers, reserved_length=4)
            engine = GenerationEngine(model, policy, budget=budget)
            cosim = CoSimulator(engine, hw=veda_config())
            run = cosim.run(prompt, 24)
            cycles[budget] = run.total_decode_cycles

            policy = make_policy("voting", n_layers=n_layers, reserved_length=4)
            engine = GenerationEngine(model, policy, budget=budget)
            ppl[budget] = engine.perplexity(
                eval_tokens, prefill_length=32
            ).perplexity
        assert cycles[16] < cycles[48]
        assert ppl[16] >= ppl[48] * 0.98  # tighter budget never clearly better

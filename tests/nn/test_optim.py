"""Optimizers, schedules, and gradient clipping."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm, constant_schedule, cosine_schedule


def quadratic_loss(param):
    """L = sum((p - 3)^2); gradient 2(p-3)."""
    param.grad = 2.0 * (param.data - 3.0)
    return float(np.sum((param.data - 3.0) ** 2))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(4))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_loss(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        p_plain, p_mom = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        plain, mom = SGD([p_plain], lr=0.01), SGD([p_mom], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_loss(p_plain)
            plain.step()
            quadratic_loss(p_mom)
            mom.step()
        assert abs(p_mom.data[0] - 3.0) < abs(p_plain.data[0] - 3.0)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad set: no movement
        np.testing.assert_array_equal(p.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_loss(p)
            opt.step()
        np.testing.assert_allclose(p.data, 3.0, atol=1e-3)

    def test_first_step_is_lr_sized(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([5.0])
        opt.step()
        # Bias correction makes the first step ≈ lr regardless of grad scale.
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.full(2, 10.0))
        opt = Adam([p], lr=0.01, weight_decay=0.1)
        p.grad = np.zeros(2)
        opt.step()
        assert np.all(np.abs(p.data) < 10.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_global_norm_across_params(self):
        p1, p2 = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        p1.grad, p2.grad = np.array([3.0]), np.array([4.0])
        clip_grad_norm([p1, p2], max_norm=1.0)
        total = np.sqrt(p1.grad[0] ** 2 + p2.grad[0] ** 2)
        assert total == pytest.approx(1.0)


class TestSchedules:
    def test_cosine_warmup_rises(self):
        sched = cosine_schedule(1.0, warmup_steps=10, total_steps=100)
        values = [sched(i) for i in range(10)]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_cosine_decays_to_min(self):
        sched = cosine_schedule(1.0, warmup_steps=0, total_steps=100, min_lr_ratio=0.1)
        assert sched(100) == pytest.approx(0.1)
        assert sched(50) < sched(1)

    def test_cosine_clamps_beyond_horizon(self):
        sched = cosine_schedule(1.0, warmup_steps=0, total_steps=10)
        assert sched(1000) == pytest.approx(sched(10))

    def test_constant(self):
        sched = constant_schedule(0.5)
        assert sched(0) == sched(10**6) == 0.5

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            cosine_schedule(1.0, warmup_steps=-1, total_steps=10)

"""Gradient checks and semantics of the autograd Tensor."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar-valued fn at x."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, x, atol=1e-5):
    t = Tensor(x, requires_grad=True)
    out = op(t)
    out.sum().backward()
    expected = numerical_grad(lambda v: float(op(Tensor(v)).sum().numpy()), x)
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwiseGrads:
    def test_add(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.ones((3, 4)))

    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul(self, rng):
        x = rng.normal(size=(2, 5))
        check_unary(lambda t: t * t, x)

    def test_div(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.uniform(1.0, 2.0, size=(4,)), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.numpy())
        np.testing.assert_allclose(b.grad, -a.numpy() / b.numpy() ** 2)

    def test_pow(self, rng):
        x = rng.uniform(0.5, 2.0, size=(3, 3))
        check_unary(lambda t: t**3, x)

    def test_neg_sub(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))
        np.testing.assert_allclose(b.grad, -np.ones(4))

    def test_rsub_rdiv(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        out = 1.0 - a
        np.testing.assert_allclose(out.numpy(), [-1.0, -3.0])
        out2 = 8.0 / a
        np.testing.assert_allclose(out2.numpy(), [4.0, 2.0])


class TestTranscendentalGrads:
    def test_exp(self, rng):
        check_unary(lambda t: t.exp(), rng.normal(size=(3, 2)))

    def test_log(self, rng):
        check_unary(lambda t: t.log(), rng.uniform(0.5, 3.0, size=(4,)))

    def test_tanh(self, rng):
        check_unary(lambda t: t.tanh(), rng.normal(size=(5,)))

    def test_sqrt(self, rng):
        check_unary(lambda t: t.sqrt(), rng.uniform(0.5, 4.0, size=(3,)))

    def test_sigmoid(self, rng):
        check_unary(lambda t: t.sigmoid(), rng.normal(size=(6,)))


class TestReductions:
    def test_sum_axis(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        t.sum(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3, 4)))

    def test_sum_keepdims(self, rng):
        t = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean(self, rng):
        t = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((4, 5), 1.0 / 20))

    def test_max_grad_flows_to_argmax(self):
        t = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self, rng):
        t = Tensor([[1.0, 2.0], [4.0, 3.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 1], [1, 0]])

    def test_max_ties_split(self):
        t = Tensor([2.0, 2.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])


class TestMatmulAndShape:
    def test_matmul_grad(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b.numpy().T)
        np.testing.assert_allclose(b.grad, a.numpy().T @ np.ones((3, 2)))

    def test_batched_matmul(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_matmul_broadcast_weights(self, rng):
        # (B, L, D) @ (D, V): weight grad must be unbroadcast-summed.
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (x @ w).sum().backward()
        assert w.grad.shape == (4, 5)
        expected = np.einsum("bld,blv->dv", x.numpy(), np.ones((2, 3, 5)))
        np.testing.assert_allclose(w.grad, expected)

    def test_reshape_transpose(self, rng):
        t = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        out = t.reshape(2, 3, 2).transpose(1, 0, 2)
        assert out.shape == (3, 2, 2)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 6)))

    def test_getitem_gather(self, rng):
        t = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2])
        out = t[idx]
        assert out.shape == (3, 3)
        out.sum().backward()
        expected = np.zeros((5, 3))
        expected[0] = 1
        expected[2] = 2  # row 2 gathered twice: gradients accumulate
        np.testing.assert_allclose(t.grad, expected)

    def test_concatenate(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_masked_fill(self):
        t = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        mask = np.array([False, True, False])
        out = t.masked_fill(mask, -99.0)
        np.testing.assert_allclose(out.numpy(), [1.0, -99.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0, 0.0, 1.0])


class TestGraphMechanics:
    def test_grad_accumulates_over_uses(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3.0 + t * 4.0).backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_seed_shape_check(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward(grad=np.ones(3))

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._backward is None

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        (t * d).backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_deep_chain_no_recursion_error(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])

    def test_diamond_graph(self):
        t = Tensor([3.0], requires_grad=True)
        a = t * 2.0
        out = a * a
        out.backward()
        np.testing.assert_allclose(t.grad, [24.0])  # d(4t^2)/dt = 8t

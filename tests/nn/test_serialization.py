"""Checkpoint save/load."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Module
from repro.nn.serialization import load_checkpoint, save_checkpoint


class _Small(Module):
    def __init__(self, seed=0):
        rng = np.random.default_rng(seed)
        self.a = Linear(3, 3, rng=rng)
        self.b = Linear(3, 2, rng=rng)

    def forward(self, x):
        return self.b(self.a(x))


def test_roundtrip(tmp_path):
    model = _Small(seed=5)
    path = tmp_path / "model.npz"
    save_checkpoint(path, model, metadata={"step": 42, "name": "test"})
    fresh = _Small(seed=99)
    state, metadata = load_checkpoint(path, module=fresh)
    assert metadata == {"step": 42, "name": "test"}
    for (_, p1), (_, p2) in zip(model.named_parameters(), fresh.named_parameters()):
        np.testing.assert_array_equal(p1.data, p2.data)


def test_load_without_module(tmp_path):
    model = _Small()
    path = tmp_path / "m.npz"
    save_checkpoint(path, model)
    state, metadata = load_checkpoint(path)
    assert metadata is None
    assert set(state) == set(model.state_dict())


def test_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "m.npz"
    save_checkpoint(path, _Small())
    assert path.exists()


def test_metadata_roundtrip_types(tmp_path):
    path = tmp_path / "m.npz"
    meta = {"f": 1.5, "i": 3, "list": [1, 2], "nested": {"x": "y"}}
    save_checkpoint(path, _Small(), metadata=meta)
    _, loaded = load_checkpoint(path)
    assert loaded == meta

"""Module system and layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    RMSNorm,
)
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(8, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 4, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_bias_applied(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer.bias.data[:] = [1.0, -1.0]
        out = layer(Tensor(np.zeros((1, 2))))
        np.testing.assert_allclose(out.numpy(), [[1.0, -1.0]])

    def test_xavier_scale(self):
        layer = Linear(100, 100, rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.numpy()).max() <= limit


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(12, 6, rng=rng)
        out = emb(np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 6)


class TestNormLayers:
    def test_rmsnorm_params(self):
        norm = RMSNorm(8)
        assert len(norm.parameters()) == 1

    def test_layernorm_params(self):
        norm = LayerNorm(8)
        assert len(norm.parameters()) == 2

    def test_rmsnorm_forward(self, rng):
        norm = RMSNorm(16)
        out = norm(Tensor(rng.normal(size=(4, 16)))).numpy()
        np.testing.assert_allclose(np.sqrt(np.mean(out**2, axis=-1)), 1.0, atol=1e-3)


class _Nested(Module):
    def __init__(self):
        self.inner = Linear(2, 2)
        self.scale = Parameter(np.ones(1))
        self.blocks = ModuleList([Linear(2, 2), Linear(2, 2)])

    def forward(self, x):
        return self.blocks[1](self.blocks[0](self.inner(x))) * self.scale


class TestModuleSystem:
    def test_named_parameters_recursive(self):
        model = _Nested()
        names = dict(model.named_parameters())
        assert "inner.weight" in names
        assert "scale" in names
        assert "blocks.items.0.weight" in names
        assert "blocks.items.1.bias" in names

    def test_num_parameters(self):
        model = _Nested()
        assert model.num_parameters() == sum(p.size for p in model.parameters())

    def test_zero_grad(self):
        model = _Nested()
        out = model(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_state_dict_roundtrip(self, rng):
        m1, m2 = _Nested(), _Nested()
        for p in m1.parameters():
            p.data = rng.normal(size=p.data.shape)
        m2.load_state_dict(m1.state_dict())
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_load_state_dict_missing_key(self):
        model = _Nested()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        model = _Nested()
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_module_list_len_iter(self):
        ml = ModuleList([Linear(1, 1), Linear(1, 1)])
        assert len(ml) == 2
        assert len(list(iter(ml))) == 2
        ml.append(Linear(1, 1))
        assert len(ml) == 3

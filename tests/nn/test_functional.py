"""Functional ops: forward values and gradients."""

import numpy as np
import pytest
from scipy import special

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestActivations:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.numpy(), [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        t = Tensor([-1.0, 2.0], requires_grad=True)
        F.relu(t).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0])

    def test_gelu_matches_scipy(self, rng):
        x = rng.normal(size=100)
        ours = F.gelu(Tensor(x)).numpy()
        exact = x * 0.5 * (1.0 + special.erf(x / np.sqrt(2.0)))
        # tanh approximation: accurate to ~1e-3
        np.testing.assert_allclose(ours, exact, atol=5e-3)

    def test_silu_values(self, rng):
        x = rng.normal(size=50)
        ours = F.silu(Tensor(x)).numpy()
        np.testing.assert_allclose(ours, x / (1.0 + np.exp(-x)), atol=1e-12)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7)) * 5
        out = F.softmax(Tensor(x)).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_matches_scipy(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            F.softmax(Tensor(x)).numpy(), special.softmax(x, axis=-1), atol=1e-12
        )

    def test_stable_under_large_inputs(self):
        out = F.softmax(Tensor([1000.0, 1000.0])).numpy()
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_log_softmax(self, rng):
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).numpy(),
            special.log_softmax(x, axis=-1),
            atol=1e-12,
        )

    def test_softmax_grad(self, rng):
        x = rng.normal(size=(5,))
        t = Tensor(x, requires_grad=True)
        # d/dx of softmax picked at index 2
        F.softmax(t)[2].backward()
        s = special.softmax(x)
        expected = s[2] * (np.eye(5)[2] - s)
        np.testing.assert_allclose(t.grad, expected, atol=1e-10)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(6, 10))
        targets = rng.integers(0, 10, size=6)
        loss = F.cross_entropy(Tensor(logits), targets)
        manual = -np.mean(
            special.log_softmax(logits, axis=-1)[np.arange(6), targets]
        )
        assert loss.item() == pytest.approx(manual, abs=1e-12)

    def test_uniform_logits_give_log_vocab(self):
        logits = Tensor(np.zeros((4, 16)))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(16.0))

    def test_ignore_index(self, rng):
        logits = rng.normal(size=(4, 5))
        targets = np.array([1, 2, -1, 3])
        loss = F.cross_entropy(Tensor(logits), targets, ignore_index=-1)
        kept = F.cross_entropy(Tensor(logits[[0, 1, 3]]), targets[[0, 1, 3]])
        assert loss.item() == pytest.approx(kept.item())

    def test_all_ignored_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([-1, -1]), ignore_index=-1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))

    def test_gradient_direction(self, rng):
        # Gradient should reduce loss when followed.
        logits = Tensor(rng.normal(size=(3, 8)), requires_grad=True)
        targets = np.array([0, 1, 2])
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        stepped = logits.numpy() - 0.5 * logits.grad
        new_loss = F.cross_entropy(Tensor(stepped), targets)
        assert new_loss.item() < loss.item()


class TestNorms:
    def test_layernorm_zero_mean_unit_var(self, rng):
        x = rng.normal(size=(3, 16)) * 4 + 2
        out = F.layernorm(Tensor(x), Tensor(np.ones(16)), Tensor(np.zeros(16))).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_rmsnorm_scale_invariance_shape(self, rng):
        x = rng.normal(size=(2, 8))
        out = F.rmsnorm(Tensor(x), Tensor(np.ones(8))).numpy()
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_rmsnorm_weight_applies(self, rng):
        x = rng.normal(size=(8,))
        w = np.full(8, 2.0)
        out = F.rmsnorm(Tensor(x), Tensor(w)).numpy()
        base = F.rmsnorm(Tensor(x), Tensor(np.ones(8))).numpy()
        np.testing.assert_allclose(out, 2.0 * base)


class TestEmbeddingDropoutMask:
    def test_embedding_lookup(self, rng):
        w = Tensor(rng.normal(size=(10, 4)), requires_grad=True)
        out = F.embedding(w, np.array([1, 1, 3]))
        np.testing.assert_allclose(out.numpy()[0], w.numpy()[1])
        out.sum().backward()
        assert w.grad[1].sum() == pytest.approx(8.0)  # row 1 used twice

    def test_embedding_range_check(self):
        w = Tensor(np.zeros((4, 2)))
        with pytest.raises(IndexError):
            F.embedding(w, np.array([4]))

    def test_dropout_off_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_dropout_scales_survivors(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True).numpy()
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_causal_mask(self):
        mask = F.causal_mask(3)
        expected = np.array(
            [[False, True, True], [False, False, True], [False, False, False]]
        )
        np.testing.assert_array_equal(mask, expected)

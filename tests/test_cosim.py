"""Algorithm/hardware co-simulation."""

import numpy as np
import pytest

from repro.accel.config import veda_config
from repro.config import llama2_7b_shapes
from repro.core import FullCachePolicy, GenerationEngine, VotingPolicy
from repro.cosim import CoSimulator


@pytest.fixture()
def prompt(rng):
    return rng.integers(0, 64, size=24)


class TestCoSim:
    def test_eviction_reduces_cycles(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        full = CoSimulator(
            GenerationEngine(tiny_inference, FullCachePolicy(n_layers))
        ).run(prompt, 8)
        capped = CoSimulator(
            GenerationEngine(
                tiny_inference, VotingPolicy(n_layers, reserved_length=2), budget=12
            )
        ).run(prompt, 8)
        assert capped.mean_attention_cycles < full.mean_attention_cycles
        assert capped.total_decode_cycles < full.total_decode_cycles
        assert capped.num_evictions > 0

    def test_steps_recorded(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        result = CoSimulator(
            GenerationEngine(tiny_inference, FullCachePolicy(n_layers))
        ).run(prompt, 5)
        assert len(result.attention_cycles_per_step) == 5
        assert len(result.tokens) == 5

    def test_measured_trajectory_matches_idealized_at_steady_state(
        self, tiny_inference, prompt
    ):
        """With shrink-to-budget eviction the measured cache lengths equal
        the simulator's idealized min(P+i, S+1) trajectory."""
        n_layers = tiny_inference.config.n_layers
        budget = 12
        cosim = CoSimulator(
            GenerationEngine(
                tiny_inference, VotingPolicy(n_layers, reserved_length=2),
                budget=budget,
            )
        )
        result = cosim.run(prompt, 6)
        idealized = [
            cosim.simulator.cache_length_at(len(prompt), step, budget)
            for step in range(1, 7)
        ]
        measured = [previous + 1 for previous in result.cache_lengths[:-1]]
        assert measured == idealized

    def test_slow_eviction_costs_more(self, tiny_inference, prompt):
        """One-eviction-per-step shrinks slowly, so early steps see a
        bigger cache and cost more cycles than shrink-to-target."""
        n_layers = tiny_inference.config.n_layers
        fast = CoSimulator(
            GenerationEngine(
                tiny_inference, VotingPolicy(n_layers, reserved_length=2), budget=8
            )
        ).run(prompt, 6)
        slow = CoSimulator(
            GenerationEngine(
                tiny_inference,
                VotingPolicy(n_layers, reserved_length=2),
                budget=8,
                evictions_per_step=1,
            )
        ).run(prompt, 6)
        assert slow.mean_attention_cycles > fast.mean_attention_cycles

    def test_hw_model_substitution(self, tiny_inference, prompt):
        """Llama-7B shapes can price a small-model cache trajectory."""
        n_layers = tiny_inference.config.n_layers
        cosim = CoSimulator(
            GenerationEngine(tiny_inference, FullCachePolicy(n_layers)),
            hw=veda_config(),
            hw_model=llama2_7b_shapes(),
        )
        result = cosim.run(prompt, 3)
        # 7B-scale decode costs tens of millions of cycles per step.
        assert result.total_decode_cycles > 1e7

"""Algorithm/hardware co-simulation."""

import numpy as np
import pytest

from repro.accel.config import veda_config
from repro.config import llama2_7b_shapes
from repro.core import FullCachePolicy, GenerationEngine, VotingPolicy
from repro.cosim import CoSimulator


@pytest.fixture()
def prompt(rng):
    return rng.integers(0, 64, size=24)


class TestCoSim:
    def test_eviction_reduces_cycles(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        full = CoSimulator(
            GenerationEngine(tiny_inference, FullCachePolicy(n_layers))
        ).run(prompt, 8)
        capped = CoSimulator(
            GenerationEngine(
                tiny_inference, VotingPolicy(n_layers, reserved_length=2), budget=12
            )
        ).run(prompt, 8)
        assert capped.mean_attention_cycles < full.mean_attention_cycles
        assert capped.total_decode_cycles < full.total_decode_cycles
        assert capped.num_evictions > 0

    def test_steps_recorded(self, tiny_inference, prompt):
        n_layers = tiny_inference.config.n_layers
        result = CoSimulator(
            GenerationEngine(tiny_inference, FullCachePolicy(n_layers))
        ).run(prompt, 5)
        assert len(result.attention_cycles_per_step) == 5
        assert len(result.tokens) == 5

    def test_measured_trajectory_matches_idealized_at_steady_state(
        self, tiny_inference, prompt
    ):
        """With shrink-to-budget eviction the measured cache lengths equal
        the simulator's idealized min(P+i, S+1) trajectory."""
        n_layers = tiny_inference.config.n_layers
        budget = 12
        cosim = CoSimulator(
            GenerationEngine(
                tiny_inference, VotingPolicy(n_layers, reserved_length=2),
                budget=budget,
            )
        )
        result = cosim.run(prompt, 6)
        idealized = [
            cosim.simulator.cache_length_at(len(prompt), step, budget)
            for step in range(1, 7)
        ]
        measured = [previous + 1 for previous in result.cache_lengths[:-1]]
        assert measured == idealized

    def test_slow_eviction_costs_more(self, tiny_inference, prompt):
        """One-eviction-per-step shrinks slowly, so early steps see a
        bigger cache and cost more cycles than shrink-to-target."""
        n_layers = tiny_inference.config.n_layers
        fast = CoSimulator(
            GenerationEngine(
                tiny_inference, VotingPolicy(n_layers, reserved_length=2), budget=8
            )
        ).run(prompt, 6)
        slow = CoSimulator(
            GenerationEngine(
                tiny_inference,
                VotingPolicy(n_layers, reserved_length=2),
                budget=8,
                evictions_per_step=1,
            )
        ).run(prompt, 6)
        assert slow.mean_attention_cycles > fast.mean_attention_cycles

    def test_hw_model_substitution(self, tiny_inference, prompt):
        """Llama-7B shapes can price a small-model cache trajectory."""
        n_layers = tiny_inference.config.n_layers
        cosim = CoSimulator(
            GenerationEngine(tiny_inference, FullCachePolicy(n_layers)),
            hw=veda_config(),
            hw_model=llama2_7b_shapes(),
        )
        result = cosim.run(prompt, 3)
        # 7B-scale decode costs tens of millions of cycles per step.
        assert result.total_decode_cycles > 1e7


class TestMeanAttentionCycles:
    """Monotonicity of the priced attention cost with sequence length."""

    def test_monotone_in_prompt_length_without_eviction(
        self, tiny_inference, rng
    ):
        """Longer prompts mean a larger cache at every decode step, so
        the mean per-step attention cycle cost must be non-decreasing —
        and strictly increasing once the length difference is real."""
        n_layers = tiny_inference.config.n_layers
        means = []
        for prompt_len in (6, 12, 24, 48):
            cosim = CoSimulator(
                GenerationEngine(tiny_inference, FullCachePolicy(n_layers))
            )
            result = cosim.run(rng.integers(0, 64, size=prompt_len), 5)
            means.append(result.mean_attention_cycles)
        assert means == sorted(means)
        assert means[0] < means[-1]

    def test_monotone_in_generation_length_without_eviction(
        self, tiny_inference, prompt
    ):
        """Without eviction the cache grows every step, so generating
        longer raises the mean priced cost per step."""
        n_layers = tiny_inference.config.n_layers
        means = []
        for max_new in (2, 6, 12):
            cosim = CoSimulator(
                GenerationEngine(tiny_inference, FullCachePolicy(n_layers))
            )
            means.append(cosim.run(prompt, max_new).mean_attention_cycles)
        assert means == sorted(means)
        assert means[0] < means[-1]

    def test_budget_flattens_prompt_length_dependence(self, tiny_inference, rng):
        """With eviction to a fixed budget, the steady-state cost is set
        by the budget, not the prompt: doubling the prompt must not
        double the mean attention cycles (compare the full-cache gap)."""
        n_layers = tiny_inference.config.n_layers

        def mean_cycles(policy_budget, prompt_len):
            engine = GenerationEngine(
                tiny_inference,
                VotingPolicy(n_layers, reserved_length=2),
                budget=policy_budget,
            )
            return (
                CoSimulator(engine)
                .run(rng.integers(0, 64, size=prompt_len), 6)
                .mean_attention_cycles
            )

        short_run = mean_cycles(10, 24)
        long_run = mean_cycles(10, 48)
        # Budgeted runs decode against budget+1 entries either way.
        assert long_run == pytest.approx(short_run)

    def test_mean_requires_recorded_steps(self, tiny_inference, prompt):
        from repro.cosim import CoSimResult

        empty = CoSimResult(
            tokens=[],
            cache_lengths=[4],
            num_evictions=0,
            attention_cycles_per_step=[],
            total_decode_cycles=0.0,
        )
        with pytest.raises(ValueError):
            empty.mean_attention_cycles

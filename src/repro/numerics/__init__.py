"""Numeric substrates shared by the algorithm and hardware models.

This package hosts the arithmetic building blocks that the VEDA paper's
hardware assumes:

- :mod:`repro.numerics.fp16` — IEEE binary16 quantization helpers (VEDA's
  default datapath format).
- :mod:`repro.numerics.fixed_point` — saturating unsigned integer counters
  (the voting engine stores vote counts as UINT16 and eviction indices as
  UINT12).
- :mod:`repro.numerics.online` — streaming (element-serial) reductions:
  the online softmax normalizer of Milakov & Gimelshein and Welford's
  running mean/variance, which are exactly what the SFU's reduction unit
  computes one element at a time.
"""

from repro.numerics.fixed_point import SaturatingCounter, clamp_unsigned
from repro.numerics.fp16 import (
    FP16_MAX,
    fp16_quantize,
    fp16_relative_error,
    is_fp16_representable,
)
from repro.numerics.error_analysis import (
    gemv_error_sweep,
    model_logit_error,
    quantize_state_dict,
    softmax_error,
)
from repro.numerics.online import (
    OnlineSoftmaxNormalizer,
    WelfordAccumulator,
    online_softmax,
    stable_softmax,
    streaming_mean_std,
)

__all__ = [
    "FP16_MAX",
    "fp16_quantize",
    "fp16_relative_error",
    "is_fp16_representable",
    "SaturatingCounter",
    "clamp_unsigned",
    "OnlineSoftmaxNormalizer",
    "WelfordAccumulator",
    "online_softmax",
    "stable_softmax",
    "streaming_mean_std",
    "gemv_error_sweep",
    "softmax_error",
    "quantize_state_dict",
    "model_logit_error",
]

"""FP16 datapath error analysis.

VEDA computes in FP16 (Sec. VI).  This module quantifies what that costs
at the three levels the hardware exercises:

- :func:`gemv_error_sweep` — inner/outer-product GEMV error vs reduction
  length on the bit-true PE array (tree summation bounds error growth to
  ~log₂(k) rounding steps, vs k for sequential accumulation);
- :func:`softmax_error` — streaming FP16 softmax vs float64;
- :func:`quantize_state_dict` / :func:`model_logit_error` — end-to-end
  effect of FP16 weights+activations on the tiny LM's logits and
  next-token agreement.
"""

from __future__ import annotations

import numpy as np

from repro.accel.pe_array import PEArray
from repro.accel.sfu import SoftmaxUnit
from repro.numerics.fp16 import fp16_quantize
from repro.numerics.online import stable_softmax

__all__ = [
    "gemv_error_sweep",
    "softmax_error",
    "quantize_state_dict",
    "model_logit_error",
]


def gemv_error_sweep(k_values=(16, 64, 256, 1024), n=32, seed=0):
    """Relative FP16 GEMV error vs reduction length for both modes.

    Returns rows of ``{k, inner_rel_error, outer_rel_error}`` where the
    error is ‖fp16 − exact‖∞ / ‖exact‖∞ over a random GEMV.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for k in k_values:
        vector = rng.normal(size=k) / np.sqrt(k)
        matrix = rng.normal(size=(k, n))
        exact = vector @ matrix
        scale = np.max(np.abs(exact)) or 1.0
        array = PEArray(width=128, quantize=True)
        inner = array.inner_product(vector, matrix)
        outer = array.outer_product(vector, matrix)
        rows.append(
            {
                "k": k,
                "inner_rel_error": float(np.max(np.abs(inner - exact)) / scale),
                "outer_rel_error": float(np.max(np.abs(outer - exact)) / scale),
            }
        )
    return rows


def softmax_error(lengths=(16, 128, 1024), seed=0):
    """Max absolute error of the FP16 streaming softmax vs float64."""
    rng = np.random.default_rng(seed)
    rows = []
    for length in lengths:
        scores = rng.normal(size=length) * 3.0
        exact = stable_softmax(scores)
        unit = SoftmaxUnit(quantize=True)
        approx = unit(scores)
        rows.append(
            {"length": length, "max_abs_error": float(np.max(np.abs(approx - exact)))}
        )
    return rows


def quantize_state_dict(state):
    """Round every parameter to FP16 (weights as stored in VEDA's HBM)."""
    return {name: fp16_quantize(np.asarray(value)) for name, value in state.items()}


def model_logit_error(model_module, tokens):
    """Compare float64 logits against FP16-weight logits for one batch.

    Returns ``(max_abs_logit_error, argmax_agreement_fraction)``.  The
    forward pass itself stays float64 — this isolates *storage*
    quantization, the dominant effect for inference accelerators.
    """
    from repro.models.inference import CachedTransformer

    tokens = np.asarray(tokens)
    exact = CachedTransformer(model_module.config, model_module.state_dict())
    quantized = CachedTransformer(
        model_module.config, quantize_state_dict(model_module.state_dict())
    )

    cache_a, cache_b = exact.new_cache(), quantized.new_cache()
    out_a = exact.prefill(tokens, cache_a)
    out_b = quantized.prefill(tokens, cache_b)
    max_error = float(np.max(np.abs(out_a.logits - out_b.logits)))
    agreement = float(np.argmax(out_a.logits) == np.argmax(out_b.logits))
    return max_error, agreement

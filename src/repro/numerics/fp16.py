"""IEEE binary16 (FP16) quantization helpers.

VEDA's datapath uses FP16 as the default arithmetic format (Sec. VI,
"Experiment Setup").  The cycle-level simulator in :mod:`repro.accel` has a
*functional* mode that rounds every intermediate value to FP16 exactly the
way a 16-bit datapath would, so the bit-true hardware models in
:mod:`repro.accel.pe_array` and :mod:`repro.accel.voting_engine` build on
the helpers here.

Only plain numpy is used; ``np.float16`` implements IEEE 754 binary16 with
round-to-nearest-even, which matches the default rounding mode of the
synthesized FP16 units the paper assumes.
"""

from __future__ import annotations

import numpy as np

#: Largest finite binary16 value (same as ``np.finfo(np.float16).max``).
FP16_MAX = 65504.0

#: Smallest positive *normal* binary16 value.
FP16_MIN_NORMAL = 2.0 ** -14

#: Machine epsilon of binary16.
FP16_EPS = 2.0 ** -10


def fp16_quantize(values, saturate=True):
    """Round ``values`` to binary16 and return them as float64.

    Parameters
    ----------
    values:
        Scalar or array-like of real numbers.
    saturate:
        When True (hardware behaviour), values beyond ``±FP16_MAX`` clamp to
        the largest finite magnitude instead of becoming ``inf``.  When
        False, IEEE overflow-to-infinity semantics apply.

    Returns
    -------
    numpy.ndarray or float
        The quantized values widened back to float64 so downstream numpy
        arithmetic keeps full precision *between* rounding points, exactly
        as a hardware pipeline with FP16 registers and wider internal
        accumulation would behave.
    """
    arr = np.asarray(values, dtype=np.float64)
    if saturate:
        arr = np.clip(arr, -FP16_MAX, FP16_MAX)
    with np.errstate(over="ignore"):
        quantized = arr.astype(np.float16).astype(np.float64)
    if np.isscalar(values) or np.ndim(values) == 0:
        return float(quantized)
    return quantized


def is_fp16_representable(value):
    """Return True when ``value`` survives an FP16 round trip unchanged."""
    arr = np.asarray(value, dtype=np.float64)
    round_trip = arr.astype(np.float16).astype(np.float64)
    return bool(np.all(arr == round_trip))


def fp16_relative_error(values):
    """Element-wise relative quantization error of rounding to FP16.

    Zeros contribute zero error (they are exactly representable).
    """
    arr = np.asarray(values, dtype=np.float64)
    quantized = fp16_quantize(arr)
    denom = np.where(arr == 0.0, 1.0, np.abs(arr))
    return np.abs(quantized - arr) / denom

"""Saturating unsigned integer helpers for the voting engine.

The VEDA voting engine (paper Fig. 7) stores per-position vote counts in a
4096-entry UINT16 buffer and the eviction index in a UINT12 register.  Both
are modelled here as saturating unsigned integers: hardware counters do not
wrap (a wrap would reset a heavily voted position's count to zero, which
would be a functional bug), they clamp at their maximum.
"""

from __future__ import annotations

import numpy as np


def clamp_unsigned(values, bits):
    """Clamp ``values`` into the representable range of a ``bits``-wide
    unsigned integer, rounding toward zero.

    Parameters
    ----------
    values:
        Scalar or array-like of non-negative numbers (negative inputs clamp
        to zero, matching an unsigned datapath).
    bits:
        Counter width in bits; must be a positive integer.
    """
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    limit = (1 << int(bits)) - 1
    arr = np.asarray(values)
    clamped = np.clip(arr, 0, limit)
    result = clamped.astype(np.int64)
    if np.isscalar(values) or np.ndim(values) == 0:
        return int(result)
    return result


class SaturatingCounter:
    """A vector of saturating unsigned counters.

    Mirrors the vote-count buffer in the voting engine: ``increment`` adds a
    0/1 vote mask, values saturate at ``2**bits - 1``, and entries can be
    cleared when their KV vector is evicted (the hardware reuses the slot).
    """

    def __init__(self, size, bits=16):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if bits <= 0:
            raise ValueError(f"bits must be positive, got {bits}")
        self.size = int(size)
        self.bits = int(bits)
        self.max_value = (1 << self.bits) - 1
        self._counts = np.zeros(self.size, dtype=np.int64)

    @property
    def counts(self):
        """A read-only view of the current counter values."""
        view = self._counts.view()
        view.setflags(write=False)
        return view

    def increment(self, mask):
        """Add ``mask`` (0/1 votes, or small increments) with saturation."""
        mask = np.asarray(mask, dtype=np.int64)
        if mask.shape != (self.size,):
            raise ValueError(
                f"mask shape {mask.shape} does not match counter size {self.size}"
            )
        if np.any(mask < 0):
            raise ValueError("vote increments must be non-negative")
        self._counts = np.minimum(self._counts + mask, self.max_value)

    def clear(self, index):
        """Reset one counter (slot reuse after eviction)."""
        self._counts[index] = 0

    def clear_all(self):
        """Reset every counter (new layer / new sequence)."""
        self._counts[:] = 0

    def argmax_earliest(self, valid_length=None):
        """Index of the maximum count; ties resolve to the earliest index.

        ``np.argmax`` already returns the first maximal index, which
        implements the paper's tie-break rule ("the earliest position is
        selected for eviction").  ``valid_length`` restricts the search to
        the occupied prefix of the buffer.
        """
        length = self.size if valid_length is None else int(valid_length)
        if length <= 0:
            raise ValueError("argmax over an empty counter range")
        return int(np.argmax(self._counts[:length]))

    def __len__(self):
        return self.size

    def __repr__(self):
        occupied = int(np.count_nonzero(self._counts))
        return (
            f"SaturatingCounter(size={self.size}, bits={self.bits}, "
            f"nonzero={occupied})"
        )

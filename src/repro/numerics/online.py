"""Streaming (element-serial) reductions used by the SFU.

The element-serial scheduling scheme (paper Sec. IV-B, Fig. 6) summarizes
softmax and layernorm into a *reduction* stage followed by a
*normalization* stage.  The reduction stage consumes one element per cycle
from the serial output of an inner-product-configured PE array, so it must
be expressible as an online update:

- softmax needs the running maximum and the running exponent sum,
  maintained with the online normalizer of Milakov & Gimelshein
  (arXiv:1805.02867), which the paper cites as "similar to [10]";
- layernorm needs the running mean and variance, which the hardware
  computes from the running sum and sum of squares (equivalently Welford's
  algorithm, used here for numerical robustness).

These classes are the *functional reference* for the SFU cycle models in
:mod:`repro.accel.sfu`; property-based tests assert they match the batch
formulas on arbitrary inputs.
"""

from __future__ import annotations

import math

import numpy as np


class OnlineSoftmaxNormalizer:
    """Single-pass running max and exponent sum for softmax.

    After feeding elements :math:`x_1..x_n` one at a time, ``max`` holds
    :math:`m = \\max_j x_j` and ``exp_sum`` holds
    :math:`\\sum_j e^{x_j - m}`, so the softmax of element ``x`` is
    ``exp(x - m) / exp_sum``.
    """

    def __init__(self):
        self._max = -math.inf
        self._exp_sum = 0.0
        self._count = 0

    @property
    def max(self):
        return self._max

    @property
    def exp_sum(self):
        return self._exp_sum

    @property
    def count(self):
        return self._count

    def update(self, value):
        """Consume one element (one SFU cycle in element-serial mode)."""
        value = float(value)
        if value > self._max:
            # Rescale the previous sum to the new maximum; exp(old - new)
            # underflows harmlessly to 0 when the jump is large.
            if self._count > 0:
                self._exp_sum *= math.exp(self._max - value)
            self._max = value
            self._exp_sum += 1.0
        else:
            self._exp_sum += math.exp(value - self._max)
        self._count += 1

    def update_tile(self, values):
        """Consume a tile of elements (the FIFO-buffered variant in Fig. 6c).

        The hardware finds the tile-local max while streaming into the FIFO
        and then folds the tile in one rescale step; the result is
        identical to element-wise updates.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        tile_max = float(np.max(values))
        tile_sum = float(np.sum(np.exp(values - tile_max)))
        if tile_max > self._max:
            if self._count > 0:
                self._exp_sum *= math.exp(self._max - tile_max)
            self._max = tile_max
            self._exp_sum += tile_sum
        else:
            self._exp_sum += tile_sum * math.exp(tile_max - self._max)
        self._count += values.size

    def normalize(self, values):
        """Apply the normalization stage to ``values`` (element-serial)."""
        if self._count == 0:
            raise ValueError("normalize() before any update()")
        values = np.asarray(values, dtype=np.float64)
        return np.exp(values - self._max) / self._exp_sum


class WelfordAccumulator:
    """Single-pass running mean and variance (Welford's algorithm)."""

    def __init__(self):
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    @property
    def count(self):
        return self._count

    @property
    def mean(self):
        if self._count == 0:
            raise ValueError("mean of an empty accumulator")
        return self._mean

    @property
    def variance(self):
        """Population variance (divide by N), matching layernorm."""
        if self._count == 0:
            raise ValueError("variance of an empty accumulator")
        return self._m2 / self._count

    @property
    def std(self):
        return math.sqrt(max(self.variance, 0.0))

    def update(self, value):
        """Consume one element (one SFU cycle in element-serial mode)."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def update_many(self, values):
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.update(value)


def stable_softmax(x, axis=-1):
    """Numerically stable batch softmax for plain ndarrays.

    The two-pass reference implementation (subtract max, exponentiate,
    normalize); :func:`online_softmax` is tested to match it exactly.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def online_softmax(values):
    """Numerically stable softmax computed with the online normalizer.

    This is the functional contract of the element-serial softmax pipeline:
    reduction pass over the serial stream, then normalization pass.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return values.copy()
    normalizer = OnlineSoftmaxNormalizer()
    for value in values.ravel():
        normalizer.update(value)
    return normalizer.normalize(values)


def streaming_mean_std(values):
    """Mean and population standard deviation via a single streaming pass.

    This is what the voting engine's reduction unit computes from the
    serial ``s'`` stream to form the adaptive threshold
    ``T = a*mean - b*std`` (paper Fig. 3, line 3 of the voting stage).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("mean/std of an empty stream")
    acc = WelfordAccumulator()
    acc.update_many(values)
    return acc.mean, acc.std

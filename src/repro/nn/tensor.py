"""A small numpy-backed reverse-mode autodiff engine.

The VEDA paper evaluates its eviction algorithm on Llama-2 7B.  Neither
PyTorch nor pretrained checkpoints are available in this environment, so
the reproduction trains its own small Llama-style language model from
scratch.  This module provides the tensor/autograd substrate for that
training: a :class:`Tensor` wrapping a ``numpy.ndarray`` with a dynamically
built computation graph and reverse-mode differentiation.

Design notes
------------
- Gradients are accumulated into ``Tensor.grad`` (a plain ndarray) by
  closures attached at op construction time, like micrograd but at tensor
  granularity so numpy does the heavy lifting.
- Broadcasting follows numpy semantics; :func:`_unbroadcast` sums gradients
  back down to each operand's shape.
- Only the ops needed by a decoder-only transformer are implemented; each
  one is unit-tested against numerical finite differences in
  ``tests/nn/test_tensor.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous
        return False


def is_grad_enabled():
    return _GRAD_ENABLED


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value):
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got a Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; stored as float64.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(self, data, requires_grad=False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = _as_array(data)
        self.grad = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._prev = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    def numpy(self):
        """The underlying ndarray (shared, not copied)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def __repr__(self):
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad_flag})"

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value):
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(data, parents, backward):
        """Create a result tensor, wiring the graph only when needed."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad):
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad=None):
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so ``loss.backward()`` works for scalar
        losses); a custom seed may be supplied for vector-Jacobian
        products.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        topo = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._lift(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._lift(other))

    def __rsub__(self, other):
        return self._lift(other) + (-self)

    def __mul__(self, other):
        other = self._lift(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._lift(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._lift(other) / self

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data**exponent, (self,), backward)

    # ------------------------------------------------------------------
    # Transcendental ops
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded = grad
            if not keepdims and axis is not None:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            expanded_out = out_data
            expanded_grad = grad
            if not keepdims and axis is not None:
                expanded_out = np.expand_dims(out_data, axis)
                expanded_grad = np.expand_dims(grad, axis)
            mask = self.data == expanded_out
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            self._accumulate(mask * expanded_grad / counts)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra and shaping
    # ------------------------------------------------------------------
    def matmul(self, other):
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.data.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def masked_fill(self, mask, value):
        """Return a tensor with ``value`` where ``mask`` is True.

        The gradient is zero at masked positions; used for causal
        attention masking (paper Fig. 1: the upper triangle of S is set to
        −∞ before softmax).
        """
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concatenate(tensors, axis=0):
        tensors = [Tensor._lift(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor._accumulate(grad[tuple(slicer)])

        return Tensor._make(out_data, tuple(tensors), backward)

"""Optimizers, learning-rate schedules, and gradient utilities."""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "SGD",
    "Adam",
    "clip_grad_norm",
    "cosine_schedule",
    "constant_schedule",
]


class Optimizer:
    """Base class holding a parameter list."""

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self):
        for param in self.parameters:
            param.grad = None

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr, momentum=0.0):
        super().__init__(parameters, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW when ``weight_decay > 0``)."""

    def __init__(
        self,
        parameters,
        lr=1e-3,
        betas=(0.9, 0.999),
        eps=1e-8,
        weight_decay=0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay > 0.0:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float(np.sum(p.grad**2)) for p in parameters))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in parameters:
            param.grad *= scale
    return total


def cosine_schedule(base_lr, warmup_steps, total_steps, min_lr_ratio=0.1):
    """Linear warmup followed by cosine decay to ``min_lr_ratio * base_lr``."""
    if warmup_steps < 0 or total_steps <= 0:
        raise ValueError("invalid schedule horizon")

    min_lr = base_lr * min_lr_ratio

    def schedule(step):
        if step < warmup_steps:
            return base_lr * (step + 1) / max(warmup_steps, 1)
        progress = (step - warmup_steps) / max(total_steps - warmup_steps, 1)
        progress = min(max(progress, 0.0), 1.0)
        return min_lr + 0.5 * (base_lr - min_lr) * (1.0 + math.cos(math.pi * progress))

    return schedule


def constant_schedule(base_lr):
    """A schedule that always returns ``base_lr``."""

    def schedule(step):
        return base_lr

    return schedule

"""Neural-network substrate: autograd tensors, layers, and optimizers.

This package replaces PyTorch for the purposes of the reproduction: it is
just enough machinery to define, train, and run the Llama-style language
model in :mod:`repro.models` from scratch on CPU.
"""

from repro.nn import functional
from repro.nn.layers import (
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    Parameter,
    RMSNorm,
)
from repro.nn.optim import (
    SGD,
    Adam,
    clip_grad_norm,
    constant_schedule,
    cosine_schedule,
)
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "functional",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Embedding",
    "RMSNorm",
    "LayerNorm",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "cosine_schedule",
    "constant_schedule",
    "save_checkpoint",
    "load_checkpoint",
]

"""Checkpoint save/load for Module parameters (npz-based)."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__meta__"


def save_checkpoint(path, module, metadata=None):
    """Serialize a module's parameters (and JSON metadata) to ``path``.

    The file is a compressed ``.npz`` with one array per parameter plus an
    optional JSON metadata blob (model config, training step, etc.).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = module.state_dict()
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    if metadata is not None:
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    np.savez_compressed(path, **arrays)


def load_checkpoint(path, module=None):
    """Load a checkpoint; returns ``(state_dict, metadata)``.

    When ``module`` is given, its parameters are populated in place.
    """
    path = Path(path)
    with np.load(path) as bundle:
        state = {name: bundle[name] for name in bundle.files if name != _META_KEY}
        metadata = None
        if _META_KEY in bundle.files:
            metadata = json.loads(bytes(bundle[_META_KEY].tobytes()).decode("utf-8"))
    if module is not None:
        module.load_state_dict(state)
    return state, metadata

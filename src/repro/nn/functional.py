"""Differentiable functional ops for the transformer substrate.

Everything a Llama-style decoder needs on top of raw :class:`Tensor`
arithmetic: activations, stable softmax/cross-entropy, RMSNorm/LayerNorm,
embedding lookup, and dropout.  Each function builds the autodiff graph via
Tensor ops, so no bespoke backward passes live here except where a fused
implementation is materially more stable (cross-entropy).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "relu",
    "gelu",
    "silu",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "rmsnorm",
    "layernorm",
    "embedding",
    "dropout",
    "causal_mask",
]


def relu(x):
    """Rectified linear unit."""
    return x.masked_fill(x.data < 0.0, 0.0)


def gelu(x):
    """GELU with the tanh approximation (as used by GPT-style FFNs)."""
    c = math.sqrt(2.0 / math.pi)
    inner = (x + x**3 * 0.044715) * c
    return x * (inner.tanh() + 1.0) * 0.5


def silu(x):
    """SiLU / swish, the activation in Llama's SwiGLU FFN."""
    return x * x.sigmoid()


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits, targets, ignore_index=None):
    """Mean cross-entropy between ``logits`` (N, V) and integer ``targets``.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, V)``.
    targets:
        Integer array of shape ``(N,)``.
    ignore_index:
        Target value whose positions are excluded from the mean (used to
        mask padding).
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, V), got shape {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )

    if ignore_index is not None:
        keep = targets != ignore_index
        if not np.any(keep):
            raise ValueError("all targets are ignored")
        logits = logits[np.nonzero(keep)[0]]
        targets = targets[keep]

    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(targets.shape[0])
    picked = log_probs[rows, targets]
    return -picked.mean()


def rmsnorm(x, weight, eps=1e-6):
    """Root-mean-square layer normalization (Llama-style, no mean removal)."""
    mean_square = (x**2).mean(axis=-1, keepdims=True)
    normed = x / ((mean_square + eps) ** 0.5)
    return normed * weight


def layernorm(x, weight, bias, eps=1e-5):
    """Standard layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered**2).mean(axis=-1, keepdims=True)
    normed = centered / ((variance + eps) ** 0.5)
    return normed * weight + bias


def embedding(weight, indices):
    """Gather rows of ``weight`` (V, D) by integer ``indices``."""
    indices = np.asarray(indices)
    if np.any(indices < 0) or np.any(indices >= weight.shape[0]):
        raise IndexError("embedding index out of range")
    return weight[indices]


def dropout(x, p, rng, training=True):
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = rng.random(x.shape) >= p
    return x * (mask.astype(np.float64) / (1.0 - p))


def causal_mask(length):
    """Boolean upper-triangular mask: True where attention is forbidden."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)

"""Module system and standard layers for the transformer substrate."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "RMSNorm",
    "LayerNorm",
    "ModuleList",
]


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Minimal module base class with recursive parameter discovery."""

    def parameters(self):
        """All trainable parameters in definition order."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix=""):
        """Yield ``(name, Parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{i}", item

    def zero_grad(self):
        for param in self.parameters():
            param.grad = None

    def num_parameters(self):
        return sum(param.size for param in self.parameters())

    def state_dict(self):
        """Name → ndarray copy of every parameter."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        """Load parameter values in place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name}: shape {value.shape} != {param.data.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class ModuleList(Module):
    """A list of submodules that participates in parameter discovery."""

    def __init__(self, modules=()):
        self.items = list(modules)

    def append(self, module):
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]


class Linear(Module):
    """Affine projection ``y = x W + b`` with Xavier-uniform init."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(
            rng.uniform(-limit, limit, size=(in_features, out_features))
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x):
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table with normal(0, 0.02) init (GPT convention)."""

    def __init__(self, num_embeddings, embedding_dim, rng=None):
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(
            rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim))
        )
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def forward(self, indices):
        return F.embedding(self.weight, indices)


class RMSNorm(Module):
    """Llama-style RMS normalization with learnable scale."""

    def __init__(self, dim, eps=1e-6):
        self.weight = Parameter(np.ones(dim))
        self.eps = eps

    def forward(self, x):
        return F.rmsnorm(x, self.weight, eps=self.eps)


class LayerNorm(Module):
    """Standard layer normalization with learnable scale and shift."""

    def __init__(self, dim, eps=1e-5):
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x):
        return F.layernorm(x, self.weight, self.bias, eps=self.eps)

"""Llama-style decoder-only transformer (training graph).

This is the structure in paper Fig. 1: QKV generation, causal multi-head
attention with row-wise softmax, output projection, and a feed-forward
block, each wrapped in pre-normalization with residual connections.  The
Llama-2 flavour (RMSNorm + SwiGLU + RoPE) is the default because the paper
evaluates on Llama-2 7B; GELU/LayerNorm variants are supported for the
ablations and tests.

The forward pass here builds an autograd graph for training.  The cached
inference path used by the eviction experiments is the pure-numpy
:class:`repro.models.inference.CachedTransformer`, which loads this
module's ``state_dict`` and is property-tested to produce identical
logits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Embedding, LayerNorm, Linear, Module, ModuleList, Parameter, RMSNorm
from repro.nn.tensor import Tensor
from repro.models.rope import RopeTable, apply_rope_tensor

__all__ = ["CausalSelfAttention", "FeedForward", "TransformerBlock", "TransformerLM"]


def _make_norm(config):
    if config.norm == "rmsnorm":
        return RMSNorm(config.d_model)
    return LayerNorm(config.d_model)


class CausalSelfAttention(Module):
    """Multi-head causal self-attention with RoPE (paper Fig. 1 step 1-3)."""

    def __init__(self, config, rope, rng):
        self.config = config
        self.rope = rope
        d = config.d_model
        self.wq = Linear(d, d, bias=False, rng=rng)
        self.wk = Linear(d, d, bias=False, rng=rng)
        self.wv = Linear(d, d, bias=False, rng=rng)
        self.wo = Linear(d, d, bias=False, rng=rng)

    def forward(self, x, positions=None):
        """``x``: (B, L, D) → (B, L, D)."""
        batch, length, d_model = x.shape
        heads = self.config.n_heads
        head_dim = self.config.head_dim
        if positions is None:
            positions = np.arange(length)

        def split_heads(tensor):
            # (B, L, D) -> (B, H, L, d)
            return tensor.reshape(batch, length, heads, head_dim).transpose(0, 2, 1, 3)

        q = apply_rope_tensor(split_heads(self.wq(x)), positions, self.rope)
        k = apply_rope_tensor(split_heads(self.wk(x)), positions, self.rope)
        v = split_heads(self.wv(x))

        scale = 1.0 / math.sqrt(head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale  # (B, H, L, L)
        mask = F.causal_mask(length)
        scores = scores.masked_fill(mask, -1e30)
        attn = F.softmax(scores, axis=-1)
        out = attn @ v  # (B, H, L, d)
        merged = out.transpose(0, 2, 1, 3).reshape(batch, length, d_model)
        return self.wo(merged)


class FeedForward(Module):
    """FFN block: SwiGLU (Llama) or GELU/ReLU two-layer MLP."""

    def __init__(self, config, rng):
        self.activation = config.activation
        d, d_ff = config.d_model, config.d_ff
        if config.activation == "swiglu":
            self.w_gate = Linear(d, d_ff, bias=False, rng=rng)
            self.w_up = Linear(d, d_ff, bias=False, rng=rng)
            self.w_down = Linear(d_ff, d, bias=False, rng=rng)
        else:
            self.w_up = Linear(d, d_ff, bias=False, rng=rng)
            self.w_down = Linear(d_ff, d, bias=False, rng=rng)

    def forward(self, x):
        if self.activation == "swiglu":
            return self.w_down(F.silu(self.w_gate(x)) * self.w_up(x))
        hidden = self.w_up(x)
        hidden = F.gelu(hidden) if self.activation == "gelu" else F.relu(hidden)
        return self.w_down(hidden)


class TransformerBlock(Module):
    """Pre-norm block: x + Attn(Norm(x)); x + FFN(Norm(x))."""

    def __init__(self, config, rope, rng):
        self.attn_norm = _make_norm(config)
        self.attn = CausalSelfAttention(config, rope, rng)
        self.ffn_norm = _make_norm(config)
        self.ffn = FeedForward(config, rng)

    def forward(self, x, positions=None):
        x = x + self.attn(self.attn_norm(x), positions=positions)
        x = x + self.ffn(self.ffn_norm(x))
        return x


class TransformerLM(Module):
    """Decoder-only language model head-to-toe (paper Fig. 1, N layers)."""

    def __init__(self, config, seed=0):
        rng = np.random.default_rng(seed)
        self.config = config
        self.rope = RopeTable(config.head_dim, config.max_seq_len, config.rope_theta)
        self.embed = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.blocks = ModuleList(
            TransformerBlock(config, self.rope, rng) for _ in range(config.n_layers)
        )
        self.final_norm = _make_norm(config)
        if config.tie_embeddings:
            self.lm_head = None
        else:
            self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    def forward(self, tokens, positions=None):
        """``tokens``: int array (B, L) → logits Tensor (B, L, V)."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (B, L), got shape {tokens.shape}")
        x = self.embed(tokens)
        for block in self.blocks:
            x = block(x, positions=positions)
        x = self.final_norm(x)
        if self.lm_head is not None:
            return self.lm_head(x)
        return x @ self.embed.weight.transpose(1, 0)

    def loss(self, tokens):
        """Next-token cross-entropy over a batch of sequences (B, L)."""
        tokens = np.asarray(tokens)
        logits = self.forward(tokens[:, :-1])
        batch, length, vocab = logits.shape
        flat_logits = logits.reshape(batch * length, vocab)
        flat_targets = tokens[:, 1:].reshape(-1)
        return F.cross_entropy(flat_logits, flat_targets)

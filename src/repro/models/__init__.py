"""Llama-style transformer models: training graph and cached inference."""

from repro.models.inference import CachedTransformer, StepResult, stable_softmax
from repro.models.rope import RopeTable, apply_rope_numpy, apply_rope_tensor
from repro.models.transformer import (
    CausalSelfAttention,
    FeedForward,
    TransformerBlock,
    TransformerLM,
)

__all__ = [
    "TransformerLM",
    "TransformerBlock",
    "CausalSelfAttention",
    "FeedForward",
    "CachedTransformer",
    "StepResult",
    "stable_softmax",
    "RopeTable",
    "apply_rope_numpy",
    "apply_rope_tensor",
]

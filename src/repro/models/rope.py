"""Rotary positional embeddings (RoPE), shared by training and inference.

Llama applies RoPE to queries and keys; crucially for KV-cache eviction,
cached keys keep the rotation of their *original absolute position*, so
evicting entries from the middle of the cache does not disturb the
positional encoding of the survivors.  Both the autograd path (training)
and the pure-numpy path (cached inference) therefore take explicit
``positions`` arrays rather than assuming ``0..L-1``.

The half-split convention is used: a head vector ``x`` of dim ``d`` is
viewed as two halves ``(x1, x2)`` and rotated per frequency pair as
``(x1*cos - x2*sin, x1*sin + x2*cos)``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["RopeTable", "apply_rope_numpy", "apply_rope_tensor"]


class RopeTable:
    """Precomputed cos/sin tables for positions ``0..max_len-1``."""

    def __init__(self, head_dim, max_len, theta=10000.0):
        if head_dim % 2 != 0:
            raise ValueError(f"head_dim must be even, got {head_dim}")
        if max_len <= 0:
            raise ValueError(f"max_len must be positive, got {max_len}")
        self.head_dim = int(head_dim)
        self.max_len = int(max_len)
        self.theta = float(theta)
        half = head_dim // 2
        freqs = self.theta ** (-np.arange(half, dtype=np.float64) / half)
        angles = np.outer(np.arange(max_len, dtype=np.float64), freqs)
        self.cos = np.cos(angles)  # (max_len, head_dim // 2)
        self.sin = np.sin(angles)

    def at(self, positions):
        """cos/sin rows for integer ``positions`` (any shape)."""
        positions = np.asarray(positions)
        if np.any(positions < 0) or np.any(positions >= self.max_len):
            raise IndexError(
                f"position out of RoPE table range [0, {self.max_len})"
            )
        return self.cos[positions], self.sin[positions]


def apply_rope_numpy(x, positions, table):
    """Rotate ``x`` (..., head_dim) at ``positions`` (...,) — pure numpy.

    ``positions`` must broadcast against ``x``'s leading axes; typically
    ``x`` is ``(H, L, d)`` with positions ``(L,)``, or ``(H, d)`` with a
    scalar position during single-token decode.
    """
    x = np.asarray(x, dtype=np.float64)
    half = table.head_dim // 2
    if x.shape[-1] != table.head_dim:
        raise ValueError(
            f"last dim {x.shape[-1]} != RoPE head_dim {table.head_dim}"
        )
    cos, sin = table.at(positions)
    # Broadcast cos/sin to x's leading shape: they index the axis that
    # positions describes, i.e. the second-to-last axis of x (or none for
    # scalar positions).
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated_1 = x1 * cos - x2 * sin
    rotated_2 = x1 * sin + x2 * cos
    return np.concatenate([rotated_1, rotated_2], axis=-1)


def apply_rope_tensor(x, positions, table):
    """Autograd version: ``x`` is a Tensor of shape (..., L, head_dim)."""
    half = table.head_dim // 2
    cos, sin = table.at(positions)  # (L, half)
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated_1 = x1 * cos - x2 * sin
    rotated_2 = x1 * sin + x2 * cos
    return Tensor.concatenate([rotated_1, rotated_2], axis=-1)

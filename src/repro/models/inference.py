"""Pure-numpy cached inference path (prefill + auto-regressive decode).

This mirrors the two LLM phases described in the paper's background
section: *prefilling* encodes the prompt in parallel and builds the KV
cache; *generation* processes one token at a time, attending to the cache
and extending it.  Per-row attention scores are surfaced to the caller so
eviction policies (H2O's accumulation, VEDA's voting) can observe exactly
the ``s'`` vectors the hardware voting engine sees.

Decoding is batched: :meth:`CachedTransformer.step_batch` advances ``B``
independent sequences in lock-step, sharing one stacked matmul per linear
layer (the Orca observation modeled in ``experiments/batching.py`` —
weights are fetched once per batch) while attending to each sequence's
own :class:`~repro.core.kv_cache.KVCache`.  ``step`` is the batch-of-one
special case.  Batched linear algebra goes through :func:`batch_matmul`,
whose per-row accumulation order is independent of the batch size, so a
sequence decodes to bitwise-identical logits whether it runs alone or
inside any batch — the property the serving scheduler's equivalence
guarantee rests on.

The weights come from a trained :class:`repro.models.transformer.TransformerLM`
via ``state_dict``; ``tests/models/test_inference.py`` property-tests that
prefill+decode reproduces the training graph's logits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ModelConfig
from repro.core.kv_cache import KVCache
from repro.models.rope import RopeTable, apply_rope_numpy
from repro.numerics.online import stable_softmax

__all__ = [
    "CachedTransformer",
    "StepResult",
    "BatchStepResult",
    "VerifyResult",
    "batch_matmul",
    "stable_softmax",
]


def batch_matmul(x, w):
    """``x @ w`` for ``x`` (B, D), ``w`` (D, F) — batch-size invariant.

    BLAS gemm kernels change their micro-kernel (and thus the summation
    order of each output element) with the number of rows, so ``(X @ W)[i]``
    is *not* bitwise equal across batch sizes.  ``np.einsum`` reduces each
    output element with a fixed sequential order over ``D`` regardless of
    ``B``, which makes batched decode bitwise identical to solo decode at
    a modest constant-factor cost — the right trade for a reproduction
    whose eviction decisions hinge on strict float comparisons.
    """
    return np.einsum("bd,df->bf", x, w)


class StepResult:
    """Output of one decode step (or one prefill).

    Attributes
    ----------
    logits:
        ``(V,)`` next-token logits (for prefill: logits of the last prompt
        token, which predicts the first generated token).
    attention:
        Per-layer attention probabilities.  For a decode step this is a
        list of ``(H, l)`` arrays (one row per head over the cache); for a
        prefill it is a list of ``(H, L, L)`` causal matrices.
    """

    __slots__ = ("logits", "attention")

    def __init__(self, logits, attention):
        self.logits = logits
        self.attention = attention


class BatchStepResult:
    """Output of one batched decode step over ``B`` sequences.

    Attributes
    ----------
    logits:
        ``(B, V)`` next-token logits, row ``b`` for sequence ``b``.
    attention:
        Per-layer, per-sequence attention rows: ``attention[layer][b]`` is
        the ``(H, l_b)`` probability row of sequence ``b`` over its own
        (post-append) cache.  Ragged across ``b`` because every sequence
        has an independent cache length.
    """

    __slots__ = ("logits", "attention")

    def __init__(self, logits, attention):
        self.logits = logits
        self.attention = attention


class VerifyResult:
    """Output of one speculative-decoding verify pass over ``L`` tokens.

    Attributes
    ----------
    logits:
        ``(L, V)`` next-token logits; row ``i`` is bitwise identical to
        the logits a sequential :meth:`CachedTransformer.step` of token
        ``i`` would have produced at that point.
    attention:
        Per-layer, per-row attention rows: ``attention[layer][i]`` is the
        ``(H, prior + i + 1)`` probability row of token ``i`` over the
        cache as it stood right after that token's kv append — exactly
        the row the sequential decode path hands to eviction policies.
        Ragged across ``i`` because each token sees one more slot than
        its predecessor.
    """

    __slots__ = ("logits", "attention")

    def __init__(self, logits, attention):
        self.logits = logits
        self.attention = attention


class _LayerWeights:
    """Flat numpy views of one transformer block's parameters."""

    __slots__ = (
        "attn_norm_w",
        "attn_norm_b",
        "ffn_norm_w",
        "ffn_norm_b",
        "wq",
        "wk",
        "wv",
        "wo",
        "w_gate",
        "w_up",
        "w_down",
    )


class CachedTransformer:
    """Numpy inference engine for a trained :class:`TransformerLM`."""

    def __init__(self, config: ModelConfig, state_dict):
        self.config = config
        self.rope = RopeTable(config.head_dim, config.max_seq_len, config.rope_theta)
        self._load(state_dict)

    @classmethod
    def from_module(cls, module):
        """Build directly from a training-graph model."""
        return cls(module.config, module.state_dict())

    # ------------------------------------------------------------------
    # Weight loading
    # ------------------------------------------------------------------
    def _load(self, state):
        config = self.config
        self.embed = np.asarray(state["embed.weight"])
        self.final_norm_w = np.asarray(state["final_norm.weight"])
        self.final_norm_b = state.get("final_norm.bias")
        if self.final_norm_b is not None:
            self.final_norm_b = np.asarray(self.final_norm_b)
        if config.tie_embeddings:
            self.lm_head = self.embed.T
        else:
            self.lm_head = np.asarray(state["lm_head.weight"])
        self.layers = []
        for i in range(config.n_layers):
            prefix = f"blocks.items.{i}."
            lw = _LayerWeights()
            lw.attn_norm_w = np.asarray(state[prefix + "attn_norm.weight"])
            lw.attn_norm_b = _optional(state, prefix + "attn_norm.bias")
            lw.ffn_norm_w = np.asarray(state[prefix + "ffn_norm.weight"])
            lw.ffn_norm_b = _optional(state, prefix + "ffn_norm.bias")
            lw.wq = np.asarray(state[prefix + "attn.wq.weight"])
            lw.wk = np.asarray(state[prefix + "attn.wk.weight"])
            lw.wv = np.asarray(state[prefix + "attn.wv.weight"])
            lw.wo = np.asarray(state[prefix + "attn.wo.weight"])
            if config.activation == "swiglu":
                lw.w_gate = np.asarray(state[prefix + "ffn.w_gate.weight"])
            else:
                lw.w_gate = None
            lw.w_up = np.asarray(state[prefix + "ffn.w_up.weight"])
            lw.w_down = np.asarray(state[prefix + "ffn.w_down.weight"])
            self.layers.append(lw)

    # ------------------------------------------------------------------
    # Elementwise helpers (match repro.nn.functional exactly)
    # ------------------------------------------------------------------
    def _norm(self, x, weight, bias):
        if self.config.norm == "rmsnorm":
            mean_square = np.mean(x**2, axis=-1, keepdims=True)
            return x / np.sqrt(mean_square + 1e-6) * weight
        mean = np.mean(x, axis=-1, keepdims=True)
        centered = x - mean
        variance = np.mean(centered**2, axis=-1, keepdims=True)
        return centered / np.sqrt(variance + 1e-5) * weight + bias

    def _ffn(self, lw, x, mm=np.matmul):
        if self.config.activation == "swiglu":
            gate = mm(x, lw.w_gate)
            gate = gate / (1.0 + np.exp(-gate)) * mm(x, lw.w_up)
            return mm(gate, lw.w_down)
        hidden = mm(x, lw.w_up)
        if self.config.activation == "gelu":
            c = math.sqrt(2.0 / math.pi)
            hidden = 0.5 * hidden * (1.0 + np.tanh(c * (hidden + 0.044715 * hidden**3)))
        else:
            hidden = np.maximum(hidden, 0.0)
        return mm(hidden, lw.w_down)

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def new_cache(self, capacity=None):
        """Fresh empty KV cache sized to ``capacity`` (default max_seq_len)."""
        config = self.config
        capacity = config.max_seq_len if capacity is None else int(capacity)
        return KVCache(config.n_layers, config.n_heads, config.head_dim, capacity)

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def prefill(self, tokens, cache, start_position=0):
        """Encode a prompt (or prompt continuation) and populate ``cache``.

        When ``cache`` already holds entries — a shared prefix adopted
        from the serving prefix cache, or an earlier chunk — the new
        tokens attend to the cached keys/values as well as to each other,
        so a chunked prefill reproduces the one-shot prefill exactly.
        All linear layers go through :func:`batch_matmul`, whose per-row
        accumulation order is independent of the number of rows; combined
        with the per-element (width-outer) einsum attention reductions,
        a token's hidden state — and the final logits — is bitwise
        identical whether its prompt was prefilled whole or continued
        from a cached prefix.  That invariance is what lets prefix-cache
        hits skip recomputation without changing a single generated
        token.

        Parameters
        ----------
        tokens:
            Prompt token ids, shape (L,).
        cache:
            The :class:`KVCache` to populate (must have room for L more
            entries); may already hold the tokens before ``start_position``
            (every layer at the same length).
        start_position:
            Absolute position of the first token (supports chunked
            prefill and prefix continuation).

        Returns
        -------
        StepResult
            Logits for the token *after* the prompt and per-layer causal
            attention matrices of shape (H, L, prior + L), where ``prior``
            is the pre-existing cache length (0 for a cold prefill, giving
            the square (H, L, L) causal matrices).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ValueError(f"tokens must be 1-D, got shape {tokens.shape}")
        length = tokens.shape[0]
        if length == 0:
            raise ValueError("empty prompt")
        config = self.config
        heads, head_dim = config.n_heads, config.head_dim
        prior_lengths = {cache[i].length for i in range(config.n_layers)}
        if len(prior_lengths) != 1:
            raise ValueError(
                f"ragged cache lengths {sorted(prior_lengths)}: prefill "
                "continuation needs every layer at the same length"
            )
        (prior,) = prior_lengths
        total = prior + length
        positions = np.arange(start_position, start_position + length)
        scale = 1.0 / math.sqrt(head_dim)

        x = self.embed[tokens]
        attention_records = []
        # Row i (absolute slot prior + i) sees every cached slot plus the
        # new slots up to itself.
        mask = (np.arange(total)[None, :] - prior) > np.arange(length)[:, None]
        for layer_index, lw in enumerate(self.layers):
            layer_cache = cache[layer_index]
            normed = self._norm(x, lw.attn_norm_w, lw.attn_norm_b)

            def split(mat):
                return mat.reshape(length, heads, head_dim).transpose(1, 0, 2)

            q = apply_rope_numpy(split(batch_matmul(normed, lw.wq)), positions, self.rope)
            k = apply_rope_numpy(split(batch_matmul(normed, lw.wk)), positions, self.rope)
            v = split(batch_matmul(normed, lw.wv))
            layer_cache.append_block(k, v, positions)
            keys = layer_cache.keys  # (H, total, d)
            values = layer_cache.values

            scores = np.einsum("hid,hjd->hij", q, keys) * scale
            scores = np.where(mask, -1e30, scores)
            attn = stable_softmax(scores, axis=-1)
            attention_records.append(attn)
            context = np.einsum("hij,hjd->hid", attn, values)
            merged = context.transpose(1, 0, 2).reshape(length, config.d_model)
            x = x + batch_matmul(merged, lw.wo)

            normed = self._norm(x, lw.ffn_norm_w, lw.ffn_norm_b)
            x = x + self._ffn(lw, normed, mm=batch_matmul)

        x = self._norm(x, self.final_norm_w, self.final_norm_b)
        logits = x[-1] @ self.lm_head
        return StepResult(logits, attention_records)

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def step(self, token, position, cache):
        """Decode one token at absolute ``position`` against ``cache``.

        The token's own kv pair is appended *before* attention (a token
        attends to itself), matching the paper's description of extending
        the KV cache with the current key-value vector.

        A batch-of-one :meth:`step_batch`; because the batched path's
        accumulation order is batch-size invariant, the returned logits
        are bitwise identical to the same step taken inside any batch.

        Returns a :class:`StepResult` whose ``attention`` entries are
        ``(H, l)`` rows over the (post-append) cache.
        """
        result = self.step_batch([int(token)], [int(position)], [cache])
        return StepResult(
            result.logits[0], [rows[0] for rows in result.attention]
        )

    def step_batch(self, tokens, positions, caches):
        """Decode one token for each of ``B`` sequences in lock-step.

        Parameters
        ----------
        tokens:
            ``(B,)`` token ids, one per sequence.
        positions:
            ``(B,)`` absolute positions, one per sequence (sequences are
            at independent points in their generations).
        caches:
            ``B`` per-sequence :class:`KVCache` objects (e.g. from
            :meth:`BatchedKVCache.select`); each sequence's kv pair is
            appended to its own cache before attention.

        All linear layers run as one stacked ``(B, D) @ (D, F)`` matmul —
        the weight matrix is read once for the whole batch, which is the
        batching win (attention remains per-sequence: every sequence owns
        a distinct, differently-sized cache).

        Returns a :class:`BatchStepResult`.
        """
        config = self.config
        heads, head_dim = config.n_heads, config.head_dim
        scale = 1.0 / math.sqrt(head_dim)
        tokens = np.asarray(tokens, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if tokens.ndim != 1 or tokens.shape[0] == 0:
            raise ValueError(f"tokens must be non-empty 1-D, got shape {tokens.shape}")
        batch = tokens.shape[0]
        if positions.shape != (batch,) or len(caches) != batch:
            raise ValueError(
                f"batch mismatch: {batch} tokens, {positions.shape[0]} "
                f"positions, {len(caches)} caches"
            )

        x = self.embed[tokens]  # (B, D)
        attention_records = []
        for layer_index, lw in enumerate(self.layers):
            normed = self._norm(x, lw.attn_norm_w, lw.attn_norm_b)

            q = batch_matmul(normed, lw.wq).reshape(batch, heads, head_dim)
            k = batch_matmul(normed, lw.wk).reshape(batch, heads, head_dim)
            v = batch_matmul(normed, lw.wv).reshape(batch, heads, head_dim)
            q = apply_rope_numpy(q, positions[:, None], self.rope)
            k = apply_rope_numpy(k, positions[:, None], self.rope)

            contexts = np.empty((batch, config.d_model))
            layer_attn = []
            for b, cache in enumerate(caches):
                layer_cache = cache[layer_index]
                layer_cache.append(k[b], v[b], positions[b])
                keys = layer_cache.keys  # (H, l_b, d)
                values = layer_cache.values
                scores = np.einsum("hd,hld->hl", q[b], keys) * scale
                attn = stable_softmax(scores, axis=-1)  # (H, l_b)
                layer_attn.append(attn)
                contexts[b] = np.einsum("hl,hld->hd", attn, values).reshape(
                    config.d_model
                )
            attention_records.append(layer_attn)
            x = x + batch_matmul(contexts, lw.wo)

            normed = self._norm(x, lw.ffn_norm_w, lw.ffn_norm_b)
            x = x + self._ffn(lw, normed, mm=batch_matmul)

        x = self._norm(x, self.final_norm_w, self.final_norm_b)
        logits = batch_matmul(x, self.lm_head)
        return BatchStepResult(logits, attention_records)

    # ------------------------------------------------------------------
    # Speculative verification
    # ------------------------------------------------------------------
    def verify(self, tokens, cache, start_position):
        """Score ``L`` provisional tokens against ``cache`` in one pass.

        The speculative-decoding target pass: the caller feeds the last
        committed token followed by the draft's proposals, and gets back
        per-position next-token logits so acceptance can be decided for
        every proposal (plus the bonus token) from a single weight fetch.

        This is ``step_batch`` turned sideways: where ``step_batch``
        advances ``B`` sequences by one token each, ``verify`` advances
        one sequence by ``L`` tokens.  Every linear layer still runs as
        one stacked ``(L, D) @ (D, F)`` :func:`batch_matmul` — the
        multi-token amortization the co-sim prices — while attention
        runs per row over exactly that row's causal width, with the same
        kernels and therefore the same accumulation order as a
        sequential decode of the same tokens.  Combined with
        ``batch_matmul``'s row-count invariance, row ``i`` of the
        returned logits is **bitwise identical** to the logits of the
        ``i``-th sequential :meth:`step`; greedy acceptance is therefore
        exact, not approximate.  (A masked full-width softmax — the
        :meth:`prefill` formulation — is *not* used here: ``np.sum``'s
        pairwise reduction is only conditionally invariant to trailing
        masked zeros, and the acceptance rule needs equality
        unconditionally.)

        All ``L`` kv pairs are appended to ``cache`` provisionally; the
        caller rolls back the rejected suffix with ``cache.truncate``.

        Parameters
        ----------
        tokens:
            ``(L,)`` token ids: the pending committed token first, then
            the draft proposals.
        cache:
            The sequence's :class:`KVCache` (every layer at the same
            length, with room for ``L`` more entries per layer).
        start_position:
            Absolute position of ``tokens[0]``.

        Returns
        -------
        VerifyResult
            ``(L, V)`` logits plus per-layer ragged attention rows (see
            :class:`VerifyResult`).
        """
        config = self.config
        heads, head_dim = config.n_heads, config.head_dim
        scale = 1.0 / math.sqrt(head_dim)
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1 or tokens.shape[0] == 0:
            raise ValueError(f"tokens must be non-empty 1-D, got shape {tokens.shape}")
        length = tokens.shape[0]
        prior_lengths = {cache[i].length for i in range(config.n_layers)}
        if len(prior_lengths) != 1:
            raise ValueError(
                f"ragged cache lengths {sorted(prior_lengths)}: verify "
                "needs every layer at the same length"
            )
        positions = np.arange(start_position, start_position + length)

        x = self.embed[tokens]  # (L, D)
        attention_records = []
        for layer_index, lw in enumerate(self.layers):
            normed = self._norm(x, lw.attn_norm_w, lw.attn_norm_b)

            q = batch_matmul(normed, lw.wq).reshape(length, heads, head_dim)
            k = batch_matmul(normed, lw.wk).reshape(length, heads, head_dim)
            v = batch_matmul(normed, lw.wv).reshape(length, heads, head_dim)
            q = apply_rope_numpy(q, positions[:, None], self.rope)
            k = apply_rope_numpy(k, positions[:, None], self.rope)

            layer_cache = cache[layer_index]
            contexts = np.empty((length, config.d_model))
            layer_attn = []
            for i in range(length):
                layer_cache.append(k[i], v[i], positions[i])
                keys = layer_cache.keys  # (H, prior + i + 1, d)
                values = layer_cache.values
                scores = np.einsum("hd,hld->hl", q[i], keys) * scale
                attn = stable_softmax(scores, axis=-1)  # (H, prior + i + 1)
                layer_attn.append(attn)
                contexts[i] = np.einsum("hl,hld->hd", attn, values).reshape(
                    config.d_model
                )
            attention_records.append(layer_attn)
            x = x + batch_matmul(contexts, lw.wo)

            normed = self._norm(x, lw.ffn_norm_w, lw.ffn_norm_b)
            x = x + self._ffn(lw, normed, mm=batch_matmul)

        x = self._norm(x, self.final_norm_w, self.final_norm_b)
        logits = batch_matmul(x, self.lm_head)
        return VerifyResult(logits, attention_records)


def _optional(state, key):
    value = state.get(key)
    return None if value is None else np.asarray(value)

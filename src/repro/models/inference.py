"""Pure-numpy cached inference path (prefill + auto-regressive decode).

This mirrors the two LLM phases described in the paper's background
section: *prefilling* encodes the prompt in parallel and builds the KV
cache; *generation* processes one token at a time, attending to the cache
and extending it.  Per-row attention scores are surfaced to the caller so
eviction policies (H2O's accumulation, VEDA's voting) can observe exactly
the ``s'`` vectors the hardware voting engine sees.

The weights come from a trained :class:`repro.models.transformer.TransformerLM`
via ``state_dict``; ``tests/models/test_inference.py`` property-tests that
prefill+decode reproduces the training graph's logits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ModelConfig
from repro.core.kv_cache import KVCache
from repro.models.rope import RopeTable, apply_rope_numpy
from repro.numerics.online import stable_softmax

__all__ = ["CachedTransformer", "StepResult", "stable_softmax"]


class StepResult:
    """Output of one decode step (or one prefill).

    Attributes
    ----------
    logits:
        ``(V,)`` next-token logits (for prefill: logits of the last prompt
        token, which predicts the first generated token).
    attention:
        Per-layer attention probabilities.  For a decode step this is a
        list of ``(H, l)`` arrays (one row per head over the cache); for a
        prefill it is a list of ``(H, L, L)`` causal matrices.
    """

    __slots__ = ("logits", "attention")

    def __init__(self, logits, attention):
        self.logits = logits
        self.attention = attention


class _LayerWeights:
    """Flat numpy views of one transformer block's parameters."""

    __slots__ = (
        "attn_norm_w",
        "attn_norm_b",
        "ffn_norm_w",
        "ffn_norm_b",
        "wq",
        "wk",
        "wv",
        "wo",
        "w_gate",
        "w_up",
        "w_down",
    )


class CachedTransformer:
    """Numpy inference engine for a trained :class:`TransformerLM`."""

    def __init__(self, config: ModelConfig, state_dict):
        self.config = config
        self.rope = RopeTable(config.head_dim, config.max_seq_len, config.rope_theta)
        self._load(state_dict)

    @classmethod
    def from_module(cls, module):
        """Build directly from a training-graph model."""
        return cls(module.config, module.state_dict())

    # ------------------------------------------------------------------
    # Weight loading
    # ------------------------------------------------------------------
    def _load(self, state):
        config = self.config
        self.embed = np.asarray(state["embed.weight"])
        self.final_norm_w = np.asarray(state["final_norm.weight"])
        self.final_norm_b = state.get("final_norm.bias")
        if self.final_norm_b is not None:
            self.final_norm_b = np.asarray(self.final_norm_b)
        if config.tie_embeddings:
            self.lm_head = self.embed.T
        else:
            self.lm_head = np.asarray(state["lm_head.weight"])
        self.layers = []
        for i in range(config.n_layers):
            prefix = f"blocks.items.{i}."
            lw = _LayerWeights()
            lw.attn_norm_w = np.asarray(state[prefix + "attn_norm.weight"])
            lw.attn_norm_b = _optional(state, prefix + "attn_norm.bias")
            lw.ffn_norm_w = np.asarray(state[prefix + "ffn_norm.weight"])
            lw.ffn_norm_b = _optional(state, prefix + "ffn_norm.bias")
            lw.wq = np.asarray(state[prefix + "attn.wq.weight"])
            lw.wk = np.asarray(state[prefix + "attn.wk.weight"])
            lw.wv = np.asarray(state[prefix + "attn.wv.weight"])
            lw.wo = np.asarray(state[prefix + "attn.wo.weight"])
            if config.activation == "swiglu":
                lw.w_gate = np.asarray(state[prefix + "ffn.w_gate.weight"])
            else:
                lw.w_gate = None
            lw.w_up = np.asarray(state[prefix + "ffn.w_up.weight"])
            lw.w_down = np.asarray(state[prefix + "ffn.w_down.weight"])
            self.layers.append(lw)

    # ------------------------------------------------------------------
    # Elementwise helpers (match repro.nn.functional exactly)
    # ------------------------------------------------------------------
    def _norm(self, x, weight, bias):
        if self.config.norm == "rmsnorm":
            mean_square = np.mean(x**2, axis=-1, keepdims=True)
            return x / np.sqrt(mean_square + 1e-6) * weight
        mean = np.mean(x, axis=-1, keepdims=True)
        centered = x - mean
        variance = np.mean(centered**2, axis=-1, keepdims=True)
        return centered / np.sqrt(variance + 1e-5) * weight + bias

    def _ffn(self, lw, x):
        if self.config.activation == "swiglu":
            gate = x @ lw.w_gate
            gate = gate / (1.0 + np.exp(-gate)) * (x @ lw.w_up)
            return gate @ lw.w_down
        hidden = x @ lw.w_up
        if self.config.activation == "gelu":
            c = math.sqrt(2.0 / math.pi)
            hidden = 0.5 * hidden * (1.0 + np.tanh(c * (hidden + 0.044715 * hidden**3)))
        else:
            hidden = np.maximum(hidden, 0.0)
        return hidden @ lw.w_down

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def new_cache(self, capacity=None):
        """Fresh empty KV cache sized to ``capacity`` (default max_seq_len)."""
        config = self.config
        capacity = config.max_seq_len if capacity is None else int(capacity)
        return KVCache(config.n_layers, config.n_heads, config.head_dim, capacity)

    # ------------------------------------------------------------------
    # Prefill
    # ------------------------------------------------------------------
    def prefill(self, tokens, cache, start_position=0):
        """Encode the prompt in parallel and populate ``cache``.

        Parameters
        ----------
        tokens:
            Prompt token ids, shape (L,).
        cache:
            The :class:`KVCache` to populate (must have room for L entries).
        start_position:
            Absolute position of the first token (supports chunked prefill).

        Returns
        -------
        StepResult
            Logits for the token *after* the prompt and per-layer causal
            attention matrices of shape (H, L, L).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ValueError(f"tokens must be 1-D, got shape {tokens.shape}")
        length = tokens.shape[0]
        if length == 0:
            raise ValueError("empty prompt")
        config = self.config
        heads, head_dim = config.n_heads, config.head_dim
        positions = np.arange(start_position, start_position + length)
        scale = 1.0 / math.sqrt(head_dim)

        x = self.embed[tokens]
        attention_records = []
        mask = np.triu(np.ones((length, length), dtype=bool), k=1)
        for layer_index, lw in enumerate(self.layers):
            normed = self._norm(x, lw.attn_norm_w, lw.attn_norm_b)

            def split(mat):
                return mat.reshape(length, heads, head_dim).transpose(1, 0, 2)

            q = apply_rope_numpy(split(normed @ lw.wq), positions, self.rope)
            k = apply_rope_numpy(split(normed @ lw.wk), positions, self.rope)
            v = split(normed @ lw.wv)
            cache[layer_index].append_block(k, v, positions)

            scores = np.einsum("hid,hjd->hij", q, k) * scale
            scores = np.where(mask, -1e30, scores)
            attn = stable_softmax(scores, axis=-1)
            attention_records.append(attn)
            context = np.einsum("hij,hjd->hid", attn, v)
            merged = context.transpose(1, 0, 2).reshape(length, config.d_model)
            x = x + merged @ lw.wo

            normed = self._norm(x, lw.ffn_norm_w, lw.ffn_norm_b)
            x = x + self._ffn(lw, normed)

        x = self._norm(x, self.final_norm_w, self.final_norm_b)
        logits = x[-1] @ self.lm_head
        return StepResult(logits, attention_records)

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def step(self, token, position, cache):
        """Decode one token at absolute ``position`` against ``cache``.

        The token's own kv pair is appended *before* attention (a token
        attends to itself), matching the paper's description of extending
        the KV cache with the current key-value vector.

        Returns a :class:`StepResult` whose ``attention`` entries are
        ``(H, l)`` rows over the (post-append) cache.
        """
        config = self.config
        heads, head_dim = config.n_heads, config.head_dim
        scale = 1.0 / math.sqrt(head_dim)

        x = self.embed[int(token)]  # (D,)
        attention_records = []
        for layer_index, lw in enumerate(self.layers):
            layer_cache = cache[layer_index]
            normed = self._norm(x, lw.attn_norm_w, lw.attn_norm_b)

            q = (normed @ lw.wq).reshape(heads, head_dim)
            k = (normed @ lw.wk).reshape(heads, head_dim)
            v = (normed @ lw.wv).reshape(heads, head_dim)
            q = apply_rope_numpy(q, position, self.rope)
            k = apply_rope_numpy(k, position, self.rope)
            layer_cache.append(k, v, position)

            keys = layer_cache.keys  # (H, l, d)
            values = layer_cache.values
            scores = np.einsum("hd,hld->hl", q, keys) * scale
            attn = stable_softmax(scores, axis=-1)  # (H, l)
            attention_records.append(attn)
            context = np.einsum("hl,hld->hd", attn, values)  # (H, d)
            x = x + context.reshape(config.d_model) @ lw.wo

            normed = self._norm(x, lw.ffn_norm_w, lw.ffn_norm_b)
            x = x + self._ffn(lw, normed)

        x = self._norm(x, self.final_norm_w, self.final_norm_b)
        logits = x @ self.lm_head
        return StepResult(logits, attention_records)


def _optional(state, key):
    value = state.get(key)
    return None if value is None else np.asarray(value)

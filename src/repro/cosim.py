"""Algorithm/hardware co-simulation.

The paper's claim is a *tri-optimization*: the voting algorithm decides
what stays in the cache, and the accelerator's latency depends on the
cache trajectory the algorithm produces.  This module closes that loop:
it runs the real :class:`GenerationEngine` (model + policy) and feeds the
*measured* per-step cache lengths into the cycle simulator, rather than
assuming the idealized ``min(P+i, S+1)`` trajectory.

This catches effects the idealized trajectory misses — e.g. a policy
configured with ``evictions_per_step=1`` approaching its budget slowly,
or a buggy policy failing to keep the cache bounded — and produces joint
(quality, latency) numbers for any policy.

This module prices one sequence at a time; the serving analogue —
mixed prefill/decode rounds from a :class:`repro.serve.Scheduler`
trace, batched linear layers, per-phase dataflow selection — lives in
:class:`repro.serve.cosim.ServingCoSimulator`, which reduces to this
co-simulator cycle-for-cycle at batch size 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.config import HardwareConfig, veda_config
from repro.accel.scheduler import decode_attention
from repro.accel.simulator import AcceleratorSimulator
from repro.core.engine import GenerationEngine

__all__ = ["CoSimResult", "CoSimulator"]


@dataclass
class CoSimResult:
    """Joint algorithm/hardware outcome of one generation run."""

    tokens: list
    cache_lengths: list
    num_evictions: int
    attention_cycles_per_step: list
    total_decode_cycles: float

    @property
    def mean_attention_cycles(self):
        if not self.attention_cycles_per_step:
            raise ValueError("no decode steps recorded")
        return sum(self.attention_cycles_per_step) / len(
            self.attention_cycles_per_step
        )


class CoSimulator:
    """Couples a generation engine with an accelerator configuration.

    Parameters
    ----------
    engine:
        A configured :class:`repro.core.engine.GenerationEngine` (model,
        policy, budget).
    hw:
        Hardware configuration (default: full VEDA).
    hw_model:
        Model config whose *shapes* are priced by the simulator; defaults
        to the engine's own model config, so scaled studies price the
        scaled model, and Llama-7B shapes can be substituted to project
        edge latencies from small-model cache trajectories.
    """

    def __init__(self, engine: GenerationEngine, hw: HardwareConfig = None,
                 hw_model=None):
        self.engine = engine
        self.hw = hw or veda_config()
        self.hw_model = hw_model or engine.model.config
        self.simulator = AcceleratorSimulator(self.hw, self.hw_model)

    def run(self, prompt, max_new_tokens, **generate_kwargs):
        """Generate with the real policy; price every step's cache length."""
        result = self.engine.generate(prompt, max_new_tokens, **generate_kwargs)

        attention_cycles = []
        total_cycles = 0.0
        # cache_lengths[0] is the post-prefill state; each subsequent
        # entry is the post-step length.  The attention in step i ran
        # against (previous length + 1) entries (append-then-evict).
        for previous in result.cache_lengths[:-1]:
            length = previous + 1
            breakdown = decode_attention(
                length, self.hw_model.head_dim, self.hw_model.n_heads, self.hw
            )
            per_layer = breakdown.total
            attention_cycles.append(per_layer * self.hw_model.n_layers)
            step = self.simulator.decode_step(length)
            total_cycles += step.cycles

        return CoSimResult(
            tokens=result.tokens,
            cache_lengths=result.cache_lengths,
            num_evictions=result.num_evictions,
            attention_cycles_per_step=attention_cycles,
            total_decode_cycles=total_cycles,
        )

"""Request and sequence-state model for the serving scheduler.

A :class:`Request` is what a client submits: a prompt, a generation
budget, and an arrival time (measured in scheduler decode rounds, the
discrete clock of the simulation).  A :class:`SequenceState` is the
scheduler's per-request working state while the request is live: its own
:class:`~repro.core.kv_cache.KVCache`, its own eviction-policy instance
(votes are per-sequence state), its sampling RNG, and the pending logits
from which the next token will be sampled.

The state machine is ``QUEUED -> [PREFILLING ->] RUNNING -> FINISHED``
(the ``PREFILLING`` stage only exists under chunked prefill, where a
prompt spans several scheduler rounds before its first token can be
sampled); the per-phase timestamps it records (arrival, admission, first
token, completion) are what the scheduler's latency statistics — TTFT,
per-token latency, deadline misses — are computed from.

Two-way scheduling (``Scheduler(preempt=...)``) adds the preempted
states: ``PREEMPTED`` (device state dropped; the sequence re-admits by
re-prefilling its prompt plus the tokens generated so far) and
``SWAPPED`` (device state paged to the modeled host pool; the sequence
re-admits by swapping the saved blocks back in).  Both return to
``PREFILLING``/``RUNNING`` through the ordinary admission queue; see
:class:`repro.serve.resources.KVResourceManager` for the resource side
of the lifecycle.

A request the scheduler cannot serve (e.g. its worst-case block demand
exceeds a fixed paged pool) is turned into a structured
:class:`Rejection` instead of silently dropping, so engine-level
admission can retry, degrade, or report it.

Worked example — requests validate their inputs up front::

    >>> import numpy as np
    >>> from repro.serve.request import Request
    >>> request = Request("r0", np.array([1, 2, 3]), max_new_tokens=4, budget=8,
    ...                   deadline=40, priority=2)
    >>> request.arrival_time, request.eos, request.budget, request.deadline
    (0, None, 8, 40)
    >>> Request("bad", np.array([1, 2]), max_new_tokens=0)
    Traceback (most recent call last):
        ...
    ValueError: max_new_tokens must be positive
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Request",
    "Rejection",
    "SequenceState",
    "QUEUED",
    "PREFILLING",
    "RUNNING",
    "FINISHED",
    "PREEMPTED",
    "SWAPPED",
]

#: Sequence lifecycle states.
QUEUED = "queued"
#: Admitted, but the prompt is still being prefilled in chunks; the
#: sequence owns a batch slot and a cache but cannot sample yet.
PREFILLING = "prefilling"
RUNNING = "running"
FINISHED = "finished"
#: Preempted with ``preempt="recompute"``: all device state dropped; the
#: sequence waits for re-admission, at which point its prompt *plus the
#: tokens generated so far* are re-prefilled.
PREEMPTED = "preempted"
#: Preempted with ``preempt="swap"``: KV state paged out to the modeled
#: host pool; the sequence waits for re-admission, at which point the
#: saved blocks are paged back in and decoding resumes exactly where it
#: stopped.
SWAPPED = "swapped"


@dataclass
class Request:
    """One client request to the serving scheduler.

    Parameters
    ----------
    request_id:
        Caller-chosen hashable id, unique among live requests.
    prompt:
        Token ids to prefill, non-empty 1-D.
    max_new_tokens:
        Generation cap; the request retires after this many tokens even
        without an EOS.
    arrival_time:
        Scheduler round at which the request becomes visible for
        admission (0 = present from the start).
    eos:
        Optional stop-token id.
    seed:
        Seed for the request's private sampling RNG (greedy sampling
        ignores it but stochastic samplers stay reproducible per request
        regardless of batch composition).
    budget:
        Optional per-request KV cache budget overriding the scheduler's
        default (``None`` = use the scheduler default).
    deadline:
        Optional SLA deadline: the scheduler round by which the request
        should have *finished*.  Purely advisory for the FIFO scheduler;
        the engine's EDF admission orders by it and the report counts
        misses (``None`` = no deadline).
    priority:
        Scheduling priority (higher = more urgent); consumed by the
        engine's priority admission policy, ignored by plain FIFO.
    n:
        Parallel samples: ``n > 1`` returns ``n`` independent
        continuations of the same prompt.  The prompt is prefilled once;
        at prefill completion the sequence is forked into ``n`` branches
        sharing all prompt KV blocks copy-on-write (paged mode), each
        sampling with its own RNG seeded ``seed + branch_index`` — so
        branch ``i`` is bit-identical to an independent request with
        ``seed = seed + i``.
    beam_width:
        Beam search: ``beam_width > 1`` decodes with joint per-round
        top-``beam_width`` selection over cumulative log-probabilities.
        Losing branches are pruned (released through the retirement
        path); a branch with several surviving successors CoW-forks.
        Mutually exclusive with ``n > 1``; the sampler is ignored (beam
        scoring is deterministic).
    length_penalty:
        Length-normalization exponent ``alpha`` for beam scoring:
        hypotheses are ranked by ``cum_logprob / len(tokens) ** alpha``
        (GNMT-style), both at the per-round joint selection and at the
        final best-hypothesis pick.  ``alpha = 0`` (the default) divides
        by 1 and is bit-identical to raw cumulative log-probability;
        larger values counteract the inherent bias toward short
        hypotheses.  Ignored unless ``beam_width > 1``.
    """

    request_id: object
    prompt: np.ndarray
    max_new_tokens: int
    arrival_time: int = 0
    eos: int | None = None
    seed: int = 0
    budget: int | None = None
    deadline: int | None = None
    priority: int = 0
    n: int = 1
    beam_width: int = 1
    length_penalty: float = 0.0

    def __post_init__(self):
        self.prompt = np.asarray(self.prompt)
        if self.prompt.ndim != 1 or self.prompt.shape[0] == 0:
            raise ValueError("prompt must be a non-empty 1-D token array")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive when given")
        if self.deadline is not None and self.deadline < self.arrival_time:
            raise ValueError(
                f"deadline {self.deadline} precedes arrival "
                f"{self.arrival_time}"
            )
        if self.n < 1:
            raise ValueError("n must be at least 1")
        if self.beam_width < 1:
            raise ValueError("beam_width must be at least 1")
        if self.n > 1 and self.beam_width > 1:
            raise ValueError(
                "n and beam_width are mutually exclusive decoding modes"
            )
        if not np.isfinite(self.length_penalty) or self.length_penalty < 0:
            raise ValueError(
                "length_penalty must be a finite non-negative exponent"
            )

    @property
    def num_branches(self):
        """Branch slots this request can occupy at once (1 = plain)."""
        return max(self.n, self.beam_width)


@dataclass
class Rejection:
    """Structured record of a request the scheduler could not accept.

    Produced by :meth:`repro.serve.Scheduler.submit` instead of (or, in
    strict mode, alongside) raising, so engine-level admission can
    degrade gracefully — retry with a smaller budget, route to another
    pool, or surface the reason to the client.  All rejections of a run
    are threaded into ``ServingReport.rejections``.
    """

    request_id: object
    #: Machine-readable reason code (currently ``"pool_too_small"``).
    reason: str
    #: Human-readable explanation.
    detail: str
    #: Worst-case pool blocks the request would need (0 if n/a).
    needed_blocks: int = 0
    #: Total blocks the fixed pool has (0 if n/a).
    pool_blocks: int = 0
    #: Scheduler round at which the rejection happened.
    round_index: int = 0

    def as_row(self):
        """Flat dict for ``ServingReport.rejections``."""
        return {
            "request_id": self.request_id,
            "reason": self.reason,
            "detail": self.detail,
            "needed_blocks": self.needed_blocks,
            "pool_blocks": self.pool_blocks,
            "round": self.round_index,
        }


@dataclass
class SequenceState:
    """Scheduler-side working state of one live request."""

    request: Request
    policy: object = None
    cache: object = None
    rng: object = None
    status: str = QUEUED
    #: Next-token logits pending a sampling decision.
    logits: np.ndarray | None = None
    #: Absolute position of the next token to be decoded.
    position: int = 0
    tokens: list = field(default_factory=list)
    cache_lengths: list = field(default_factory=list)
    evictions: list = field(default_factory=list)
    admitted_at: int | None = None
    finished_at: int | None = None
    finish_reason: str | None = None
    #: Round the first generated token was sampled (TTFT anchor); under
    #: chunked prefill this trails ``admitted_at`` by the prefill rounds.
    first_token_round: int | None = None
    #: Prompt tokens resident in the cache so far (prefix-cache hits plus
    #: prefilled chunks); equals the prompt length once prefill is done.
    prefilled: int = 0
    #: Tokens this admission actually prefills: the request prompt for a
    #: fresh admission, the prompt *plus the tokens generated so far* for
    #: a ``PREEMPTED`` sequence being re-admitted (recompute preemption).
    #: Set by the scheduler at admission; ``None`` while queued.
    prompt_tokens: np.ndarray | None = None
    #: Times this sequence was preempted (either mode).
    preemptions: int = 0
    #: KV slots (per layer, summed over preemptions) this sequence paged
    #: out to / back from the modeled host pool (``preempt="swap"``).
    swapped_out_slots: int = 0
    swapped_in_slots: int = 0
    #: Prefix-trie node of the last full prompt block this sequence
    #: registered/adopted (chunked paged prefill resumes insertion here;
    #: a :class:`~repro.serve.prefix_cache.PrefixNode`, or ``None``).
    prefix_node: object = None
    #: True when a partial/unsnapshotted prefix hit made this sequence's
    #: eviction-policy state impure (rows were adopted without their vote
    #: contributions): its own boundary exports are no longer pure
    #: functions of the prefix and are registered as ``policy_state=None``.
    #: Only ever set on unbudgeted sequences, which never consult the
    #: votes, so generated tokens stay bit-identical to a cold prefill.
    prefix_tainted: bool = False
    #: Monotone submission index (admission-policy tie-breaker).
    submit_index: int = 0
    #: Worst-case pool-block demand reserved at admission (paged mode);
    #: the scheduler holds ``reserved_blocks - cache.owned_blocks`` free
    #: blocks back from later admissions so this sequence can always
    #: grow/CoW to its capacity.
    reserved_blocks: int = 0
    #: Prompt tokens adopted from the prefix cache at admission (their
    #: prefill compute was skipped); 0 when served dense or on a miss.
    prefix_hit_length: int = 0
    #: Draft-model KV cache (speculative decoding).  Modeled as
    #: host-resident: it holds no device pool blocks, survives a swap
    #: (its contents are committed tokens, still valid at resume), and is
    #: dropped with the rest of the derived state on recompute
    #: preemption.  ``None`` until the sequence's first speculative
    #: round, or when speculation is off.
    draft_cache: object = None
    #: Speculative rounds (propose + verify passes) this sequence took.
    spec_rounds: int = 0
    #: Draft tokens proposed for / accepted by this sequence.
    spec_proposed: int = 0
    spec_accepted: int = 0
    #: Family id (the root request's id) when this sequence belongs to a
    #: fork family (parallel sampling or beam search); ``None`` otherwise.
    family: object = None
    #: Branch index within the family (0 = the root sequence).
    branch_index: int = 0
    #: True once the family root has spawned its parallel-sampling
    #: branches (guards against re-forking after a preemption resume).
    forked: bool = False
    #: Cumulative log-probability of the generated tokens (beam scoring).
    cum_logprob: float = 0.0

    @property
    def request_id(self):
        return self.request.request_id

    @property
    def num_generated(self):
        return len(self.tokens)

    @property
    def ttft_rounds(self):
        """Rounds from arrival to the first sampled token (``None``
        until a token exists)."""
        if self.first_token_round is None:
            return None
        return self.first_token_round - self.request.arrival_time

    @property
    def inter_token_rounds(self):
        """Mean rounds between consecutive generated tokens (0.0 for a
        single-token generation or before the first token)."""
        if self.first_token_round is None or self.num_generated <= 1:
            return 0.0
        end = (
            self.finished_at
            if self.finished_at is not None
            else self.first_token_round
        )
        return (end - self.first_token_round) / (self.num_generated - 1)

    @property
    def deadline_missed(self):
        """Whether the request finished after its deadline (``False``
        when no deadline was set or the request is still live)."""
        return (
            self.request.deadline is not None
            and self.finished_at is not None
            and self.finished_at > self.request.deadline
        )

    def finish(self, round_index, reason):
        self.status = FINISHED
        self.finished_at = round_index
        self.finish_reason = reason
        # Release references to the heavyweight per-sequence state; the
        # result fields (tokens, stats, eviction log) stay.
        self.cache = None
        self.policy = None
        self.logits = None
        self.draft_cache = None

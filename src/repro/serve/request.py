"""Request and sequence-state model for the serving scheduler.

A :class:`Request` is what a client submits: a prompt, a generation
budget, and an arrival time (measured in scheduler decode rounds, the
discrete clock of the simulation).  A :class:`SequenceState` is the
scheduler's per-request working state while the request is live: its own
:class:`~repro.core.kv_cache.KVCache`, its own eviction-policy instance
(votes are per-sequence state), its sampling RNG, and the pending logits
from which the next token will be sampled.

The state machine is ``QUEUED -> RUNNING -> FINISHED``; the per-phase
timestamps it records (arrival, admission, completion) are what the
scheduler's latency statistics are computed from.

Worked example — requests validate their inputs up front::

    >>> import numpy as np
    >>> from repro.serve.request import Request
    >>> request = Request("r0", np.array([1, 2, 3]), max_new_tokens=4, budget=8)
    >>> request.arrival_time, request.eos, request.budget
    (0, None, 8)
    >>> Request("bad", np.array([1, 2]), max_new_tokens=0)
    Traceback (most recent call last):
        ...
    ValueError: max_new_tokens must be positive
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Request", "SequenceState", "QUEUED", "RUNNING", "FINISHED"]

#: Sequence lifecycle states.
QUEUED = "queued"
RUNNING = "running"
FINISHED = "finished"


@dataclass
class Request:
    """One client request to the serving scheduler.

    Parameters
    ----------
    request_id:
        Caller-chosen hashable id, unique among live requests.
    prompt:
        Token ids to prefill, non-empty 1-D.
    max_new_tokens:
        Generation cap; the request retires after this many tokens even
        without an EOS.
    arrival_time:
        Scheduler round at which the request becomes visible for
        admission (0 = present from the start).
    eos:
        Optional stop-token id.
    seed:
        Seed for the request's private sampling RNG (greedy sampling
        ignores it but stochastic samplers stay reproducible per request
        regardless of batch composition).
    budget:
        Optional per-request KV cache budget overriding the scheduler's
        default (``None`` = use the scheduler default).
    """

    request_id: object
    prompt: np.ndarray
    max_new_tokens: int
    arrival_time: int = 0
    eos: int | None = None
    seed: int = 0
    budget: int | None = None

    def __post_init__(self):
        self.prompt = np.asarray(self.prompt)
        if self.prompt.ndim != 1 or self.prompt.shape[0] == 0:
            raise ValueError("prompt must be a non-empty 1-D token array")
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive when given")


@dataclass
class SequenceState:
    """Scheduler-side working state of one live request."""

    request: Request
    policy: object = None
    cache: object = None
    rng: object = None
    status: str = QUEUED
    #: Next-token logits pending a sampling decision.
    logits: np.ndarray | None = None
    #: Absolute position of the next token to be decoded.
    position: int = 0
    tokens: list = field(default_factory=list)
    cache_lengths: list = field(default_factory=list)
    evictions: list = field(default_factory=list)
    admitted_at: int | None = None
    finished_at: int | None = None
    finish_reason: str | None = None
    #: Worst-case pool-block demand reserved at admission (paged mode);
    #: the scheduler holds ``reserved_blocks - cache.owned_blocks`` free
    #: blocks back from later admissions so this sequence can always
    #: grow/CoW to its capacity.
    reserved_blocks: int = 0
    #: Prompt tokens adopted from the prefix cache at admission (their
    #: prefill compute was skipped); 0 when served dense or on a miss.
    prefix_hit_length: int = 0

    @property
    def request_id(self):
        return self.request.request_id

    @property
    def num_generated(self):
        return len(self.tokens)

    def finish(self, round_index, reason):
        self.status = FINISHED
        self.finished_at = round_index
        self.finish_reason = reason
        # Release references to the heavyweight per-sequence state; the
        # result fields (tokens, stats, eviction log) stay.
        self.cache = None
        self.policy = None
        self.logits = None

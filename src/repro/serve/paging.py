"""Paged KV-cache storage: a block pool with copy-on-write sharing.

The dense :class:`~repro.core.kv_cache.LayerKVCache` gives every sequence
a private ``capacity``-sized slab, so serving memory scales with
``capacity x batch`` regardless of occupancy — the fragmentation problem
vLLM's block-based allocator solves.  This module stores KV entries in
fixed-size *blocks* drawn from a shared :class:`BlockPool` instead:

- a sequence's per-layer cache is a *block table* (list of block ids)
  plus a logical length; blocks are allocated lazily as the cache grows
  and released as eviction shrinks it past block boundaries;
- blocks are refcounted, so several sequences (and the
  :class:`~repro.serve.prefix_cache.PrefixCache`) can reference one
  physical block; any write to a shared block first copies it
  (copy-on-write), which is what makes cross-request prefix sharing safe
  under voting eviction.

:class:`PagedLayerKVCache` presents exactly the ``keys`` / ``values`` /
``positions`` / ``append`` / ``append_block`` / ``evict`` surface of
``LayerKVCache``, so :meth:`CachedTransformer.step_batch`, ``prefill``
and every eviction policy run unchanged over the paged layout.  The
gathered views are copies (blocks are scattered in pool storage), but
they hold bitwise-identical floats in the same order, so attention — and
therefore every generated token — is bit-identical to the dense path;
``tests/serve/test_paged_equivalence.py`` locks this in across block
sizes.

Worked example — grow, evict, and release against a fixed pool::

    >>> import numpy as np
    >>> from repro.serve.paging import BlockPool, PagedKVCache
    >>> pool = BlockPool(n_heads=2, head_dim=4, block_size=4, num_blocks=8)
    >>> cache = PagedKVCache(pool, n_layers=1, capacity=16)
    >>> for position in range(5):
    ...     cache[0].append(np.ones((2, 4)), np.zeros((2, 4)), position)
    >>> cache[0].length, cache[0].num_blocks, pool.num_free
    (5, 2, 6)
    >>> cache[0].evict(0)            # compaction preserves position order
    0
    >>> cache[0].positions.tolist()
    [1, 2, 3, 4]
    >>> cache[0].num_blocks, pool.num_free   # emptied tail block returned
    (1, 7)
    >>> cache.release()              # retirement frees everything
    >>> pool.num_free
    8
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BlockPool",
    "BlockPoolExhausted",
    "PagedKVCache",
    "PagedLayerKVCache",
]


class BlockPoolExhausted(RuntimeError):
    """Raised when a fixed-size pool cannot satisfy an allocation."""


class BlockPool:
    """A pool of fixed-size KV blocks with a free list and refcounts.

    One physical block holds ``block_size`` consecutive cache slots of one
    layer of one sequence: keys and values for all heads plus the slots'
    absolute positions.  Blocks are handed out by integer id.

    Invariants: every live block has refcount >= 1 and is absent from
    the free list; ``num_free + num_used == num_blocks``; allocation
    order is deterministic (LIFO free list, low ids first), so paged
    runs are bit-reproducible.

    Parameters
    ----------
    n_heads, head_dim:
        Shape of one KV vector (matches the model).
    block_size:
        Cache slots per block.  Small blocks waste less memory on partial
        tails but cost more gather/bookkeeping per access.
    num_blocks:
        Fixed capacity; ``None`` makes the pool growable (it doubles its
        storage on demand and never raises :class:`BlockPoolExhausted`),
        which matches the dense path's unbounded-slab behaviour.
    """

    def __init__(self, n_heads, head_dim, block_size, num_blocks=None):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if num_blocks is not None and num_blocks <= 0:
            raise ValueError(f"num_blocks must be positive, got {num_blocks}")
        self.n_heads = int(n_heads)
        self.head_dim = int(head_dim)
        self.block_size = int(block_size)
        self.growable = num_blocks is None
        capacity = 32 if num_blocks is None else int(num_blocks)
        self.keys = np.zeros((capacity, self.n_heads, self.block_size, self.head_dim))
        self.values = np.zeros_like(self.keys)
        self.positions = np.full((capacity, self.block_size), -1, dtype=np.int64)
        self._refcounts = np.zeros(capacity, dtype=np.int64)
        # LIFO free list (ids descending so pop() reuses low ids first);
        # deterministic allocation order keeps paged runs reproducible.
        self._free = list(range(capacity - 1, -1, -1))
        #: Optional callable ``n -> freed`` asked to release blocks (e.g.
        #: prefix-cache LRU reclaim) before the pool grows or gives up.
        self.reclaimer = None
        self.cow_copies = 0
        self.total_allocations = 0
        self.peak_in_use = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_blocks(self):
        return self._refcounts.shape[0]

    @property
    def num_free(self):
        return len(self._free)

    @property
    def num_used(self):
        return self.num_blocks - len(self._free)

    def refcount(self, block_id):
        return int(self._refcounts[block_id])

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self):
        """Take a free block; returns its integer id.

        The block starts at refcount 1 with its position slots reset to
        -1.  Under pressure the ``reclaimer`` hook is asked to shed
        blocks first; a growable pool then doubles its storage, while a
        fixed pool raises :class:`BlockPoolExhausted`.
        """
        if not self._free and self.reclaimer is not None:
            self.reclaimer(1)
        if not self._free:
            if not self.growable:
                raise BlockPoolExhausted(
                    f"block pool exhausted: all {self.num_blocks} blocks "
                    f"(block_size={self.block_size}) are live"
                )
            self._grow()
        block_id = self._free.pop()
        self._refcounts[block_id] = 1
        self.positions[block_id] = -1
        self.total_allocations += 1
        self.peak_in_use = max(self.peak_in_use, self.num_used)
        return block_id

    def retain(self, block_id):
        """Add a reference to a live block (prefix sharing / forking)."""
        if self._refcounts[block_id] <= 0:
            raise ValueError(f"retain of free block {block_id}")
        self._refcounts[block_id] += 1

    def release(self, block_id):
        """Drop one reference; a block at refcount 0 returns to the free
        list.  Returns the remaining refcount."""
        if self._refcounts[block_id] <= 0:
            raise ValueError(f"release of free block {block_id}")
        self._refcounts[block_id] -= 1
        remaining = int(self._refcounts[block_id])
        if remaining == 0:
            self._free.append(block_id)
        return remaining

    def copy_block(self, block_id):
        """Allocate a fresh block holding a copy of ``block_id`` (CoW)."""
        new_id = self.allocate()
        self.keys[new_id] = self.keys[block_id]
        self.values[new_id] = self.values[block_id]
        self.positions[new_id] = self.positions[block_id]
        self.cow_copies += 1
        return new_id

    def _grow(self):
        old = self.num_blocks
        new = old * 2
        grown_keys = np.zeros(
            (new, self.n_heads, self.block_size, self.head_dim)
        )
        grown_keys[:old] = self.keys
        self.keys = grown_keys
        grown_values = np.zeros_like(grown_keys)
        grown_values[:old] = self.values
        self.values = grown_values
        grown_positions = np.full((new, self.block_size), -1, dtype=np.int64)
        grown_positions[:old] = self.positions
        self.positions = grown_positions
        grown_refcounts = np.zeros(new, dtype=np.int64)
        grown_refcounts[:old] = self._refcounts
        self._refcounts = grown_refcounts
        self._free.extend(range(new - 1, old - 1, -1))

    def __repr__(self):
        return (
            f"BlockPool(blocks={self.num_blocks}, free={self.num_free}, "
            f"block_size={self.block_size}, growable={self.growable})"
        )


class PagedLayerKVCache:
    """One layer's KV cache over pool blocks — a ``LayerKVCache`` twin.

    The logical cache is the concatenation of the table's blocks truncated
    to ``length``; compaction on :meth:`evict` keeps slot order exactly
    like the dense cache (entries stay sorted by position), and any write
    that would touch a block referenced elsewhere copies it first.
    """

    def __init__(self, pool, capacity):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.pool = pool
        self.n_heads = pool.n_heads
        self.head_dim = pool.head_dim
        self.capacity = int(capacity)
        self.length = 0
        self._table = []
        # Parallel to _table: True for blocks this cache allocated (or
        # CoW-copied), False for adopted shared-prefix blocks.  The
        # scheduler's admission reservation uses the owned count to bound
        # a sequence's remaining pool demand: every future allocation is
        # either a new table slot or a CoW of an adopted slot, so demand
        # <= ceil(capacity / block_size) - owned_blocks per layer.
        self._owned = []

    # ------------------------------------------------------------------
    # Views (gathered copies, bitwise-equal to the dense layout)
    # ------------------------------------------------------------------
    @property
    def block_size(self):
        return self.pool.block_size

    @property
    def block_ids(self):
        """The block table (tuple of pool block ids), oldest first."""
        return tuple(self._table)

    @property
    def num_blocks(self):
        return len(self._table)

    @property
    def owned_blocks(self):
        """Table blocks allocated by this cache (not adopted shares)."""
        return sum(self._owned)

    @property
    def shared_blocks(self):
        """Table blocks other holders also reference (pool refcount > 1):
        adopted prefix blocks *and* own blocks registered in a prefix
        cache.  Each is one potential copy-on-write allocation — the
        exact per-step CoW bound resource accounting needs (``owned``
        alone misses registered-after-write sharing)."""
        return sum(1 for block_id in self._table if self.pool.refcount(block_id) > 1)

    @property
    def shared_tail_blocks(self):
        """1 when the next append writes into a still-shared block (a
        fork branch's partial tail), 0 otherwise.  A block-aligned length
        allocates fresh instead, which the tail-crossing demand term
        already counts."""
        if self.length % self.block_size == 0 or not self._table:
            return 0
        return 1 if self.pool.refcount(self._table[-1]) > 1 else 0

    def _gather(self, storage, start=0):
        """Copies of slots [start, length), dense-layout, (H, n, d)."""
        first = start // self.block_size
        table = self._table[first:]
        if not table:
            return np.empty((self.n_heads, 0, storage.shape[3]))
        blocks = storage[np.array(table)]  # (nb, H, B, d) copy
        merged = blocks.transpose(1, 0, 2, 3).reshape(
            self.n_heads, len(table) * self.block_size, storage.shape[3]
        )
        if not merged.flags.c_contiguous:
            # block_size 1 lets the reshape collapse to a strided view;
            # force the dense cache's (slot-stride == head_dim) layout so
            # downstream einsums take the same inner loop — and therefore
            # the same accumulation order — as the contiguous case.
            merged = np.ascontiguousarray(merged)
        base = first * self.block_size
        return merged[:, start - base : self.length - base]

    @property
    def keys(self):
        """Occupied key slots, shape (H, length, head_dim)."""
        return self._gather(self.pool.keys)

    @property
    def values(self):
        """Occupied value slots, shape (H, length, head_dim)."""
        return self._gather(self.pool.values)

    @property
    def positions(self):
        """Absolute token positions of occupied slots, shape (length,)."""
        return self._gather_positions()

    def _gather_positions(self, start=0):
        first = start // self.block_size
        table = self._table[first:]
        if not table:
            return np.empty(0, dtype=np.int64)
        base = first * self.block_size
        return self.pool.positions[np.array(table)].reshape(-1)[
            start - base : self.length - base
        ]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, key, value, position):
        """Append one token's kv vectors; ``key``/``value`` are (H, d)."""
        if self.length >= self.capacity:
            raise RuntimeError(
                f"KV cache overflow: capacity {self.capacity} exhausted "
                "(the eviction policy failed to keep the cache bounded)"
            )
        key = np.asarray(key)
        value = np.asarray(value)
        expected = (self.n_heads, self.head_dim)
        if key.shape != expected or value.shape != expected:
            raise ValueError(
                f"kv shapes {key.shape}/{value.shape} != expected {expected}"
            )
        offset = self.length % self.block_size
        if offset == 0:
            self._table.append(self.pool.allocate())
            self._owned.append(True)
        else:
            self._ensure_owned(len(self._table) - 1)
        block_id = self._table[-1]
        self.pool.keys[block_id][:, offset] = key
        self.pool.values[block_id][:, offset] = value
        self.pool.positions[block_id, offset] = int(position)
        self.length += 1

    def append_block(self, keys, values, positions):
        """Append a prefill block; ``keys``/``values`` are (H, L, d)."""
        keys = np.asarray(keys)
        values = np.asarray(values)
        positions = np.asarray(positions, dtype=np.int64)
        block = keys.shape[1]
        if self.length + block > self.capacity:
            raise RuntimeError(
                f"KV cache overflow: {self.length} + {block} > {self.capacity}"
            )
        written = 0
        while written < block:
            offset = self.length % self.block_size
            if offset == 0:
                self._table.append(self.pool.allocate())
                self._owned.append(True)
            else:
                self._ensure_owned(len(self._table) - 1)
            block_id = self._table[-1]
            count = min(self.block_size - offset, block - written)
            stop = written + count
            self.pool.keys[block_id][:, offset : offset + count] = keys[
                :, written:stop
            ]
            self.pool.values[block_id][:, offset : offset + count] = values[
                :, written:stop
            ]
            self.pool.positions[block_id, offset : offset + count] = positions[
                written:stop
            ]
            self.length += count
            written = stop

    def evict(self, index):
        """Remove slot ``index``, compacting the tail left by one.

        Mirrors ``LayerKVCache.evict`` (position order preserved); blocks
        written during compaction are copied first if shared, and a tail
        block that empties out is released back to the pool.  Returns the
        absolute position that was evicted.
        """
        if not 0 <= index < self.length:
            raise IndexError(f"evict index {index} out of range [0, {self.length})")
        evicted_position = int(
            self.pool.positions[
                self._table[index // self.block_size], index % self.block_size
            ]
        )
        if index < self.length - 1:
            # Gather only the tail's blocks once (the gathers are copies,
            # so the scatter below cannot alias its own source).
            tail_keys = self._gather(self.pool.keys, index + 1)
            tail_values = self._gather(self.pool.values, index + 1)
            tail_positions = self._gather_positions(index + 1)
            self._write_span(index, tail_keys, tail_values, tail_positions)
        self.length -= 1
        self._trim()
        return evicted_position

    def _write_span(self, start, keys, values, positions):
        """Scatter (H, n, d) data into slots [start, start+n), CoW-ing any
        shared block it touches."""
        count = keys.shape[1]
        written = 0
        while written < count:
            slot = start + written
            table_index = slot // self.block_size
            offset = slot % self.block_size
            self._ensure_owned(table_index)
            block_id = self._table[table_index]
            chunk = min(self.block_size - offset, count - written)
            stop = written + chunk
            self.pool.keys[block_id][:, offset : offset + chunk] = keys[
                :, written:stop
            ]
            self.pool.values[block_id][:, offset : offset + chunk] = values[
                :, written:stop
            ]
            self.pool.positions[block_id, offset : offset + chunk] = positions[
                written:stop
            ]
            written = stop

    def _ensure_owned(self, table_index):
        """Copy-on-write: make ``table_index`` writable by this cache."""
        block_id = self._table[table_index]
        if self.pool.refcount(block_id) > 1:
            new_id = self.pool.copy_block(block_id)
            self.pool.release(block_id)
            self._table[table_index] = new_id
            self._owned[table_index] = True

    def _trim(self):
        """Release tail blocks no longer covered by ``length``."""
        needed = -(-self.length // self.block_size)  # ceil
        while len(self._table) > needed:
            self.pool.release(self._table.pop())
            self._owned.pop()

    def truncate(self, length):
        """Roll the cache back to its first ``length`` slots.

        The speculative-decoding rollback primitive, mirroring
        ``LayerKVCache.truncate``: the rejected provisional suffix is
        dropped and any tail block it emptied returns to the pool
        immediately (no leak — pool accounting after a rollback is
        identical to never having appended the suffix).  Safe against
        shared blocks because appends always copy-on-write a shared
        block before writing, so provisional slots only ever live in
        blocks this cache exclusively owns; stale data left in a
        surviving block past ``length`` is never read (views truncate to
        ``length``) and is overwritten slot-by-slot on re-append.
        """
        if not 0 <= length <= self.length:
            raise ValueError(
                f"truncate length {length} out of range [0, {self.length}]"
            )
        self.length = length
        self._trim()

    # ------------------------------------------------------------------
    # Prefix sharing
    # ------------------------------------------------------------------
    def attach_blocks(self, block_ids, length):
        """Adopt shared blocks as this cache's prefix (refcounted).

        Only valid on an empty cache.  ``length`` must land inside the
        last adopted block: every block but the last is adopted in full,
        while the last may be covered only partially (a radix-trie
        partial-tail hit adopts the divergent block too; the first
        append past ``length`` then lands at a non-zero block offset and
        copies the block via :meth:`_ensure_owned` — ordinary CoW, so
        the resident prefix is never clobbered).
        """
        if self.length or self._table:
            raise RuntimeError("attach_blocks on a non-empty cache")
        if not (
            (len(block_ids) - 1) * self.block_size
            < length
            <= len(block_ids) * self.block_size
        ):
            raise ValueError(
                f"shared prefix length {length} does not land in the last "
                f"of {len(block_ids)} blocks x {self.block_size} slots"
            )
        if length > self.capacity:
            raise RuntimeError(
                f"KV cache overflow: shared prefix {length} > {self.capacity}"
            )
        for block_id in block_ids:
            self.pool.retain(block_id)
            self._table.append(block_id)
            self._owned.append(False)
        self.length = length

    def fork(self):
        """A copy-on-write branch of this layer's cache.

        The branch adopts the *entire* current table — every block
        retained, none owned — so fork costs only refcounts and table
        metadata, no KV traffic.  Divergence pays as it happens: the
        branch's (or the parent's) first write into a still-shared block
        goes through the ordinary :meth:`_ensure_owned` copy-on-write,
        including a mid-block append into a partial tail.  A branch whose
        tail shrinks back past a shared block releases just its reference
        (``join``/prune never frees blocks another branch still holds).
        """
        clone = PagedLayerKVCache(self.pool, self.capacity)
        for block_id in self._table:
            self.pool.retain(block_id)
            clone._table.append(block_id)
            clone._owned.append(False)
        clone.length = self.length
        return clone

    def release(self):
        """Return every table block to the pool (sequence retirement)."""
        while self._table:
            self.pool.release(self._table.pop())
            self._owned.pop()
        self.length = 0

    def __len__(self):
        return self.length

    def __repr__(self):
        return (
            f"PagedLayerKVCache(heads={self.n_heads}, head_dim={self.head_dim}, "
            f"length={self.length}/{self.capacity}, blocks={len(self._table)})"
        )


class PagedKVCache:
    """The full model cache over a shared pool: one paged cache per layer.

    Drop-in for :class:`~repro.core.kv_cache.KVCache` (same ``layers`` /
    ``lengths`` / indexing surface) plus the paged extras: adopting a
    shared prefix and releasing all blocks on retirement.
    """

    def __init__(self, pool, n_layers, capacity):
        if n_layers <= 0:
            raise ValueError(f"n_layers must be positive, got {n_layers}")
        self.pool = pool
        self.layers = [PagedLayerKVCache(pool, capacity) for _ in range(n_layers)]

    @property
    def n_layers(self):
        return len(self.layers)

    @property
    def lengths(self):
        return [layer.length for layer in self.layers]

    @property
    def num_blocks(self):
        """Blocks currently referenced by this sequence, over all layers."""
        return sum(layer.num_blocks for layer in self.layers)

    @property
    def owned_blocks(self):
        """Blocks this sequence allocated itself, over all layers."""
        return sum(layer.owned_blocks for layer in self.layers)

    @property
    def shared_blocks(self):
        """Blocks with pool refcount > 1 (CoW candidates), all layers."""
        return sum(layer.shared_blocks for layer in self.layers)

    @property
    def shared_tail_blocks(self):
        """Layers whose next append must copy-on-write a shared partial
        tail block (post-fork divergence), over all layers."""
        return sum(layer.shared_tail_blocks for layer in self.layers)

    def attach_prefix(self, layer_block_ids, length):
        """Adopt a shared prefix: ``layer_block_ids[l]`` are the block ids
        for layer ``l``; every layer adopts ``length`` slots."""
        if len(layer_block_ids) != self.n_layers:
            raise ValueError(
                f"{len(layer_block_ids)} block lists != {self.n_layers} layers"
            )
        for layer, block_ids in zip(self.layers, layer_block_ids):
            layer.attach_blocks(block_ids, length)

    def truncate(self, length):
        """Roll every layer back to ``length`` slots (spec-decode rollback)."""
        for layer in self.layers:
            layer.truncate(length)

    def fork(self):
        """A copy-on-write branch: every layer's table shared, refcounted."""
        clone = PagedKVCache.__new__(PagedKVCache)
        clone.pool = self.pool
        clone.layers = [layer.fork() for layer in self.layers]
        return clone

    def release(self):
        """Release every layer's blocks back to the pool."""
        for layer in self.layers:
            layer.release()

    def __getitem__(self, layer_index):
        return self.layers[layer_index]

    def __iter__(self):
        return iter(self.layers)

    def __repr__(self):
        return (
            f"PagedKVCache(layers={self.n_layers}, lengths={self.lengths}, "
            f"blocks={self.num_blocks})"
        )

"""Multi-replica serving fleet: placement routing over engine replicas.

One :class:`~repro.serve.engine.ServingEngine` is one accelerator's
serving loop.  Production deployments run many identical replicas behind
a router, and the router's placement decision is where serving-level
wins (or losses) live: a prefix-heavy workload served round-robin
scatters shareable prompts across replicas whose radix tries never see
each other's blocks, while affinity routing concentrates each prefix
family on one replica and multiplies its token hit rate.

:class:`ServingFleet` runs ``replicas`` engines — each with its *own*
scheduler, KV block pool, and prefix trie — in lock-step on a shared
simulated clock, fed from a single arrival stream through a
:class:`FleetRouter` with pluggable placement policies:

- ``round_robin`` — cycle through replicas in submission order.
- ``least_loaded`` — fewest outstanding tokens (unprefilled prompt rows
  plus ungenerated decode tokens); ties break toward more free KV
  capacity, then the lowest replica index.
- ``prefix_affinity`` — probe every replica's radix trie for the longest
  cached prefix of the prompt (:meth:`Scheduler.prefix_probe`, a pure
  read) and route to the deepest match; ties — including the all-miss
  case — fall back to the least-loaded rule.

**Fleet equivalence guarantee.**  Placement never changes tokens: a
request's generation depends only on its own prompt, seed, and budget
(batched decode is bit-identical to solo decode by construction), so
every placement policy — and a single engine serving the same stream —
produces identical per-request token sequences.  The differential
harness in ``tests/serve/test_fleet.py`` pins this across placement
policies × dense/paged × eviction policies.  What placement *does*
change is everything the :class:`FleetReport` measures: TTFT, deadline
misses, load imbalance, and the cross-fleet prefix token hit rate.

Fleet-level co-simulation replays each replica's trace on its own
accelerator cycle model (optionally tensor-parallel over ``tp`` PE
clusters; see :class:`~repro.accel.simulator.AcceleratorSimulator`).
Replicas run concurrently, so fleet makespan is the *slowest* replica's
cycle count and fleet throughput is total tokens over that makespan.

Worked example — two replicas, affinity routing::

    >>> import numpy as np
    >>> from repro.config import tiny_config
    >>> from repro.models.inference import CachedTransformer
    >>> from repro.models.transformer import TransformerLM
    >>> from repro.serve import Request, ServingFleet
    >>> model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    >>> fleet = ServingFleet(model, replicas=2, placement="prefix_affinity",
    ...                      paged=True, num_blocks=64, block_size=4)
    >>> shared = np.arange(12) % 7 + 1
    >>> handles = fleet.play([
    ...     Request(f"r{i}", shared.copy(), max_new_tokens=4, seed=i)
    ...     for i in range(4)
    ... ])
    >>> [h.done for h in handles]
    [True, True, True, True]
    >>> report = fleet.report()
    >>> report.num_replicas, sorted(report.placements.values())[0] in (0, 1)
    (2, True)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serve.cosim import ServingCoSimulator
from repro.serve.engine import ServingEngine

__all__ = [
    "PlacementPolicy",
    "RoundRobinPlacement",
    "LeastLoadedPlacement",
    "PrefixAffinityPlacement",
    "make_placement",
    "available_placements",
    "FleetRouter",
    "FleetReport",
    "FleetCoSimReport",
    "ServingFleet",
]


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
def _load_key(engines, index):
    """Least-loaded ordering key: fewest outstanding tokens, then most
    free KV capacity, then lowest index (fully deterministic)."""
    engine = engines[index]
    return (engine.outstanding_tokens, -engine.free_kv_capacity, index)


class PlacementPolicy:
    """Chooses the replica a new request is submitted to.

    :meth:`choose` sees the full replica list and may read any replica's
    load/cache introspection, but must not mutate replica state — the
    router calls it exactly once per request, *before* submission."""

    name = "placement"

    def choose(self, request, engines):
        """Replica index in ``range(len(engines))`` for ``request``."""
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    """Cycle through replicas in submission order (load-blind)."""

    name = "round_robin"

    def __init__(self):
        self._next = 0

    def choose(self, request, engines):
        index = self._next % len(engines)
        self._next += 1
        return index


class LeastLoadedPlacement(PlacementPolicy):
    """Fewest outstanding tokens; ties toward more free KV capacity."""

    name = "least_loaded"

    def choose(self, request, engines):
        return min(range(len(engines)), key=lambda i: _load_key(engines, i))


class PrefixAffinityPlacement(PlacementPolicy):
    """Deepest radix-trie prefix match wins; ties go least-loaded.

    Every replica's trie is probed read-only for the longest cached
    prefix of the request's prompt.  The property suite asserts the
    chosen replica's match is never strictly shorter than the best
    available; with no match anywhere (all probes 0) the policy is
    exactly :class:`LeastLoadedPlacement`.
    """

    name = "prefix_affinity"

    def choose(self, request, engines):
        matches = [engine.prefix_probe(request) for engine in engines]
        best = max(matches)
        tied = [i for i, match in enumerate(matches) if match == best]
        return min(tied, key=lambda i: _load_key(engines, i))


_PLACEMENTS = {
    "round_robin": RoundRobinPlacement,
    "least_loaded": LeastLoadedPlacement,
    "prefix_affinity": PrefixAffinityPlacement,
}


def make_placement(name, **kwargs):
    """Instantiate a placement policy by name (``round_robin`` /
    ``least_loaded`` / ``prefix_affinity``)."""
    if name not in _PLACEMENTS:
        raise KeyError(
            f"unknown placement policy {name!r}; "
            f"available: {sorted(_PLACEMENTS)}"
        )
    return _PLACEMENTS[name](**kwargs)


def available_placements():
    """Sorted names of the registered placement policies."""
    return sorted(_PLACEMENTS)


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
class FleetRouter:
    """Binds a placement policy to a replica set and records the
    resulting assignment (``request_id -> replica index``)."""

    def __init__(self, placement="round_robin"):
        if isinstance(placement, str):
            placement = make_placement(placement)
        self.policy = placement
        #: request_id -> replica index, submission order.
        self.placements = {}

    def route(self, request, engines):
        """Choose (and record) the replica for ``request``."""
        index = self.policy.choose(request, engines)
        if not 0 <= index < len(engines):
            raise ValueError(
                f"placement {self.policy.name!r} chose replica {index} "
                f"of {len(engines)}"
            )
        self.placements[request.request_id] = index
        return index


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class FleetReport:
    """Per-replica :class:`~repro.serve.scheduler.ServingReport` objects
    plus the fleet-wide aggregates placement policies compete on."""

    placement: str = "round_robin"
    #: One ServingReport per replica, replica order.
    replicas: list = field(default_factory=list)
    #: request_id -> replica index for every routed request.
    placements: dict = field(default_factory=dict)

    @property
    def num_replicas(self):
        return len(self.replicas)

    @property
    def requests(self):
        """All replicas' per-request rows, pooled (each row gains a
        ``replica`` key)."""
        rows = []
        for index, report in enumerate(self.replicas):
            for row in report.requests:
                rows.append({**row, "replica": index})
        return rows

    @property
    def rejections(self):
        return [row for r in self.replicas for row in r.rejections]

    @property
    def tokens_per_replica(self):
        return [report.total_tokens for report in self.replicas]

    @property
    def total_tokens(self):
        return sum(self.tokens_per_replica)

    @property
    def total_rounds(self):
        """Fleet makespan in rounds (replicas run in lock-step, so this
        is the shared clock's final value)."""
        return max((r.total_rounds for r in self.replicas), default=0)

    @property
    def mean_ttft(self):
        """Mean TTFT in rounds over every request in the fleet."""
        ttfts = [
            row["ttft_rounds"]
            for row in self.requests
            if row.get("ttft_rounds") is not None
        ]
        return float(np.mean(ttfts)) if ttfts else 0.0

    @property
    def p95_ttft(self):
        ttfts = [
            row["ttft_rounds"]
            for row in self.requests
            if row.get("ttft_rounds") is not None
        ]
        return float(np.percentile(ttfts, 95)) if ttfts else 0.0

    @property
    def deadline_miss_rate(self):
        """Fleet-wide misses over requests carrying a deadline."""
        rows = self.requests
        with_deadline = sum(1 for row in rows if row.get("deadline") is not None)
        misses = sum(1 for row in rows if row.get("deadline_miss"))
        return misses / with_deadline if with_deadline else 0.0

    @property
    def load_imbalance(self):
        """Max over mean of per-replica generated tokens (1.0 = perfectly
        balanced; ``replicas`` = everything on one replica; 0.0 on an
        empty run)."""
        tokens = self.tokens_per_replica
        total = sum(tokens)
        if not tokens or total == 0:
            return 0.0
        return max(tokens) / (total / len(tokens))

    @property
    def prompt_tokens_seen(self):
        return sum(r.prompt_tokens_seen for r in self.replicas)

    @property
    def prefix_tokens_hit(self):
        return sum(r.prefix_tokens_hit for r in self.replicas)

    @property
    def prefix_token_hit_rate(self):
        """Cross-fleet token-weighted prefix hit rate — the number
        placement policies move: affinity routing concentrates prefix
        families so their tokens actually hit."""
        seen = self.prompt_tokens_seen
        return self.prefix_tokens_hit / seen if seen else 0.0

    def summary(self):
        """Flat dict of the fleet aggregates (for experiment tables)."""
        summary = {
            "placement": self.placement,
            "replicas": self.num_replicas,
            "requests": len(self.requests),
            "tokens": self.total_tokens,
            "rounds": self.total_rounds,
            "mean_ttft_rounds": self.mean_ttft,
            "p95_ttft_rounds": self.p95_ttft,
            "load_imbalance": self.load_imbalance,
        }
        if any(row.get("deadline") is not None for row in self.requests):
            summary["deadline_miss_rate"] = self.deadline_miss_rate
        if self.prompt_tokens_seen:
            summary["prefix_token_hit_rate"] = self.prefix_token_hit_rate
        if self.rejections:
            summary["rejected"] = len(self.rejections)
        return summary


@dataclass
class FleetCoSimReport:
    """Hardware outcome of replaying every replica's trace.

    Replicas execute concurrently on their own devices, so the fleet
    makespan is the slowest replica's total cycles and fleet throughput
    is total tokens over that makespan.  With ``tp > 1`` each replica is
    itself ``tp`` lock-step PE clusters and the per-replica cycle counts
    already include the all-reduce traffic.
    """

    #: One ServingCoSimReport per replica, replica order.
    replicas: list = field(default_factory=list)
    tp: int = 1

    @property
    def num_replicas(self):
        return len(self.replicas)

    @property
    def clock_ghz(self):
        return self.replicas[0].clock_ghz if self.replicas else 1.0

    @property
    def fleet_cycles(self):
        """Makespan: the slowest replica's serialized cycle count."""
        return max((r.total_cycles for r in self.replicas), default=0.0)

    @property
    def total_tokens(self):
        return sum(r.total_tokens for r in self.replicas)

    @property
    def interconnect_cycles(self):
        """TP all-reduce cycles summed over replicas (0.0 at ``tp=1``)."""
        return sum(r.interconnect_cycles for r in self.replicas)

    @property
    def interconnect_bytes(self):
        return sum(r.interconnect_bytes for r in self.replicas)

    @property
    def wall_seconds(self):
        """Modeled wall-clock of the fleet run (concurrent replicas)."""
        return self.fleet_cycles / (self.clock_ghz * 1e9)

    @property
    def tokens_per_second(self):
        """Fleet throughput: total tokens over the makespan."""
        return self.total_tokens / self.wall_seconds if self.fleet_cycles else 0.0

    @property
    def energy_joules(self):
        """Pooled energy: every replica's device burns its own joules."""
        return sum(r.energy_joules for r in self.replicas)

    @property
    def joules_per_token(self):
        """Fleet energy efficiency: pooled joules over pooled tokens."""
        return self.energy_joules / self.total_tokens if self.total_tokens else 0.0

    def summary(self):
        """Flat dict of the fleet hardware aggregates."""
        summary = {
            "replicas": self.num_replicas,
            "fleet_cycles": self.fleet_cycles,
            "tokens": self.total_tokens,
            "fleet_tokens/s": self.tokens_per_second,
            "joules/token": self.joules_per_token,
        }
        if self.tp > 1:
            summary["tp"] = self.tp
            summary["allreduce_cycles"] = self.interconnect_cycles
            summary["allreduce_mb"] = self.interconnect_bytes / 1e6
        return summary


# ----------------------------------------------------------------------
# The fleet
# ----------------------------------------------------------------------
class ServingFleet:
    """``replicas`` identical :class:`ServingEngine` instances behind a
    :class:`FleetRouter`, in lock-step on one simulated clock.

    Parameters
    ----------
    model:
        A :class:`repro.models.inference.CachedTransformer`, shared by
        every replica (weights are read-only; all mutable state — KV
        pools, tries, schedulers — is per-replica).
    replicas:
        Number of engine replicas (>= 1).
    placement:
        Placement policy: a name (``"round_robin"`` / ``"least_loaded"``
        / ``"prefix_affinity"``) or a :class:`PlacementPolicy` instance.
    engine_kwargs:
        Everything else (``admission``, ``prefill_chunk``, plus all
        :class:`~repro.serve.scheduler.Scheduler` options) is forwarded
        to every replica's engine identically.
    """

    def __init__(self, model, replicas=2, placement="round_robin", **engine_kwargs):
        if replicas < 1:
            raise ValueError("a fleet needs at least one replica")
        self.model = model
        self.engines = [
            ServingEngine(model, **engine_kwargs) for _ in range(replicas)
        ]
        self.router = FleetRouter(placement)

    @property
    def num_replicas(self):
        return len(self.engines)

    @property
    def placement(self):
        """Name of the active placement policy."""
        return self.router.policy.name

    # ------------------------------------------------------------------
    # Clock (shared; replicas advance in lock-step)
    # ------------------------------------------------------------------
    @property
    def now(self):
        return self.engines[0].now

    @property
    def drained(self):
        """Every replica has retired or rejected all its requests."""
        return all(engine.drained for engine in self.engines)

    def skip_to(self, round_index):
        """Jump every replica's idle clock forward to ``round_index``."""
        for engine in self.engines:
            engine.skip_to(round_index)

    # ------------------------------------------------------------------
    # Submission and the loop
    # ------------------------------------------------------------------
    def submit(self, request):
        """Route ``request`` to a replica and submit it there; returns
        that engine's :class:`~repro.serve.engine.RequestHandle`."""
        index = self.router.route(request, self.engines)
        return self.engines[index].submit(request)

    def step(self):
        """Advance every replica by one round (lock-step); returns the
        per-replica :class:`~repro.serve.engine.EngineTick` list."""
        return [engine.step() for engine in self.engines]

    def run_until_drained(self):
        """Step the fleet until every submitted request has retired."""
        while not self.drained:
            self.step()

    def close(self):
        for engine in self.engines:
            engine.close()

    def play(self, requests, drain=True):
        """Feed one shared pre-timed arrival stream through the router.

        Each request is routed and submitted when the shared clock
        reaches its ``arrival_time`` (idle gaps are skipped fleet-wide),
        so placement decisions see exactly the replica state a live
        router would.  Returns the handles in workload order.
        """
        requests = list(requests)
        pending = sorted(requests, key=lambda r: r.arrival_time)
        handles = {}
        index = 0
        while index < len(pending):
            if self.drained and pending[index].arrival_time > self.now:
                self.skip_to(pending[index].arrival_time)
            while (
                index < len(pending)
                and pending[index].arrival_time <= self.now
            ):
                request = pending[index]
                handles[request.request_id] = self.submit(request)
                index += 1
            if index < len(pending):
                self.step()
        if drain:
            self.run_until_drained()
        return [handles[r.request_id] for r in requests]

    # ------------------------------------------------------------------
    # Results and reporting
    # ------------------------------------------------------------------
    def replica_of(self, request_id):
        """Replica index a routed request was placed on."""
        return self.router.placements[request_id]

    def tokens_for(self, request_id):
        """Generated tokens of a retired request, wherever it ran."""
        return self.engines[self.replica_of(request_id)].tokens_for(request_id)

    def report(self):
        """Fleet-wide :class:`FleetReport` over all replicas so far."""
        return FleetReport(
            placement=self.placement,
            replicas=[engine.report() for engine in self.engines],
            placements=dict(self.router.placements),
        )

    def cosim(
        self,
        hw=None,
        hw_model=None,
        dataflow="auto",
        count_dead_steps=True,
        tp=1,
    ):
        """Price every replica's recorded trace on the accelerator cycle
        model (optionally sharded over ``tp`` PE clusters); returns a
        :class:`FleetCoSimReport`.  With one replica and ``tp=1`` the
        per-replica report is exactly the single-device
        :class:`~repro.serve.cosim.ServingCoSimulator` outcome."""
        return FleetCoSimReport(
            replicas=[
                ServingCoSimulator(
                    scheduler=engine.scheduler,
                    hw=hw,
                    hw_model=hw_model,
                    dataflow=dataflow,
                    count_dead_steps=count_dead_steps,
                    tp=tp,
                ).replay()
                for engine in self.engines
            ],
            tp=int(tp),
        )

"""Unified serving resource manager: batch slots, KV blocks, and swap.

Before this module, the scheduler's dense and paged branches each did
their own slot/block bookkeeping inline in the admit/release paths.
:class:`KVResourceManager` centralizes every device resource a sequence
can hold — its batch slot, its :class:`~repro.serve.paging.BlockPool`
blocks, and the prefix-cache reservations that pin pool blocks across
requests — behind one ``can_admit / admit / preempt-side (release /
swap_out) / resume (swap_in) / retire`` surface, for all four serving
modes (dense/paged x scheduler/engine).

Two admission regimes live here:

- ``preempt="off"`` (the default) keeps the one-way contract: admission
  *reserves worst case*.  A fixed pool must cover the newcomer's
  worst-case block demand plus every running sequence's outstanding
  reservation, so an admitted sequence can never fail an allocation —
  and a request whose worst case exceeds the whole pool is rejected.
- ``preempt="recompute"`` / ``preempt="swap"`` / ``preempt="model"``
  switch to *optimistic admission* (vLLM-style): a sequence admits as
  soon as the pool covers its immediate prefill need, far below the
  worst case when eviction budgets shrink sequences after prefill.
  Soundness comes from two-way scheduling: when the pool (or the batch)
  runs dry, a victim is preempted instead of the allocator crashing.

Preemption itself has two flavors, priced very differently by the
co-simulator:

- **recompute** (:meth:`KVResourceManager.release`): drop all device
  state.  Re-admission re-prefills the prompt *plus the tokens generated
  so far* — pure compute, no transfer traffic.  Bit-exact for sequences
  without a KV budget (prefill and decode produce bitwise-identical KV
  entries and logits); under an eviction budget the rebuilt eviction
  state is derived from a fresh prefill of the extended prompt, which is
  deterministic but may diverge from the uninterrupted schedule.
- **swap** (:meth:`swap_out` / :meth:`swap_in`): page the sequence's KV
  slots to a modeled host pool and restore them bit-exactly later.
  Eviction state travels too: a policy whose entire per-sequence state is
  its slot-aligned vectors (``swap_restorable = True``, e.g. voting
  votes or H2O sums — the state the paper stores off-chip anyway) is
  snapshotted through the ``export_prefill_state`` /
  ``import_prefill_state`` hooks and re-imported onto a fresh instance at
  swap-in; any other policy keeps its live object host-side.  Either
  way the continuation is bit-identical to never having been preempted.

``preempt="model"`` is not a third mechanism: the scheduler picks
recompute *or* swap per victim from modeled cost (host-link transfer
cycles vs re-prefill cycles, via
:class:`repro.accel.predictor.RoundCostPredictor`), using the same two
paths above.  The manager treats it exactly like the other two-way
modes.

The host pool is *modeled*: images are plain numpy copies, and the
scheduler records a :class:`~repro.serve.trace.SwapEvent` per transfer so
:class:`~repro.serve.cosim.ServingCoSimulator` can charge the bytes to
the hardware configuration's host link
(:attr:`~repro.accel.config.HardwareConfig.host_link_gb_s`).

Worked example — admit, swap out, swap in, retire against a fixed pool::

    >>> import numpy as np
    >>> from repro.config import tiny_config
    >>> from repro.serve.request import Request, SequenceState, RUNNING
    >>> from repro.serve.resources import KVResourceManager
    >>> config = tiny_config()
    >>> manager = KVResourceManager(config, max_batch_size=2, paged=True,
    ...                             block_size=4, num_blocks=32,
    ...                             preempt="swap")
    >>> state = SequenceState(Request("r0", np.arange(6), max_new_tokens=4))
    >>> state.cache = manager.admit("r0", capacity=12)
    >>> for position in range(6):            # prefill writes 6 slots/layer
    ...     for layer in state.cache:
    ...         layer.append(np.ones((config.n_heads, config.head_dim)),
    ...                      np.ones((config.n_heads, config.head_dim)),
    ...                      position)
    >>> state.status = RUNNING
    >>> used_before = manager.block_pool.num_used
    >>> image = manager.swap_out(state)       # blocks freed, bytes saved
    >>> manager.block_pool.num_used, manager.slots_used, image.kv_slots
    (0, 0, 6)
    >>> _ = manager.swap_in(state)            # bit-exact restore
    >>> manager.block_pool.num_used == used_before, state.cache[0].length
    (True, 6)
    >>> manager.retire("r0"); manager.block_pool.num_free
    32
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import sequence_capacity
from repro.core.kv_cache import BatchedKVCache
from repro.serve.paging import BlockPool, PagedKVCache
from repro.serve.prefix_cache import PrefixCache

__all__ = ["KVResourceManager", "SwapImage", "PREEMPT_MODES"]

#: Valid ``preempt`` settings for the scheduler and the manager
#: (``"model"`` = per-victim recompute-vs-swap chosen by predicted cost).
PREEMPT_MODES = ("off", "recompute", "swap", "model")


class SwapImage:
    """Host-side copy of one swapped-out sequence's device state.

    Holds gathered (dense-layout) copies of every layer's keys, values
    and positions, plus the eviction-policy state — either per-layer
    snapshots from ``export_prefill_state`` (``policy_state``) or the
    retained live object (``policy``) when the policy is not
    ``swap_restorable``.  Copies are independent of the pool: blocks
    freed at swap-out may be handed to other sequences without
    corrupting the image.
    """

    __slots__ = (
        "status",
        "capacity",
        "lengths",
        "keys",
        "values",
        "positions",
        "policy",
        "policy_state",
        "kv_slots",
        "blocks_out",
        "blocks_in",
    )

    def __init__(self, status, capacity, lengths, keys, values, positions):
        #: Sequence status at swap-out (``RUNNING`` or ``PREFILLING``),
        #: restored verbatim at swap-in.
        self.status = status
        self.capacity = capacity
        #: Per-layer cache lengths at swap-out.
        self.lengths = lengths
        self.keys = keys
        self.values = values
        self.positions = positions
        self.policy = None
        self.policy_state = None
        #: Per-layer KV slots moved (max over layers) — the trace unit.
        self.kv_slots = max(lengths) if lengths else 0
        #: Pool blocks the sequence dropped references to at swap-out.
        self.blocks_out = 0
        #: Pool blocks allocated at swap-in (set by ``swap_in``).
        self.blocks_in = 0

    @property
    def total_slots(self):
        """KV slots held host-side, summed over layers."""
        return sum(self.lengths)


class KVResourceManager:
    """Owns every device resource the serving loop hands to sequences.

    Parameters
    ----------
    config:
        The served model's config (layer/head/dim shapes size the pool
        and the per-sequence caches).
    max_batch_size:
        Batch slots — the admission cap on concurrently resident
        sequences.
    paged, block_size, num_blocks, prefix_caching, prefix_cache_blocks, \
prefix_ttl, prefix_match_mode:
        The paged-memory knobs, exactly as on
        :class:`~repro.serve.scheduler.Scheduler` (which forwards them
        here).
    preempt:
        ``"off"`` (one-way scheduling, worst-case reservations),
        ``"recompute"`` or ``"swap"`` (two-way scheduling, optimistic
        admission).
    policy_factory:
        Zero-argument callable producing a fresh eviction-policy
        instance; needed at swap-in to rebuild a ``swap_restorable``
        policy from its snapshot.
    """

    def __init__(
        self,
        config,
        max_batch_size,
        paged=False,
        block_size=16,
        num_blocks=None,
        prefix_caching=True,
        prefix_cache_blocks=None,
        prefix_ttl=None,
        prefix_match_mode="token",
        preempt="off",
        policy_factory=None,
    ):
        if preempt not in PREEMPT_MODES:
            raise ValueError(
                f"preempt must be one of {PREEMPT_MODES}, got {preempt!r}"
            )
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        self.config = config
        self.max_batch_size = int(max_batch_size)
        self.preempt = preempt
        self.paged = bool(paged)
        self.policy_factory = policy_factory

        if self.paged:
            self.block_pool = BlockPool(
                config.n_heads, config.head_dim, block_size, num_blocks=num_blocks
            )
            self.prefix_cache = (
                PrefixCache(
                    block_size,
                    max_blocks=prefix_cache_blocks,
                    ttl=prefix_ttl,
                    match_mode=prefix_match_mode,
                )
                if prefix_caching
                else None
            )
            if self.prefix_cache is not None:
                pool = self.block_pool
                self.block_pool.reclaimer = (
                    lambda needed: self.prefix_cache.reclaim(pool, needed)
                )
            self.cache_bank = BatchedKVCache.for_model(
                config,
                cache_factory=lambda capacity: PagedKVCache(
                    self.block_pool, config.n_layers, capacity
                ),
            )
        else:
            self.block_pool = None
            self.prefix_cache = None
            self.cache_bank = BatchedKVCache.for_model(config)

        self._admitted = {}  # request_id -> cache (device-resident)
        self._reservations = {}  # request_id -> worst-case pool blocks
        self._swapped = {}  # request_id -> SwapImage (host pool)
        # family id -> batch slots held for branches not yet forked; the
        # scheduler keeps a fork family's total slot claim constant at
        # its branch count, so later admissions can never starve a
        # family of the slots its forks were admitted against.
        self._slot_reservations = {}
        # family id -> pool blocks held for branches not yet forked
        # (one-way scheduling's block-side mirror of the slot claim).
        self._block_reservations = {}

        # ---- fork/join counters (feed ServingReport) ----
        self.forks = 0
        self.joins = 0
        #: Pool blocks branches adopted copy-on-write at fork instead of
        #: allocating — the shared-prompt-blocks metric (paged mode).
        self.fork_shared_blocks = 0
        #: KV slots (per-layer convention) dense forks physically copied.
        self.fork_copied_slots = 0

        # ---- swap-traffic counters (feed ServingReport) ----
        self.swap_outs = 0
        self.swap_ins = 0
        self.swap_out_blocks = 0
        self.swap_in_blocks = 0
        self.swap_out_slots = 0  # per-layer convention, like SwapEvent
        self.swap_in_slots = 0
        #: Host-pool occupancy in KV slots (all layers) and its peak.
        self.host_kv_slots = 0
        self.host_peak_kv_slots = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def preemptible(self):
        """Two-way scheduling active (``preempt`` != ``"off"``)."""
        return self.preempt != "off"

    @property
    def slots_used(self):
        """Admitted sequences plus batch slots reserved for fork
        families' not-yet-spawned branches."""
        return len(self._admitted) + sum(self._slot_reservations.values())

    @property
    def slots_free(self):
        return self.max_batch_size - self.slots_used

    @property
    def num_swapped(self):
        return len(self._swapped)

    @property
    def swapped_request_ids(self):
        return list(self._swapped)

    def cache_for(self, request_id):
        """The device cache of an admitted sequence."""
        return self._admitted[request_id]

    # ------------------------------------------------------------------
    # Demand arithmetic
    # ------------------------------------------------------------------
    def worst_case_blocks(self, capacity):
        """Pool blocks a sequence's cache *table* can ever span (all
        layers, all owned) — the prefill-transient/steady-state peak."""
        if not self.paged:
            return 0
        per_layer = -(-capacity // self.block_pool.block_size)  # ceil
        return per_layer * self.config.n_layers

    def sequence_worst_blocks(self, prompt_length, max_new_tokens, budget):
        """Worst-case pool demand of one sequence over its whole life.

        The table peak (:meth:`worst_case_blocks` of the sequence
        capacity), plus — for a *budgeted* sequence while prefix caching
        is active — one copy-on-write block per full prompt block: the
        prefill registers its freshly written blocks in the prefix
        cache, so the very eviction that shrinks the sequence to budget
        must copy them first while the cache pins the originals.  (The
        seed's reservation missed this term, so a pool sized exactly to
        the table peak could die of ``BlockPoolExhausted`` inside the
        shrink; admission and rejection now both price it.)
        """
        worst = self.worst_case_blocks(
            sequence_capacity(prompt_length, max_new_tokens, budget)
        )
        if self.paged and self.prefix_cache is not None and budget is not None:
            worst += (
                prompt_length // self.block_pool.block_size
            ) * self.config.n_layers
        return worst

    def blocks_for_rows(self, rows):
        """Pool blocks needed to append ``rows`` fresh slots in every
        layer of an empty cache (a prefill's immediate demand)."""
        if not self.paged or rows <= 0:
            return 0
        return -(-rows // self.block_pool.block_size) * self.config.n_layers

    def decode_block_demand(self, cache, budgeted, tokens=1):
        """Upper bound on pool blocks one decode round may claim for
        ``cache``: the fresh tail blocks that appending ``tokens`` slots
        per layer crosses into, plus — when eviction may run — one
        copy-on-write block per shared table block (adopted prefix
        blocks and own blocks pinned by the prefix cache alike).

        ``tokens`` is 1 for a plain decode step; a speculative round
        passes ``spec_k + 1`` to cover the full provisional verify
        window (the pending token plus every proposal) before any
        rollback frees the rejected suffix."""
        if not self.paged or tokens <= 0:
            return 0
        block_size = self.block_pool.block_size
        demand = sum(
            -(-(layer.length + tokens) // block_size)
            - (-(-layer.length // block_size))
            for layer in cache
        )
        if budgeted:
            demand += cache.shared_blocks
        else:
            # A fork branch's partial tail block may still be shared with
            # its siblings; the very first diverging append copies it
            # without crossing a block boundary, so the crossing term
            # alone misses it.  Zero in every non-fork flow (prefill
            # always diverges an adopted partial tail before decode).
            demand += getattr(cache, "shared_tail_blocks", 0)
        return demand

    def prefill_block_demand(self, cache, rows, budgeted, final):
        """Upper bound on pool blocks a prefill chunk of ``rows`` prompt
        tokens may claim for ``cache``: fresh tail blocks, CoW of every
        currently shared table block, and — for the *final* chunk of a
        budgeted prompt — CoW of the blocks this very chunk writes and
        registers before the shrink-to-budget eviction runs.

        A *partially* adopted block (radix-trie tail hit: the last
        attached block covered mid-block, still refcount-shared with the
        trie) needs no extra term: it is counted by ``shared_blocks``,
        and the chunk's first append at its non-zero offset is exactly
        the CoW that term prices."""
        if not self.paged or rows <= 0:
            return 0
        block_size = self.block_pool.block_size
        fresh = (rows // block_size + 1) * self.config.n_layers
        demand = fresh + cache.shared_blocks
        if budgeted and final:
            demand += fresh
        return demand

    def swap_in_blocks_needed(self, request_id):
        """Pool blocks required to page ``request_id``'s image back in."""
        if not self.paged:
            return 0
        image = self._swapped[request_id]
        block_size = self.block_pool.block_size
        return sum(-(-length // block_size) for length in image.lengths if length)

    def swap_resume_demand(self, request_id, step_tokens=1):
        """Pool blocks a swap-in admission may claim this round: the
        image itself plus the fresh tail blocks the resumed sequence's
        own first decode append crosses into, in every layer.

        ``step_tokens`` is 1 for a plain decode step; a speculating
        scheduler passes ``spec_k + 1`` because the resumed sequence may
        take a full provisional verify window in its re-admission
        round."""
        if not self.paged:
            return 0
        image = self._swapped[request_id]
        block_size = self.block_pool.block_size
        return self.swap_in_blocks_needed(request_id) + sum(
            -(-(length + step_tokens) // block_size)
            - (-(-length // block_size))
            for length in image.lengths
        )

    # ------------------------------------------------------------------
    # Admission checks
    # ------------------------------------------------------------------
    def has_blocks(self, needed):
        """Can the pool cover ``needed`` blocks right now?  The prefix
        cache is asked to shed idle entries first; a growable pool (and
        dense mode) always says yes."""
        if not self.paged or self.block_pool.growable:
            return True
        pool = self.block_pool
        if pool.num_free < needed and self.prefix_cache is not None:
            self.prefix_cache.reclaim(pool, needed - pool.num_free)
        return pool.num_free >= needed

    def outstanding_reservation(self):
        """Blocks held back for running sequences under one-way
        scheduling: each admitted sequence's worst case minus the blocks
        it already owns (growth and copy-on-write can claim the
        difference at any decode step)."""
        return sum(
            max(0, self._reservations[rid] - cache.owned_blocks)
            for rid, cache in self._admitted.items()
        ) + sum(self._block_reservations.values())

    def can_admit(self, worst_blocks, immediate_blocks, slots=1):
        """Room for one more sequence?

        Needs a free batch slot in every mode (``slots`` of them: a fork
        family's root admission claims one slot per eventual branch, so
        the scheduler passes the branch count here).  Block-wise, one-way
        scheduling (``preempt="off"``) demands the worst case on top of
        every running sequence's outstanding reservation — an admitted
        sequence can then never fail an allocation; two-way scheduling
        demands only the immediate prefill need, because a mid-run
        shortfall preempts a victim instead of crashing.
        """
        if self.slots_free < slots:
            return False
        if not self.paged or self.block_pool.growable:
            return True
        if self.preemptible:
            return self.has_blocks(immediate_blocks)
        return self.has_blocks(worst_blocks + self.outstanding_reservation())

    def reserve_slots(self, family, extra):
        """Hold ``extra`` batch slots for ``family``'s unspawned branches.

        Setting ``extra <= 0`` drops the family's reservation.  The
        scheduler calls this at root admission (``num_branches - 1``
        extras), shrinks it as forks consume slots, and re-arms it when
        a beam family's live-branch count dips below its width."""
        if extra <= 0:
            self._slot_reservations.pop(family, None)
        else:
            self._slot_reservations[family] = int(extra)

    def reserve_blocks(self, family, blocks):
        """Hold ``blocks`` pool blocks for ``family``'s unspawned
        branches (the one-way block-side mirror of
        :meth:`reserve_slots`; counted by
        :meth:`outstanding_reservation`).  ``blocks <= 0`` drops it."""
        if blocks <= 0:
            self._block_reservations.pop(family, None)
        else:
            self._block_reservations[family] = int(blocks)

    # ------------------------------------------------------------------
    # Lifecycle: admit / retire / preempt / resume
    # ------------------------------------------------------------------
    def admit(self, request_id, capacity, reserved_blocks=None):
        """Claim a batch slot and allocate a fresh cache; returns it.

        ``reserved_blocks`` is the worst-case demand held back from later
        one-way admissions (default: the capacity's table peak; the
        scheduler passes :meth:`sequence_worst_blocks` to include the
        prefix-registration CoW term)."""
        if self.slots_free <= 0:
            raise RuntimeError("admit with no free batch slot")
        cache = self.cache_bank.add_sequence(request_id, capacity)
        self._admitted[request_id] = cache
        self._reservations[request_id] = (
            self.worst_case_blocks(capacity)
            if reserved_blocks is None
            else reserved_blocks
        )
        return cache

    def fork(self, parent_id, child_id, reserved_blocks=None, family=None):
        """Fork ``parent_id``'s cache into a new branch ``child_id``.

        The child claims a batch slot — drawn from ``family``'s slot
        reservation when one is armed (the root admission pre-paid it),
        otherwise from the free pool — and adopts the parent's KV state:
        copy-on-write block sharing in paged mode (zero slots copied,
        every parent block's refcount bumped), a full slab copy dense.
        Divergence is handled downstream by the caches themselves
        (:meth:`~repro.serve.paging.PagedLayerKVCache.fork`); the manager
        only does the bookkeeping.  Returns the child cache.
        """
        if family is not None and family in self._slot_reservations:
            remaining = self._slot_reservations[family] - 1
            self.reserve_slots(family, remaining)
        elif self.slots_free <= 0:
            raise RuntimeError("fork with no free batch slot")
        parent = self._admitted[parent_id]
        child = parent.fork()
        self.cache_bank.adopt_sequence(child_id, child)
        self._admitted[child_id] = child
        self._reservations[child_id] = (
            self._reservations.get(parent_id, 0)
            if reserved_blocks is None
            else reserved_blocks
        )
        self.forks += 1
        if self.paged:
            self.fork_shared_blocks += child.num_blocks
        else:
            self.fork_copied_slots += max(
                (layer.length for layer in child), default=0
            )
        return child

    def join(self, request_id):
        """Prune a losing branch back into the pool.

        Resource-wise identical to :meth:`retire` — the branch's tail
        blocks return to the pool and blocks still shared with siblings
        just drop a refcount — but spelled (and counted) separately
        because the sequence did not finish: beam pruning retires it
        with ``finish_reason="beam_pruned"``."""
        self.joins += 1
        self.retire(request_id)

    def retire(self, request_id):
        """Free a retired sequence's slot and cache (blocks return to the
        pool in paged mode)."""
        self.cache_bank.remove_sequence(request_id)
        del self._admitted[request_id]
        self._reservations.pop(request_id, None)

    def release(self, request_id):
        """Recompute-preemption: drop all device state.  Identical
        resource effect to :meth:`retire`; spelled separately because the
        sequence is *not* done — it re-admits later and re-prefills."""
        self.retire(request_id)

    def swap_out(self, state):
        """Page ``state``'s KV cache (and eviction state) to the host
        pool, freeing its slot and blocks; returns the :class:`SwapImage`.

        The image holds gathered copies, so the freed blocks can be
        reused by other sequences immediately.  Policy state goes with
        it: per-layer ``export_prefill_state`` snapshots when the policy
        is ``swap_restorable`` (the off-chip-vote-storage model), the
        live object otherwise.  ``state.policy`` is cleared either way —
        a swapped sequence holds no schedulable state.
        """
        request_id = state.request_id
        cache = self._admitted[request_id]
        lengths = [layer.length for layer in cache]
        image = SwapImage(
            status=state.status,
            capacity=cache[0].capacity,
            lengths=lengths,
            keys=[np.array(layer.keys, copy=True) for layer in cache],
            values=[np.array(layer.values, copy=True) for layer in cache],
            positions=[np.array(layer.positions, copy=True) for layer in cache],
        )
        if self.paged:
            image.blocks_out = cache.num_blocks
        policy = state.policy
        if policy is not None:
            if policy.swap_restorable:
                image.policy_state = [
                    policy.export_prefill_state(layer, lengths[layer])
                    for layer in range(len(lengths))
                ]
            else:
                image.policy = policy
        state.policy = None
        state.cache = None

        self.cache_bank.remove_sequence(request_id)
        del self._admitted[request_id]
        self._reservations.pop(request_id, None)
        self._swapped[request_id] = image

        self.swap_outs += 1
        self.swap_out_blocks += image.blocks_out
        self.swap_out_slots += image.kv_slots
        self.host_kv_slots += image.total_slots
        self.host_peak_kv_slots = max(self.host_peak_kv_slots, self.host_kv_slots)
        return image

    def swap_in(self, state):
        """Page a swapped sequence back onto the device: allocate a fresh
        cache, replay the saved slots, restore the eviction policy, and
        hand the slot back.  Returns the consumed :class:`SwapImage`
        (``blocks_in`` filled in)."""
        request_id = state.request_id
        image = self._swapped.pop(request_id)
        if self.slots_free <= 0:
            self._swapped[request_id] = image
            raise RuntimeError("swap_in with no free batch slot")
        cache = self.cache_bank.add_sequence(request_id, image.capacity)
        for layer, length in enumerate(image.lengths):
            if length:
                cache[layer].append_block(
                    image.keys[layer], image.values[layer], image.positions[layer]
                )
        if image.policy is not None:
            state.policy = image.policy
        elif image.policy_state is not None:
            if self.policy_factory is None:
                raise RuntimeError(
                    "swap_in needs a policy_factory to rebuild a "
                    "swap_restorable policy from its snapshot"
                )
            policy = self.policy_factory()
            policy.reset()
            for layer, snapshot in enumerate(image.policy_state):
                policy.import_prefill_state(layer, snapshot, image.lengths[layer])
            state.policy = policy

        state.cache = cache
        state.status = image.status
        self._admitted[request_id] = cache
        self._reservations[request_id] = self.worst_case_blocks(image.capacity)
        if self.paged:
            image.blocks_in = cache.num_blocks

        self.swap_ins += 1
        self.swap_in_blocks += image.blocks_in
        self.swap_in_slots += image.kv_slots
        self.host_kv_slots -= image.total_slots
        return image

    # ------------------------------------------------------------------
    # Prefix-cache teardown
    # ------------------------------------------------------------------
    def clear_prefix_cache(self):
        """Drop every prefix-cache entry, returning its blocks to the
        pool (end-of-trace teardown)."""
        if self.prefix_cache is not None:
            self.prefix_cache.clear(self.block_pool)

    def __repr__(self):
        return (
            f"KVResourceManager(slots={self.slots_used}/{self.max_batch_size}, "
            f"paged={self.paged}, preempt={self.preempt!r}, "
            f"swapped={self.num_swapped})"
        )

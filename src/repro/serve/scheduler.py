"""Continuous-batching scheduler over the batched decode path.

This is the serving loop the ROADMAP's "heavy traffic" north star asks
for, in the Orca / vLLM mould: requests arrive over time, are admitted
into the running batch as soon as a slot frees up (iteration-level
scheduling, not static batches), decode in lock-step through
:meth:`CachedTransformer.step_batch`, evict from their private KV caches
via their private policy instances, and retire individually on EOS or
token budget — immediately freeing their slot for the next queued
request.

Equivalence guarantee
---------------------
Per sequence, the scheduler performs the token-producing operation
sequence of :meth:`repro.core.engine.GenerationEngine.generate` —
prefill, block observation, budget enforcement, then
sample/step/observe/evict per token — against per-sequence state, and
the batched decode path is bitwise identical to solo decode (see
:func:`repro.models.inference.batch_matmul`).  A request therefore
generates the same tokens whether it is served alone or inside any batch
mix; ``tests/serve/test_serve_scheduler.py`` locks this in.  One
deliberate deviation: when a request retires by hitting
``max_new_tokens``, the engine still spends a decode step on the final
sampled token (its logits are discarded); the scheduler skips that dead
step, so eviction counts and cache-length traces can trail the engine's
by one step even though the tokens are identical.

The clock is discrete: one *round* = one scheduler iteration (admission,
one sampling pass, one batched decode step).  Request arrival times are
expressed in rounds.

Paged mode (``paged=True``) swaps the dense per-sequence slabs for
fixed-size blocks from a shared :class:`~repro.serve.paging.BlockPool`
and shares full prompt-prefix blocks across requests through a
:class:`~repro.serve.prefix_cache.PrefixCache` (copy-on-write, with
eviction-policy state snapshots).  The equivalence guarantee extends to
it: tokens are bit-identical dense vs paged, at any block size, with or
without prefix hits — ``tests/serve/test_paged_equivalence.py`` and the
fuzz suite lock this in.

Chunked prefill (``prefill_chunk=N``) bounds the prompt rows computed
per round, Sarathi-style: an admitted prompt is prefilled in N-token
chunks interleaved with the running batch's decode rounds (the sequence
sits in the ``PREFILLING`` state, holding a batch slot but not sampling,
until its last chunk lands).  Because the model's prefill is
row-count-invariant over a populated cache and every policy's
``observe_continuation`` is chunk-invariant, generated tokens are
bit-identical to whole-prompt prefill at any chunk budget — the win is
latency shape only: no single round carries a whole long prompt, so
decode rounds never stall behind one (the head-of-line cycle spike
visible in ``serve-bench --cosim``).

Admission order is pluggable (``admission_policy``): the default is
FIFO by arrival; the engine layer provides EDF and priority-with-aging
policies keyed on the new ``Request.deadline`` / ``Request.priority``
fields.  Unsatisfiable paged requests become structured
:class:`~repro.serve.request.Rejection` records (surfaced in
``ServingReport.rejections``) instead of only raising.

Every round is also recorded in :attr:`Scheduler.trace` (prefill row
counts, per-sequence decode attention lengths), which
:class:`~repro.serve.cosim.ServingCoSimulator` prices on the
accelerator cycle model after the run.

Worked example — serve three requests at batch cap 2::

    >>> import numpy as np
    >>> from repro.config import tiny_config
    >>> from repro.models.inference import CachedTransformer
    >>> from repro.models.transformer import TransformerLM
    >>> from repro.serve import Request, Scheduler
    >>> model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    >>> scheduler = Scheduler(model, max_batch_size=2)
    >>> for i in range(3):
    ...     _ = scheduler.submit(Request(f"r{i}", np.arange(6) + i,
    ...                                  max_new_tokens=4, seed=i))
    >>> report = scheduler.run()
    >>> len(report.requests), report.total_tokens, scheduler.done
    (3, 12, True)
    >>> len(scheduler.tokens_for("r1"))   # same tokens as solo decode
    4
    >>> [r.num_decodes for r in scheduler.trace][:3]   # lock-step rounds
    [2, 2, 2]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import enforce_budget, sequence_capacity
from repro.core.kv_cache import BatchedKVCache
from repro.core.policies.base import GENERATION, PREFILL
from repro.core.policies.voting import VotingPolicy
from repro.core.sampling import greedy
from repro.serve.paging import BlockPool, PagedKVCache
from repro.serve.prefix_cache import PrefixCache
from repro.serve.request import (
    FINISHED,
    PREFILLING,
    RUNNING,
    Rejection,
    Request,
    SequenceState,
)
from repro.serve.trace import DecodeEvent, PrefillEvent, RoundTrace

__all__ = ["Scheduler", "ServingReport"]


@dataclass
class ServingReport:
    """Aggregate + per-request outcome of one scheduler run.

    Invariants: ``total_tokens`` equals the sum of per-request token
    counts in ``requests``; ``busy_rounds <= total_rounds``;
    ``peak_concurrency <= max_batch_size``; throughput properties return
    0.0 (never raise) on an empty run.  All ``*_rounds`` quantities are
    in scheduler rounds (the discrete clock), ``wall_seconds`` is host
    wall-clock — hardware-model time lives in
    :class:`~repro.serve.cosim.ServingCoSimReport`, not here.
    """

    #: One dict per retired request (arrival/admission/first-token/finish
    #: rounds, wait, latency, TTFT, token count, finish reason, deadline
    #: outcome, eviction count).
    requests: list = field(default_factory=list)
    #: One dict per rejected submission (structured
    #: :meth:`~repro.serve.request.Rejection.as_row` records), so
    #: engine-level admission can retry or degrade instead of losing the
    #: request silently.
    rejections: list = field(default_factory=list)
    total_rounds: int = 0
    #: Rounds in which the hardware did any work (prefill chunks count
    #: even when no token was sampled yet).
    busy_rounds: int = 0
    total_tokens: int = 0
    peak_concurrency: int = 0
    wall_seconds: float = 0.0
    #: Peak KV memory over the run, in slots (one slot = one position's
    #: kv vectors in one layer).  Dense mode counts allocated slab
    #: capacity; paged mode counts slots of blocks actually in use — the
    #: number the paged allocator exists to shrink.
    peak_kv_slots: int = 0
    # ---- paged-mode extras (zero when served dense) ----
    paged: bool = False
    block_size: int = 0
    peak_blocks: int = 0
    #: Mean over busy rounds of occupied slots / allocated block slots.
    #: Can exceed 1.0 when prefix sharing makes several sequences count
    #: the same physical block's slots.
    mean_block_utilization: float = 0.0
    prefix_lookups: int = 0
    prefix_hits: int = 0
    #: Prompt tokens whose prefill was skipped via a prefix-cache hit.
    prefill_tokens_saved: int = 0
    cow_copies: int = 0

    @property
    def prefix_hit_rate(self):
        return self.prefix_hits / self.prefix_lookups if self.prefix_lookups else 0.0

    @property
    def tokens_per_round(self):
        """Decode throughput in tokens per busy round (the batching win)."""
        return self.total_tokens / self.busy_rounds if self.busy_rounds else 0.0

    @property
    def tokens_per_second(self):
        return self.total_tokens / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_latency(self):
        """Mean rounds from arrival to completion."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["latency_rounds"] for row in self.requests]))

    @property
    def mean_wait(self):
        """Mean rounds spent queued before admission."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["wait_rounds"] for row in self.requests]))

    @property
    def mean_ttft(self):
        """Mean time-to-first-token in rounds (arrival to first sampled
        token); 0.0 on an empty run."""
        ttfts = [
            row["ttft_rounds"]
            for row in self.requests
            if row.get("ttft_rounds") is not None
        ]
        return float(np.mean(ttfts)) if ttfts else 0.0

    @property
    def p95_ttft(self):
        """95th-percentile TTFT in rounds (tail latency; 0.0 when empty)."""
        ttfts = [
            row["ttft_rounds"]
            for row in self.requests
            if row.get("ttft_rounds") is not None
        ]
        return float(np.percentile(ttfts, 95)) if ttfts else 0.0

    @property
    def deadline_misses(self):
        """Retired requests that finished after their deadline."""
        return sum(1 for row in self.requests if row.get("deadline_miss"))

    @property
    def deadline_miss_rate(self):
        """Misses over requests that carried a deadline (0.0 if none)."""
        with_deadline = sum(
            1 for row in self.requests if row.get("deadline") is not None
        )
        return self.deadline_misses / with_deadline if with_deadline else 0.0

    def summary(self):
        """Flat dict of the aggregate metrics (for experiment tables)."""
        summary = {
            "requests": len(self.requests),
            "rounds": self.total_rounds,
            "tokens": self.total_tokens,
            "tokens/round": self.tokens_per_round,
            "tokens/s": self.tokens_per_second,
            "mean_latency_rounds": self.mean_latency,
            "mean_wait_rounds": self.mean_wait,
            "mean_ttft_rounds": self.mean_ttft,
            "peak_batch": self.peak_concurrency,
            "peak_kv_slots": self.peak_kv_slots,
        }
        if any(row.get("deadline") is not None for row in self.requests):
            summary["deadline_miss_rate"] = self.deadline_miss_rate
        if self.rejections:
            summary["rejected"] = len(self.rejections)
        if self.paged:
            summary.update(
                {
                    "block_size": self.block_size,
                    "peak_blocks": self.peak_blocks,
                    "block_util": self.mean_block_utilization,
                    "prefix_hit_rate": self.prefix_hit_rate,
                    "prefill_saved": self.prefill_tokens_saved,
                    "cow_copies": self.cow_copies,
                }
            )
        return summary


class Scheduler:
    """Continuous-batching serving loop over one model.

    Parameters
    ----------
    model:
        A :class:`repro.models.inference.CachedTransformer`.
    policy_factory:
        Zero-argument callable producing a fresh eviction-policy instance
        per admitted request (policies hold per-sequence vote state).
        Default: a :class:`VotingPolicy` sized to the model.
    max_batch_size:
        Admission cap on concurrently running sequences.
    budget:
        Default per-sequence KV budget (``None`` = no eviction); a
        request's own ``budget`` field overrides it.
    evictions_per_step:
        Per-layer per-step eviction cap, as in the engine.
    sampler:
        ``sampler(logits, rng) -> token`` (default greedy).
    paged:
        Store KV state in fixed-size blocks from a shared
        :class:`~repro.serve.paging.BlockPool` instead of dense
        per-sequence slabs.  Decoded tokens are bit-identical either way;
        paging changes only where the floats live (and how much memory a
        mixed batch pins).
    block_size:
        Cache slots per block (paged mode).
    num_blocks:
        Fixed pool capacity; admission then waits until the pool can
        cover a request's worst-case block demand (after asking the
        prefix cache to shed idle entries).  ``None`` (default) makes the
        pool growable, matching the dense path's unbounded admission.
    prefix_caching:
        Share full prompt-prefix blocks across requests (paged mode):
        a request whose prompt starts with an already-prefilled block
        chain adopts those blocks copy-on-write and skips their prefill
        compute.  Requires every admitted request's policy to carry the
        same ``prefix_state_key`` for state snapshots to be reused; a
        policy that cannot snapshot (``prefix_shareable = False``) simply
        never shares.
    prefix_cache_blocks:
        LRU capacity bound (in pool blocks) for the prefix cache;
        ``None`` keeps every registered block resident.  Bounding it is
        what keeps never-rehit unique-suffix blocks from pinning pool
        memory across the whole trace.
    prefill_chunk:
        Per-round prompt-token budget for prefill work, shared by
        continuing prefills (served first, admission order) and new
        admissions.  ``None`` (default) prefills whole prompts in one
        round, the legacy behavior; any positive value caps the prompt
        rows a round computes, interleaving long prompts with decode
        (Sarathi-style chunked prefill).  Generated tokens are
        bit-identical at every chunk budget.
    admission_policy:
        Object with a ``key(request, now) -> sortable`` method ordering
        *arrived* waiting requests for admission (lowest key first; ties
        broken by submission order).  ``None`` = FIFO by arrival.  See
        :mod:`repro.serve.engine` for FIFO/EDF/priority-aging policies.
    auto_fast_forward:
        Jump the round clock over idle gaps to the next queued arrival
        (default, right for a pre-submitted trace).  The serving engine
        disables this to own the clock: with streaming submission a
        request may still arrive *during* the gap.
    """

    def __init__(
        self,
        model,
        policy_factory=None,
        max_batch_size=8,
        budget=None,
        evictions_per_step=None,
        sampler=greedy,
        paged=False,
        block_size=16,
        num_blocks=None,
        prefix_caching=True,
        prefix_cache_blocks=None,
        prefill_chunk=None,
        admission_policy=None,
        auto_fast_forward=True,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if evictions_per_step is not None and evictions_per_step <= 0:
            raise ValueError("evictions_per_step must be positive")
        if prefill_chunk is not None and prefill_chunk <= 0:
            raise ValueError(
                f"prefill_chunk must be positive, got {prefill_chunk}"
            )
        self.prefill_chunk = (
            None if prefill_chunk is None else int(prefill_chunk)
        )
        self.admission_policy = admission_policy
        self.auto_fast_forward = bool(auto_fast_forward)
        self.model = model
        self.policy_factory = policy_factory or (
            lambda: VotingPolicy(model.config.n_layers)
        )
        self.max_batch_size = int(max_batch_size)
        self.budget = budget
        self.evictions_per_step = evictions_per_step
        self.sampler = sampler

        self.paged = bool(paged)
        if self.paged:
            config = model.config
            self.block_pool = BlockPool(
                config.n_heads, config.head_dim, block_size, num_blocks=num_blocks
            )
            self.prefix_cache = (
                PrefixCache(block_size, max_blocks=prefix_cache_blocks)
                if prefix_caching
                else None
            )
            if self.prefix_cache is not None:
                pool = self.block_pool
                self.block_pool.reclaimer = (
                    lambda needed: self.prefix_cache.reclaim(pool, needed)
                )
            self.cache_bank = BatchedKVCache.for_model(
                config,
                cache_factory=lambda capacity: PagedKVCache(
                    self.block_pool, config.n_layers, capacity
                ),
            )
        else:
            self.block_pool = None
            self.prefix_cache = None
            self.cache_bank = BatchedKVCache.for_model(model.config)

        self._waiting = []  # SequenceState, sorted by (arrival, submit order)
        self._running = []  # SequenceState, admission order
        self._finished = []
        self._rejected = []  # Rejection records, submission order
        self._submit_count = 0
        #: Per-round hardware trace (:class:`~repro.serve.trace.RoundTrace`
        #: per non-empty round), consumed by
        #: :class:`~repro.serve.cosim.ServingCoSimulator`.
        self.trace = []
        self.round_index = 0
        self._busy_rounds = 0
        self._total_tokens = 0
        self._peak_concurrency = 0
        self._prefill_tokens_saved = 0
        self._peak_kv_slots = 0
        self._utilization_sum = 0.0
        self._utilization_rounds = 0

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request, strict=True):
        """Queue a :class:`Request` for admission.

        The request becomes visible to the admission loop at its
        ``arrival_time``; the admission policy (default: FIFO by
        arrival) orders arrived requests.  Returns the request's live
        :class:`SequenceState` on acceptance.  An unsatisfiable paged
        request (worst-case block demand exceeding the whole fixed pool
        — it could never be admitted and would stall the queue forever)
        is recorded as a structured :class:`Rejection` in the report
        either way; with ``strict=False`` the rejection is *returned*
        instead of raised, so engine-level admission can retry with a
        smaller budget or degrade gracefully.  A rejected id is not
        reserved: resubmission (e.g. after shrinking the request) is
        allowed.

        Raises
        ------
        TypeError
            If ``request`` is not a :class:`Request`.
        KeyError
            If the id collides with any live *or finished* request
            (results are keyed by request id, so ids are never reused
            within one scheduler).
        ValueError
            In strict mode (default), for an unsatisfiable paged
            request as described above.
        """
        if not isinstance(request, Request):
            raise TypeError(f"expected Request, got {type(request).__name__}")
        # Finished ids stay reserved too: results are keyed by request id
        # (``tokens_for``, report rows), so reuse would make them ambiguous.
        seen = {
            s.request_id
            for s in self._waiting + self._running + self._finished
        }
        if request.request_id in seen or request.request_id in self.cache_bank:
            raise KeyError(f"duplicate request id {request.request_id!r}")
        if self.paged and not self.block_pool.growable:
            budget = request.budget if request.budget is not None else self.budget
            worst = self._worst_case_blocks(
                sequence_capacity(
                    request.prompt.shape[0], request.max_new_tokens, budget
                )
            )
            if worst > self.block_pool.num_blocks:
                rejection = Rejection(
                    request_id=request.request_id,
                    reason="pool_too_small",
                    detail=(
                        f"needs up to {worst} blocks but the pool only "
                        f"has {self.block_pool.num_blocks}"
                    ),
                    needed_blocks=worst,
                    pool_blocks=self.block_pool.num_blocks,
                    round_index=self.round_index,
                )
                self._rejected.append(rejection)
                if strict:
                    raise ValueError(
                        f"request {request.request_id!r} {rejection.detail}"
                    )
                return rejection
        state = SequenceState(request=request, submit_index=self._submit_count)
        self._submit_count += 1
        self._waiting.append(state)
        self._waiting.sort(
            key=lambda s: (s.request.arrival_time, s.submit_index)
        )
        return state

    @property
    def num_waiting(self):
        return len(self._waiting)

    @property
    def num_running(self):
        return len(self._running)

    @property
    def done(self):
        return not self._waiting and not self._running

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def run(self):
        """Serve until every submitted request has retired.

        Returns a :class:`ServingReport` aggregating throughput, latency
        and memory statistics over the whole run; per-request tokens
        stay retrievable through :meth:`tokens_for` and the per-round
        hardware trace through :attr:`trace`.
        """
        start = time.perf_counter()
        while not self.done:
            self.run_round()
        wall = time.perf_counter() - start
        return self._report(wall)

    def run_round(self):
        """One scheduler iteration: continue prefills, admit, sample,
        batched decode.

        Each round appends a :class:`~repro.serve.trace.RoundTrace` to
        :attr:`trace` recording the hardware work performed (prefill row
        counts, per-sequence decode attention lengths), which the
        serving co-simulator prices after the fact.  With
        ``prefill_chunk`` set, in-flight chunked prefills consume the
        round's prompt-token budget before new admissions do.
        """
        # Fast-forward through idle time: nothing running and the next
        # arrival is still in the future.
        if self.auto_fast_forward and not self._running and self._waiting:
            next_arrival = self._waiting[0].request.arrival_time
            if next_arrival > self.round_index:
                self.round_index = next_arrival

        record = RoundTrace(round_index=self.round_index)
        chunk_budget = self._continue_prefills(record, self.prefill_chunk)
        self._admit(record, chunk_budget)
        self._peak_concurrency = max(self._peak_concurrency, len(self._running))
        self._sample_kv_usage()

        sampled = self._sample(record)
        active = [s for s in self._running if s.status == RUNNING]
        if active:
            self._decode(active, record)
        self._total_tokens += sampled
        if record.prefills or record.decodes or record.dead_steps:
            # Busy = the hardware did work, whether or not a token came
            # out: a chunked-prefill-only round costs compute too, and
            # tokens_per_round must reflect it.  (Unchunked runs are
            # unchanged: every round with work also samples.)
            self._busy_rounds += 1
            self.trace.append(record)
        self._retire()
        self.round_index += 1

    # ------------------------------------------------------------------
    # Round stages
    # ------------------------------------------------------------------
    def _continue_prefills(self, record, chunk_budget):
        """Advance in-flight chunked prefills (admission order) by up to
        ``chunk_budget`` prompt tokens total; returns the budget left
        for new admissions."""
        for state in self._running:
            if state.status != PREFILLING:
                continue
            if chunk_budget is not None and chunk_budget <= 0:
                break
            request = state.request
            budget = (
                request.budget if request.budget is not None else self.budget
            )
            chunk_budget = self._prefill_state(
                state, budget, chunk_budget, record
            )
        return chunk_budget

    def _next_admission(self):
        """The arrived waiting request the admission policy ranks first
        (``None`` when nothing has arrived yet)."""
        arrived = [
            s
            for s in self._waiting
            if s.request.arrival_time <= self.round_index
        ]
        if not arrived:
            return None
        if self.admission_policy is None:
            # _waiting is kept sorted by (arrival, submit order): FIFO.
            return arrived[0]
        now = self.round_index
        return min(
            arrived,
            key=lambda s: (
                self.admission_policy.key(s.request, now),
                s.submit_index,
            ),
        )

    def _admit(self, record, chunk_budget):
        """Admit arrived requests into free batch slots (prefill them).

        In paged mode, admission additionally *reserves blocks, not
        slabs*: a fixed-size pool must be able to cover the request's
        worst-case block demand (prefix-cache entries are shed first),
        otherwise the request — and everyone ranked behind it — keeps
        waiting until retirements free blocks.  With ``prefill_chunk``
        set, each admission also needs prompt-token budget left this
        round; its prefill may complete over later rounds.
        """
        while len(self._running) < self.max_batch_size:
            if chunk_budget is not None and chunk_budget <= 0:
                break
            state = self._next_admission()
            if state is None:
                break
            request = state.request
            budget = request.budget if request.budget is not None else self.budget
            capacity = sequence_capacity(
                request.prompt.shape[0], request.max_new_tokens, budget
            )
            worst_blocks = self._worst_case_blocks(capacity)
            if self.paged and not self._blocks_available(worst_blocks):
                break
            self._waiting.remove(state)
            state.reserved_blocks = worst_blocks

            state.policy = self.policy_factory()
            state.policy.reset()
            state.rng = np.random.default_rng(request.seed)
            state.cache = self.cache_bank.add_sequence(
                request.request_id, capacity
            )
            state.status = PREFILLING
            state.admitted_at = self.round_index

            if self.paged:
                self._attach_prefix(state)
            chunk_budget = self._prefill_state(
                state, budget, chunk_budget, record
            )
            self._running.append(state)

    def _prefill_state(self, state, budget, chunk_budget, record):
        """Prefill the next chunk (or the whole remainder) of ``state``'s
        prompt, record the trace event, and complete the prefill when the
        last prompt token lands.  Returns the chunk budget left."""
        request = state.request
        total = request.prompt.shape[0]
        start = state.prefilled
        end = total if chunk_budget is None else min(total, start + chunk_budget)
        logits = self._prefill_compute(state, start, end)
        state.prefilled = end
        if chunk_budget is not None:
            chunk_budget -= end - start
        record.prefills.append(
            PrefillEvent(
                request_id=request.request_id,
                prompt_length=int(total),
                computed_tokens=int(end - start),
                prefix_length=int(start),
                budgeted=budget is not None,
                final=end == total,
            )
        )
        if end == total:
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=0,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = logits
            state.position = total
            state.status = RUNNING
        return chunk_budget

    def _prefill_compute(self, state, start, end):
        """Run the model over prompt rows ``[start, end)`` against the
        populated cache; dispatches dense vs paged."""
        if self.paged:
            return self._prefill_paged_range(state, start, end)
        if start == 0 and end == state.request.prompt.shape[0]:
            return self._prefill_dense(state)
        return self._prefill_dense_range(state, start, end)

    def _worst_case_blocks(self, capacity):
        """Pool blocks a sequence can ever demand (all layers, all owned)."""
        if not self.paged:
            return 0
        per_layer = -(-capacity // self.block_pool.block_size)  # ceil
        return per_layer * self.model.config.n_layers

    def _blocks_available(self, worst_blocks):
        """Can the pool cover one more sequence's worst-case block need?

        Admission reserves blocks, not slabs: besides the newcomer's
        worst case, the free list must keep covering every running
        sequence's *remaining* demand (``reserved_blocks`` minus the
        blocks it already owns — growth and copy-on-write can claim the
        difference at any decode step).  The prefix cache is asked to
        shed idle entries first.
        """
        pool = self.block_pool
        if pool.growable:
            return True
        outstanding = sum(
            max(0, state.reserved_blocks - state.cache.owned_blocks)
            for state in self._running
        )
        needed = worst_blocks + outstanding
        if pool.num_free < needed and self.prefix_cache is not None:
            self.prefix_cache.reclaim(pool, needed - pool.num_free)
        return pool.num_free >= needed

    def _prefill_dense(self, state):
        """The seed path: one-shot prefill, one observe_block per layer."""
        prompt = state.request.prompt
        prefill = self.model.prefill(prompt, state.cache)
        positions = np.arange(prompt.shape[0])
        for layer, attn in enumerate(prefill.attention):
            state.policy.observe_block(layer, attn, positions, PREFILL)
        return prefill.logits

    def _prefill_dense_range(self, state, start, end):
        """Dense chunked prefill: rows ``[start, end)`` over the cache
        populated by earlier chunks.  The model's row-count-invariant
        continuation plus the policy's chunk-invariant
        ``observe_continuation`` make the resulting logits and policy
        state bitwise equal to the one-shot path at any chunking."""
        prompt = state.request.prompt
        prefill = self.model.prefill(
            prompt[start:end], state.cache, start_position=start
        )
        positions = np.arange(end)
        for layer, attn in enumerate(prefill.attention):
            state.policy.observe_continuation(layer, attn, positions, PREFILL)
        return prefill.logits

    def _attach_prefix(self, state):
        """Adopt the longest cached chain of full prompt blocks (paged
        admission, before the first prefill chunk): attach the blocks
        copy-on-write, import the policy's snapshotted slot state for
        the shared span, and remember the chain key so later chunks can
        keep registering blocks from it."""
        policy = state.policy
        if self.prefix_cache is None or not policy.prefix_shareable:
            return
        prompt = state.request.prompt
        n_layers = self.model.config.n_layers
        entries, parent_key = self.prefix_cache.match(
            prompt, policy.prefix_state_key()
        )
        state.prefix_parent_key = parent_key
        if not entries:
            return
        shared_length = len(entries) * self.block_pool.block_size
        state.cache.attach_prefix(
            [
                [entry.layer_block_ids[layer] for entry in entries]
                for layer in range(n_layers)
            ],
            shared_length,
        )
        snapshot = entries[-1].policy_state
        for layer in range(n_layers):
            policy.import_prefill_state(layer, snapshot[layer], shared_length)
        state.prefix_hit_length = shared_length
        state.prefilled = shared_length
        self._prefill_tokens_saved += shared_length

    def _prefill_paged_range(self, state, start, end):
        """Paged prefill of prompt rows ``[start, end)`` with prefix
        registration (the prefix-cache *match* happened at admission in
        :meth:`_attach_prefix`; ``start`` already covers adopted blocks
        and earlier chunks).

        1. Run the model over the range only — the continuation attends
           to the resident keys/values, and prefill's row-count-invariant
           matmuls make the result bitwise equal to a cold prefill.
        2. Feed the new attention rows to the policy in block-sized
           chunks, snapshotting state at every block boundary and
           registering the freshly written full blocks in the prefix
           cache (before eviction can mutate them); the chain key is
           carried in ``state.prefix_parent_key`` across chunks.
        """
        request = state.request
        prompt = request.prompt
        policy = state.policy
        cache = state.cache
        n_layers = self.model.config.n_layers
        block_size = self.block_pool.block_size
        shareable = self.prefix_cache is not None and policy.prefix_shareable

        prefill = self.model.prefill(
            prompt[start:end], cache, start_position=start
        )

        # Chunked observation: rows [row_start, chunk_end) at a time, so
        # the policy's slot state at every block boundary is a pure
        # function of the tokens before it and can be snapshotted.
        positions = np.arange(prompt.shape[0])
        row_start = start
        while row_start < end:
            chunk_end = min((row_start // block_size + 1) * block_size, end)
            for layer, attn in enumerate(prefill.attention):
                rows = attn[:, row_start - start : chunk_end - start, :chunk_end]
                policy.observe_continuation(
                    layer, rows, positions[:chunk_end], PREFILL
                )
            if shareable and chunk_end % block_size == 0:
                block_index = chunk_end // block_size - 1
                state.prefix_parent_key = self.prefix_cache.insert(
                    state.prefix_parent_key,
                    prompt[chunk_end - block_size : chunk_end],
                    [
                        cache[layer].block_ids[block_index]
                        for layer in range(n_layers)
                    ],
                    [
                        policy.export_prefill_state(layer, chunk_end)
                        for layer in range(n_layers)
                    ],
                    self.block_pool,
                )
            row_start = chunk_end
        return prefill.logits

    def _sample(self, record):
        """Sample one token per running sequence; retire EOS/full ones.

        Mirrors the engine's per-step prologue: sample, append, stop on
        EOS or on reaching ``max_new_tokens`` (in which case no further
        decode step is spent on the sequence — the engine's dead step is
        recorded in the trace as such, never executed).
        """
        sampled = 0
        for state in self._running:
            if state.status != RUNNING:
                continue  # chunked prefill still in flight: no logits yet
            request = state.request
            token = self.sampler(state.logits, state.rng)
            state.tokens.append(token)
            if state.first_token_round is None:
                state.first_token_round = self.round_index
            sampled += 1
            if request.eos is not None and token == request.eos:
                self._finish(state, "eos")
            elif state.num_generated >= request.max_new_tokens:
                budget = (
                    request.budget if request.budget is not None else self.budget
                )
                record.dead_steps.append(
                    DecodeEvent(
                        request_id=request.request_id,
                        attention_length=int(state.cache[0].length + 1),
                        budgeted=budget is not None,
                        dead=True,
                    )
                )
                self._finish(state, "length")
        return sampled

    def _decode(self, active, record):
        """One batched decode step for every still-active sequence."""
        tokens = [s.tokens[-1] for s in active]
        positions = [s.position for s in active]
        caches = [s.cache for s in active]
        for state in active:
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            # The step appends then attends, so attention runs against
            # the pre-step length plus the new token (append-then-evict).
            record.decodes.append(
                DecodeEvent(
                    request_id=state.request_id,
                    attention_length=int(state.cache[0].length + 1),
                    budgeted=budget is not None,
                )
            )
        result = self.model.step_batch(tokens, positions, caches)

        for b, state in enumerate(active):
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            for layer, rows in enumerate(result.attention):
                state.policy.observe(
                    layer, rows[b], state.cache[layer].positions, GENERATION
                )
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=state.num_generated,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = result.logits[b]
            state.position += 1

    def _sample_kv_usage(self):
        """Track peak KV memory (and, paged, block utilization).

        Dense slabs pin ``capacity`` slots per layer for a sequence's
        whole lifetime; paged mode pins only the blocks in use, so the
        pool's own high-water mark (updated at every allocation, i.e.
        including the transient prefill peak before eviction shrinks a
        sequence to budget) is the honest comparison point.
        """
        if self.paged:
            pool = self.block_pool
            self._peak_kv_slots = pool.peak_in_use * pool.block_size
            if pool.num_used:
                self._utilization_sum += self.cache_bank.total_entries / (
                    pool.num_used * pool.block_size
                )
                self._utilization_rounds += 1
        else:
            allocated = sum(
                state.cache[0].capacity * self.model.config.n_layers
                for state in self._running
            )
            self._peak_kv_slots = max(self._peak_kv_slots, allocated)

    def _finish(self, state, reason):
        self.cache_bank.remove_sequence(state.request_id)
        state.finish(self.round_index, reason)

    def release_prefix_cache(self):
        """Drop every prefix-cache entry, returning its blocks to the
        pool (end-of-trace teardown; afterwards an idle fixed pool is
        fully free again)."""
        if self.prefix_cache is not None:
            self.prefix_cache.clear(self.block_pool)

    def _retire(self):
        finished = [s for s in self._running if s.status == FINISHED]
        if finished:
            self._finished.extend(finished)
            self._running = [s for s in self._running if s.status != FINISHED]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def results(self):
        """Retired :class:`SequenceState` objects in completion order."""
        return list(self._finished)

    def tokens_for(self, request_id):
        """Generated tokens of a retired request."""
        for state in self._finished:
            if state.request_id == request_id:
                return list(state.tokens)
        raise KeyError(f"request {request_id!r} has not finished")

    def report(self, wall_seconds=0.0):
        """Snapshot :class:`ServingReport` over the requests retired (and
        rejected) so far.  :meth:`run` calls this once at drain; the
        serving engine calls it at any point of a streaming run."""
        return self._report(wall_seconds)

    def _report(self, wall_seconds):
        rows = [
            {
                "request_id": s.request_id,
                "arrival": s.request.arrival_time,
                "admitted": s.admitted_at,
                "first_token": s.first_token_round,
                "finished": s.finished_at,
                "wait_rounds": s.admitted_at - s.request.arrival_time,
                "ttft_rounds": s.ttft_rounds,
                "inter_token_rounds": s.inter_token_rounds,
                "latency_rounds": s.finished_at - s.request.arrival_time,
                "deadline": s.request.deadline,
                "priority": s.request.priority,
                "deadline_miss": s.deadline_missed,
                "tokens": s.num_generated,
                "finish_reason": s.finish_reason,
                "evictions": len(s.evictions),
            }
            for s in self._finished
        ]
        report = ServingReport(
            requests=rows,
            rejections=[r.as_row() for r in self._rejected],
            total_rounds=self.round_index,
            busy_rounds=self._busy_rounds,
            total_tokens=self._total_tokens,
            peak_concurrency=self._peak_concurrency,
            wall_seconds=wall_seconds,
            peak_kv_slots=self._peak_kv_slots,
        )
        if self.paged:
            report.paged = True
            report.block_size = self.block_pool.block_size
            report.peak_blocks = self.block_pool.peak_in_use
            report.cow_copies = self.block_pool.cow_copies
            if self._utilization_rounds:
                report.mean_block_utilization = (
                    self._utilization_sum / self._utilization_rounds
                )
            if self.prefix_cache is not None:
                report.prefix_lookups = self.prefix_cache.lookups
                report.prefix_hits = self.prefix_cache.hits
            report.prefill_tokens_saved = self._prefill_tokens_saved
        return report

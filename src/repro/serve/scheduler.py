"""Continuous-batching scheduler over the batched decode path.

This is the serving loop the ROADMAP's "heavy traffic" north star asks
for, in the Orca / vLLM mould: requests arrive over time, are admitted
into the running batch as soon as a slot frees up (iteration-level
scheduling, not static batches), decode in lock-step through
:meth:`CachedTransformer.step_batch`, evict from their private KV caches
via their private policy instances, and retire individually on EOS or
token budget — immediately freeing their slot for the next queued
request.

Equivalence guarantee
---------------------
Per sequence, the scheduler performs the token-producing operation
sequence of :meth:`repro.core.engine.GenerationEngine.generate` —
prefill, block observation, budget enforcement, then
sample/step/observe/evict per token — against per-sequence state, and
the batched decode path is bitwise identical to solo decode (see
:func:`repro.models.inference.batch_matmul`).  A request therefore
generates the same tokens whether it is served alone or inside any batch
mix; ``tests/serve/test_serve_scheduler.py`` locks this in.  One
deliberate deviation: when a request retires by hitting
``max_new_tokens``, the engine still spends a decode step on the final
sampled token (its logits are discarded); the scheduler skips that dead
step, so eviction counts and cache-length traces can trail the engine's
by one step even though the tokens are identical.

The clock is discrete: one *round* = one scheduler iteration (admission,
one sampling pass, one batched decode step).  Request arrival times are
expressed in rounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import enforce_budget, sequence_capacity
from repro.core.kv_cache import BatchedKVCache
from repro.core.policies.base import GENERATION, PREFILL
from repro.core.policies.voting import VotingPolicy
from repro.core.sampling import greedy
from repro.serve.request import FINISHED, RUNNING, Request, SequenceState

__all__ = ["Scheduler", "ServingReport"]


@dataclass
class ServingReport:
    """Aggregate + per-request outcome of one scheduler run."""

    #: One dict per retired request (arrival/admission/finish rounds,
    #: wait, latency, token count, finish reason, eviction count).
    requests: list = field(default_factory=list)
    total_rounds: int = 0
    busy_rounds: int = 0
    total_tokens: int = 0
    peak_concurrency: int = 0
    wall_seconds: float = 0.0

    @property
    def tokens_per_round(self):
        """Decode throughput in tokens per busy round (the batching win)."""
        return self.total_tokens / self.busy_rounds if self.busy_rounds else 0.0

    @property
    def tokens_per_second(self):
        return self.total_tokens / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_latency(self):
        """Mean rounds from arrival to completion."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["latency_rounds"] for row in self.requests]))

    @property
    def mean_wait(self):
        """Mean rounds spent queued before admission."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["wait_rounds"] for row in self.requests]))

    def summary(self):
        """Flat dict of the aggregate metrics (for experiment tables)."""
        return {
            "requests": len(self.requests),
            "rounds": self.total_rounds,
            "tokens": self.total_tokens,
            "tokens/round": self.tokens_per_round,
            "tokens/s": self.tokens_per_second,
            "mean_latency_rounds": self.mean_latency,
            "mean_wait_rounds": self.mean_wait,
            "peak_batch": self.peak_concurrency,
        }


class Scheduler:
    """Continuous-batching serving loop over one model.

    Parameters
    ----------
    model:
        A :class:`repro.models.inference.CachedTransformer`.
    policy_factory:
        Zero-argument callable producing a fresh eviction-policy instance
        per admitted request (policies hold per-sequence vote state).
        Default: a :class:`VotingPolicy` sized to the model.
    max_batch_size:
        Admission cap on concurrently running sequences.
    budget:
        Default per-sequence KV budget (``None`` = no eviction); a
        request's own ``budget`` field overrides it.
    evictions_per_step:
        Per-layer per-step eviction cap, as in the engine.
    sampler:
        ``sampler(logits, rng) -> token`` (default greedy).
    """

    def __init__(
        self,
        model,
        policy_factory=None,
        max_batch_size=8,
        budget=None,
        evictions_per_step=None,
        sampler=greedy,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if evictions_per_step is not None and evictions_per_step <= 0:
            raise ValueError("evictions_per_step must be positive")
        self.model = model
        self.policy_factory = policy_factory or (
            lambda: VotingPolicy(model.config.n_layers)
        )
        self.max_batch_size = int(max_batch_size)
        self.budget = budget
        self.evictions_per_step = evictions_per_step
        self.sampler = sampler

        self.cache_bank = BatchedKVCache.for_model(model.config)
        self._waiting = []  # SequenceState, FIFO by (arrival, submit order)
        self._running = []  # SequenceState, admission order
        self._finished = []
        self.round_index = 0
        self._busy_rounds = 0
        self._total_tokens = 0
        self._peak_concurrency = 0

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request):
        """Queue a :class:`Request` (or build one from kwargs-free args)."""
        if not isinstance(request, Request):
            raise TypeError(f"expected Request, got {type(request).__name__}")
        # Finished ids stay reserved too: results are keyed by request id
        # (``tokens_for``, report rows), so reuse would make them ambiguous.
        seen = {
            s.request_id
            for s in self._waiting + self._running + self._finished
        }
        if request.request_id in seen or request.request_id in self.cache_bank:
            raise KeyError(f"duplicate request id {request.request_id!r}")
        self._waiting.append(SequenceState(request=request))
        self._waiting.sort(key=lambda s: s.request.arrival_time)

    @property
    def num_waiting(self):
        return len(self._waiting)

    @property
    def num_running(self):
        return len(self._running)

    @property
    def done(self):
        return not self._waiting and not self._running

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def run(self):
        """Serve until every submitted request retired; returns a report."""
        start = time.perf_counter()
        while not self.done:
            self.run_round()
        wall = time.perf_counter() - start
        return self._report(wall)

    def run_round(self):
        """One scheduler iteration: admit, sample, batched decode."""
        # Fast-forward through idle time: nothing running and the next
        # arrival is still in the future.
        if not self._running and self._waiting:
            next_arrival = self._waiting[0].request.arrival_time
            if next_arrival > self.round_index:
                self.round_index = next_arrival

        self._admit()
        self._peak_concurrency = max(self._peak_concurrency, len(self._running))

        sampled = self._sample()
        active = [s for s in self._running if s.status != FINISHED]
        if active:
            self._decode(active)
        if sampled:
            self._busy_rounds += 1
            self._total_tokens += sampled
        self._retire()
        self.round_index += 1

    # ------------------------------------------------------------------
    # Round stages
    # ------------------------------------------------------------------
    def _admit(self):
        """Admit arrived requests into free batch slots (prefill them)."""
        while (
            self._waiting
            and len(self._running) < self.max_batch_size
            and self._waiting[0].request.arrival_time <= self.round_index
        ):
            state = self._waiting.pop(0)
            request = state.request
            prompt = request.prompt
            budget = request.budget if request.budget is not None else self.budget
            capacity = sequence_capacity(
                prompt.shape[0], request.max_new_tokens, budget
            )

            state.policy = self.policy_factory()
            state.policy.reset()
            state.rng = np.random.default_rng(request.seed)
            state.cache = self.cache_bank.add_sequence(
                request.request_id, capacity
            )
            state.status = RUNNING
            state.admitted_at = self.round_index

            prefill = self.model.prefill(prompt, state.cache)
            positions = np.arange(prompt.shape[0])
            for layer, attn in enumerate(prefill.attention):
                state.policy.observe_block(layer, attn, positions, PREFILL)
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=0,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = prefill.logits
            state.position = prompt.shape[0]
            self._running.append(state)

    def _sample(self):
        """Sample one token per running sequence; retire EOS/full ones.

        Mirrors the engine's per-step prologue: sample, append, stop on
        EOS or on reaching ``max_new_tokens`` (in which case no further
        decode step is spent on the sequence).
        """
        sampled = 0
        for state in self._running:
            request = state.request
            token = self.sampler(state.logits, state.rng)
            state.tokens.append(token)
            sampled += 1
            if request.eos is not None and token == request.eos:
                self._finish(state, "eos")
            elif state.num_generated >= request.max_new_tokens:
                self._finish(state, "length")
        return sampled

    def _decode(self, active):
        """One batched decode step for every still-active sequence."""
        tokens = [s.tokens[-1] for s in active]
        positions = [s.position for s in active]
        caches = [s.cache for s in active]
        result = self.model.step_batch(tokens, positions, caches)

        for b, state in enumerate(active):
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            for layer, rows in enumerate(result.attention):
                state.policy.observe(
                    layer, rows[b], state.cache[layer].positions, GENERATION
                )
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=state.num_generated,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = result.logits[b]
            state.position += 1

    def _finish(self, state, reason):
        self.cache_bank.remove_sequence(state.request_id)
        state.finish(self.round_index, reason)

    def _retire(self):
        finished = [s for s in self._running if s.status == FINISHED]
        if finished:
            self._finished.extend(finished)
            self._running = [s for s in self._running if s.status != FINISHED]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def results(self):
        """Retired :class:`SequenceState` objects in completion order."""
        return list(self._finished)

    def tokens_for(self, request_id):
        """Generated tokens of a retired request."""
        for state in self._finished:
            if state.request_id == request_id:
                return list(state.tokens)
        raise KeyError(f"request {request_id!r} has not finished")

    def _report(self, wall_seconds):
        rows = [
            {
                "request_id": s.request_id,
                "arrival": s.request.arrival_time,
                "admitted": s.admitted_at,
                "finished": s.finished_at,
                "wait_rounds": s.admitted_at - s.request.arrival_time,
                "latency_rounds": s.finished_at - s.request.arrival_time,
                "tokens": s.num_generated,
                "finish_reason": s.finish_reason,
                "evictions": len(s.evictions),
            }
            for s in self._finished
        ]
        return ServingReport(
            requests=rows,
            total_rounds=self.round_index,
            busy_rounds=self._busy_rounds,
            total_tokens=self._total_tokens,
            peak_concurrency=self._peak_concurrency,
            wall_seconds=wall_seconds,
        )

"""Continuous-batching scheduler over the batched decode path.

This is the serving loop the ROADMAP's "heavy traffic" north star asks
for, in the Orca / vLLM mould: requests arrive over time, are admitted
into the running batch as soon as a slot frees up (iteration-level
scheduling, not static batches), decode in lock-step through
:meth:`CachedTransformer.step_batch`, evict from their private KV caches
via their private policy instances, and retire individually on EOS or
token budget — immediately freeing their slot for the next queued
request.

Equivalence guarantee
---------------------
Per sequence, the scheduler performs the token-producing operation
sequence of :meth:`repro.core.engine.GenerationEngine.generate` —
prefill, block observation, budget enforcement, then
sample/step/observe/evict per token — against per-sequence state, and
the batched decode path is bitwise identical to solo decode (see
:func:`repro.models.inference.batch_matmul`).  A request therefore
generates the same tokens whether it is served alone or inside any batch
mix; ``tests/serve/test_serve_scheduler.py`` locks this in.  One
deliberate deviation: when a request retires by hitting
``max_new_tokens``, the engine still spends a decode step on the final
sampled token (its logits are discarded); the scheduler skips that dead
step, so eviction counts and cache-length traces can trail the engine's
by one step even though the tokens are identical.

The clock is discrete: one *round* = one scheduler iteration (admission,
one sampling pass, one batched decode step).  Request arrival times are
expressed in rounds.

Paged mode (``paged=True``) swaps the dense per-sequence slabs for
fixed-size blocks from a shared :class:`~repro.serve.paging.BlockPool`
and shares full prompt-prefix blocks across requests through a
:class:`~repro.serve.prefix_cache.PrefixCache` (copy-on-write, with
eviction-policy state snapshots).  The equivalence guarantee extends to
it: tokens are bit-identical dense vs paged, at any block size, with or
without prefix hits — ``tests/serve/test_paged_equivalence.py`` and the
fuzz suite lock this in.

Chunked prefill (``prefill_chunk=N``) bounds the prompt rows computed
per round, Sarathi-style: an admitted prompt is prefilled in N-token
chunks interleaved with the running batch's decode rounds (the sequence
sits in the ``PREFILLING`` state, holding a batch slot but not sampling,
until its last chunk lands).  Because the model's prefill is
row-count-invariant over a populated cache and every policy's
``observe_continuation`` is chunk-invariant, generated tokens are
bit-identical to whole-prompt prefill at any chunk budget — the win is
latency shape only: no single round carries a whole long prompt, so
decode rounds never stall behind one (the head-of-line cycle spike
visible in ``serve-bench --cosim``).

Admission order is pluggable (``admission_policy``): the default is
FIFO by arrival; the engine layer provides EDF and priority-with-aging
policies keyed on the new ``Request.deadline`` / ``Request.priority``
fields.  Unsatisfiable paged requests become structured
:class:`~repro.serve.request.Rejection` records (surfaced in
``ServingReport.rejections``) instead of only raising.

Every resource a sequence holds — its batch slot, its pool blocks, the
prefix-cache reservations — is owned by a single
:class:`~repro.serve.resources.KVResourceManager`.  With
``preempt="off"`` (default) scheduling is one-way: admission reserves
worst case and a sequence keeps its resources to retirement.
``preempt="recompute"`` / ``preempt="swap"`` enable two-way scheduling:
admission turns optimistic (immediate prefill need instead of worst
case — much higher pool utilization under eviction budgets), and
pressure preempts a victim (lowest priority, then latest deadline, then
fewest generated tokens) instead of stalling.  Pressure comes from two
places: the pool running dry mid-run (any admission policy), and an
arrived request that strictly outranks a running sequence under the
admission policy — deadline pressure under EDF, priority pressure under
priority-with-aging — finding no free slot or blocks.  A recompute
victim re-prefills its prompt plus generated tokens on re-admission
(bit-exact without a KV budget); a swap victim pages its blocks and
eviction-state snapshot to the modeled host pool and resumes
bit-exactly.  Swap traffic is recorded as
:class:`~repro.serve.trace.SwapEvent` rows in the round trace and priced
as HBM<->host transfers by the serving co-simulator.  With capacity to
spare, no preemption triggers and all three modes are bit-identical.

Speculative decoding (``draft_model=...``) replaces a speculating
sequence's one-token decode step with a propose/verify round: a cheap
draft model proposes ``spec_k`` tokens, the target scores them (plus the
pending token) in one multi-token :meth:`CachedTransformer.verify` pass,
and the longest prefix whose greedy argmax matches the proposals is
accepted — the verify pass's per-row logits are bitwise identical to
sequential decode, so with the (required) greedy sampler acceptance is
exact and the generated tokens, eviction logs, and cache-length traces
are bit-identical to the non-speculative scheduler.  Rejected
provisional KV entries are rolled back with ``cache.truncate`` (paged
mode returns the freed tail blocks to the pool immediately, and
provisional tokens never enter the prefix cache — registration only
ever covers full *prompt* blocks).  A sequence whose eviction budget
could fire inside the verify window (``cache length + k + 1 > budget``)
transparently falls back to the plain decode step that round, keeping
the eviction schedule exact; EOS/length caps landing mid-window clip
the window.  The draft model's KV cache is modeled host-resident: it
consumes no pool blocks, survives a swap, and is dropped with the rest
of the device state on a recompute preemption.

Every round is also recorded in :attr:`Scheduler.trace` (prefill row
counts, per-sequence decode attention lengths, speculative verify
windows), which :class:`~repro.serve.cosim.ServingCoSimulator` prices on
the accelerator cycle model after the run.

Worked example — serve three requests at batch cap 2::

    >>> import numpy as np
    >>> from repro.config import tiny_config
    >>> from repro.models.inference import CachedTransformer
    >>> from repro.models.transformer import TransformerLM
    >>> from repro.serve import Request, Scheduler
    >>> model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    >>> scheduler = Scheduler(model, max_batch_size=2)
    >>> for i in range(3):
    ...     _ = scheduler.submit(Request(f"r{i}", np.arange(6) + i,
    ...                                  max_new_tokens=4, seed=i))
    >>> report = scheduler.run()
    >>> len(report.requests), report.total_tokens, scheduler.done
    (3, 12, True)
    >>> len(scheduler.tokens_for("r1"))   # same tokens as solo decode
    4
    >>> [r.num_decodes for r in scheduler.trace][:3]   # lock-step rounds
    [2, 2, 2]
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.engine import enforce_budget, sequence_capacity
from repro.core.policies.base import GENERATION, PREFILL
from repro.core.sampling import greedy
from repro.core.policies.voting import VotingPolicy
from repro.serve.request import (
    FINISHED,
    PREEMPTED,
    PREFILLING,
    RUNNING,
    SWAPPED,
    Rejection,
    Request,
    SequenceState,
)
from repro.serve.resources import PREEMPT_MODES, KVResourceManager
from repro.serve.trace import (
    SWAP_IN,
    SWAP_OUT,
    DecodeEvent,
    ForkEvent,
    PrefillEvent,
    RoundTrace,
    SwapEvent,
    VerifyEvent,
)

__all__ = ["Scheduler", "ServingReport"]


@dataclass
class ServingReport:
    """Aggregate + per-request outcome of one scheduler run.

    Invariants: ``total_tokens`` equals the sum of per-request token
    counts in ``requests``; ``busy_rounds <= total_rounds``;
    ``peak_concurrency <= max_batch_size``; throughput properties return
    0.0 (never raise) on an empty run.  All ``*_rounds`` quantities are
    in scheduler rounds (the discrete clock), ``wall_seconds`` is host
    wall-clock — hardware-model time lives in
    :class:`~repro.serve.cosim.ServingCoSimReport`, not here.
    """

    #: One dict per retired request (arrival/admission/first-token/finish
    #: rounds, wait, latency, TTFT, token count, finish reason, deadline
    #: outcome, eviction count).
    requests: list = field(default_factory=list)
    #: One dict per rejected submission (structured
    #: :meth:`~repro.serve.request.Rejection.as_row` records), so
    #: engine-level admission can retry or degrade instead of losing the
    #: request silently.
    rejections: list = field(default_factory=list)
    total_rounds: int = 0
    #: Rounds in which the hardware did any work (prefill chunks count
    #: even when no token was sampled yet).
    busy_rounds: int = 0
    total_tokens: int = 0
    peak_concurrency: int = 0
    wall_seconds: float = 0.0
    #: Peak KV memory over the run, in slots (one slot = one position's
    #: kv vectors in one layer).  Dense mode counts allocated slab
    #: capacity; paged mode counts slots of blocks actually in use — the
    #: number the paged allocator exists to shrink.
    peak_kv_slots: int = 0
    # ---- paged-mode extras (zero when served dense) ----
    paged: bool = False
    block_size: int = 0
    peak_blocks: int = 0
    #: Mean over busy rounds of occupied slots / allocated block slots.
    #: Can exceed 1.0 when prefix sharing makes several sequences count
    #: the same physical block's slots.
    mean_block_utilization: float = 0.0
    prefix_lookups: int = 0
    prefix_hits: int = 0
    #: Prompt tokens presented to the prefix cache / covered by adopted
    #: KV, over all lookups — the token-weighted hit accounting
    #: (:attr:`prefix_token_hit_rate`), which unlike
    #: :attr:`prefix_hit_rate` credits a hit by how much prefill it
    #: actually skipped.
    prompt_tokens_seen: int = 0
    prefix_tokens_hit: int = 0
    #: Prompt tokens whose prefill was skipped via a prefix-cache hit.
    prefill_tokens_saved: int = 0
    cow_copies: int = 0
    # ---- preemption extras (defaults when preempt="off") ----
    #: The scheduler's preemption mode
    #: (``off``/``recompute``/``swap``/``model``).
    preempt: str = "off"
    #: Preemption events over the run (all modes).
    preemptions: int = 0
    #: Per-victim choices made under ``preempt="model"`` (zero
    #: otherwise): how often the cost model picked swap vs recompute.
    model_swaps: int = 0
    model_recomputes: int = 0
    swap_outs: int = 0
    swap_ins: int = 0
    #: Pool blocks paged out to / back from the modeled host pool.
    swap_out_blocks: int = 0
    swap_in_blocks: int = 0
    #: Peak KV slots (all layers) resident in the host pool — the memory
    #: the swap path displaces off the device.
    host_peak_kv_slots: int = 0
    # ---- speculative-decoding extras (defaults when no draft model) ----
    spec_decode: bool = False
    spec_k: int = 0
    #: Multi-token target verify passes executed.
    verify_passes: int = 0
    #: Draft tokens proposed / accepted over the run.
    spec_proposed: int = 0
    spec_accepted: int = 0
    #: Tokens credited to verify passes (accepted drafts plus the bonus
    #: token each continuing pass leaves pending) — the numerator of
    #: :attr:`tokens_per_target_pass`.
    spec_tokens: int = 0
    # ---- fork/join extras (defaults when no fork families) ----
    #: Branch forks performed (parallel-sampling spawns + beam splits).
    forks: int = 0
    #: Branches retired early through the join path (beam pruning).
    joins: int = 0
    #: Pool blocks branches adopted copy-on-write at fork instead of
    #: allocating fresh — the shared-prompt-blocks saving (paged mode).
    fork_shared_blocks: int = 0
    #: KV slots (per-layer convention) dense forks physically copied —
    #: exactly the traffic paged CoW sharing avoids.
    fork_copied_slots: int = 0

    @property
    def accept_rate(self):
        """Fraction of draft proposals the target accepted (0.0 when
        not speculating)."""
        return (
            self.spec_accepted / self.spec_proposed if self.spec_proposed else 0.0
        )

    @property
    def tokens_per_target_pass(self):
        """Mean tokens produced per multi-token verify pass — the
        speculative amortization (1.0 would match plain decode; 0.0 when
        not speculating)."""
        return self.spec_tokens / self.verify_passes if self.verify_passes else 0.0

    @property
    def prefix_hit_rate(self):
        """Fraction of lookups with *any* coverage (coarse: a one-block
        hit counts like a full hit — prefer
        :attr:`prefix_token_hit_rate`)."""
        return self.prefix_hits / self.prefix_lookups if self.prefix_lookups else 0.0

    @property
    def prefix_token_hit_rate(self):
        """Token-weighted prefix hit rate:
        ``prefix_tokens_hit / prompt_tokens_seen``."""
        return (
            self.prefix_tokens_hit / self.prompt_tokens_seen
            if self.prompt_tokens_seen
            else 0.0
        )

    @property
    def tokens_per_round(self):
        """Decode throughput in tokens per busy round (the batching win)."""
        return self.total_tokens / self.busy_rounds if self.busy_rounds else 0.0

    @property
    def tokens_per_second(self):
        return self.total_tokens / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_latency(self):
        """Mean rounds from arrival to completion."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["latency_rounds"] for row in self.requests]))

    @property
    def mean_wait(self):
        """Mean rounds spent queued before admission."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["wait_rounds"] for row in self.requests]))

    @property
    def mean_ttft(self):
        """Mean time-to-first-token in rounds (arrival to first sampled
        token); 0.0 on an empty run."""
        ttfts = [
            row["ttft_rounds"]
            for row in self.requests
            if row.get("ttft_rounds") is not None
        ]
        return float(np.mean(ttfts)) if ttfts else 0.0

    @property
    def p95_ttft(self):
        """95th-percentile TTFT in rounds (tail latency; 0.0 when empty)."""
        ttfts = [
            row["ttft_rounds"]
            for row in self.requests
            if row.get("ttft_rounds") is not None
        ]
        return float(np.percentile(ttfts, 95)) if ttfts else 0.0

    @property
    def deadline_misses(self):
        """Retired requests that finished after their deadline."""
        return sum(1 for row in self.requests if row.get("deadline_miss"))

    @property
    def deadline_miss_rate(self):
        """Misses over requests that carried a deadline (0.0 if none)."""
        with_deadline = sum(
            1 for row in self.requests if row.get("deadline") is not None
        )
        return self.deadline_misses / with_deadline if with_deadline else 0.0

    def summary(self):
        """Flat dict of the aggregate metrics (for experiment tables)."""
        summary = {
            "requests": len(self.requests),
            "rounds": self.total_rounds,
            "tokens": self.total_tokens,
            "tokens/round": self.tokens_per_round,
            "tokens/s": self.tokens_per_second,
            "mean_latency_rounds": self.mean_latency,
            "mean_wait_rounds": self.mean_wait,
            "mean_ttft_rounds": self.mean_ttft,
            "peak_batch": self.peak_concurrency,
            "peak_kv_slots": self.peak_kv_slots,
        }
        if any(row.get("deadline") is not None for row in self.requests):
            summary["deadline_miss_rate"] = self.deadline_miss_rate
        if self.rejections:
            summary["rejected"] = len(self.rejections)
        if self.spec_decode:
            summary["spec_k"] = self.spec_k
            summary["verify_passes"] = self.verify_passes
            summary["accept_rate"] = self.accept_rate
            summary["tokens/pass"] = self.tokens_per_target_pass
        if self.forks:
            summary["forks"] = self.forks
            if self.joins:
                summary["beam_pruned"] = self.joins
            if self.paged:
                summary["fork_shared_blocks"] = self.fork_shared_blocks
            else:
                summary["fork_copied_slots"] = self.fork_copied_slots
        if self.preempt != "off":
            summary["preempt"] = self.preempt
            summary["preemptions"] = self.preemptions
            if self.preempt == "model":
                summary["model_swaps"] = self.model_swaps
                summary["model_recomputes"] = self.model_recomputes
            if self.preempt in ("swap", "model"):
                summary["swap_out_blocks"] = self.swap_out_blocks
                summary["swap_in_blocks"] = self.swap_in_blocks
                summary["host_peak_kv"] = self.host_peak_kv_slots
        if self.paged:
            summary.update(
                {
                    "block_size": self.block_size,
                    "peak_blocks": self.peak_blocks,
                    "block_util": self.mean_block_utilization,
                    "prefix_hit_rate": self.prefix_hit_rate,
                    "token_hit_rate": self.prefix_token_hit_rate,
                    "prefill_saved": self.prefill_tokens_saved,
                    "cow_copies": self.cow_copies,
                }
            )
        return summary


@dataclass
class _ForkFamily:
    """Book-keeping for one multi-branch request (``n`` or ``beam_width``).

    The family's root sequence is ``branches[0]``; spawned branches are
    appended in creation order and keep ids ``<root_id>#<branch_index>``.
    Pruned/finished branches stay in ``branches`` (results are read from
    them); liveness is judged by their status.
    """

    #: The originally submitted multi-branch :class:`Request`.
    request: object
    #: ``"sample"`` (``n > 1``) or ``"beam"`` (``beam_width > 1``).
    mode: str
    #: Target branch count (``n`` or ``beam_width``).
    width: int
    #: Every :class:`SequenceState` ever in the family, creation order.
    branches: list = field(default_factory=list)
    #: Next branch index to assign (the root is branch 0).
    next_branch: int = 1
    #: Worst-case pool blocks of one branch (captured at root admission;
    #: scales the family's block-side reservation under one-way mode).
    branch_worst: int | None = None
    #: Sample mode: True once the root has spawned its ``n - 1``
    #: siblings (a one-shot event, unlike beam's rolling forks).
    spawned: bool = False


class Scheduler:
    """Continuous-batching serving loop over one model.

    Parameters
    ----------
    model:
        A :class:`repro.models.inference.CachedTransformer`.
    policy_factory:
        Zero-argument callable producing a fresh eviction-policy instance
        per admitted request (policies hold per-sequence vote state).
        Default: a :class:`VotingPolicy` sized to the model.
    max_batch_size:
        Admission cap on concurrently running sequences.
    budget:
        Default per-sequence KV budget (``None`` = no eviction); a
        request's own ``budget`` field overrides it.
    evictions_per_step:
        Per-layer per-step eviction cap, as in the engine.
    sampler:
        ``sampler(logits, rng) -> token`` (default greedy).
    paged:
        Store KV state in fixed-size blocks from a shared
        :class:`~repro.serve.paging.BlockPool` instead of dense
        per-sequence slabs.  Decoded tokens are bit-identical either way;
        paging changes only where the floats live (and how much memory a
        mixed batch pins).
    block_size:
        Cache slots per block (paged mode).
    num_blocks:
        Fixed pool capacity; admission then waits until the pool can
        cover a request's worst-case block demand (after asking the
        prefix cache to shed idle entries).  ``None`` (default) makes the
        pool growable, matching the dense path's unbounded admission.
    prefix_caching:
        Share full prompt-prefix blocks across requests (paged mode):
        a request whose prompt starts with an already-prefilled block
        chain adopts those blocks copy-on-write and skips their prefill
        compute.  Requires every admitted request's policy to carry the
        same ``prefix_state_key`` for state snapshots to be reused; a
        policy that cannot snapshot (``prefix_shareable = False``) simply
        never shares.
    prefix_cache_blocks:
        LRU capacity bound (in pool blocks) for the prefix cache;
        ``None`` keeps every registered block resident.  Bounding it is
        what keeps never-rehit unique-suffix blocks from pinning pool
        memory across the whole trace.
    prefix_ttl:
        Idle lifetime for prefix-trie entries, in lookup-clock ticks
        (the trie's second eviction axis next to the LRU bound);
        ``None`` (default) disables expiry.
    prefix_match_mode:
        ``"token"`` (default) allows partial mid-block tail hits for
        unbudgeted sequences; ``"block"`` restricts matching to full
        blocks — the pre-trie coverage, kept as an ablation baseline.
    prefill_chunk:
        Per-round prompt-token budget for prefill work, shared by
        continuing prefills (served first, admission order) and new
        admissions.  ``None`` (default) prefills whole prompts in one
        round, the legacy behavior; any positive value caps the prompt
        rows a round computes, interleaving long prompts with decode
        (Sarathi-style chunked prefill).  Generated tokens are
        bit-identical at every chunk budget.
    adaptive_chunk:
        Re-size the chunk budget every round from *predicted cycles*
        instead of holding it static (requires ``prefill_chunk`` and
        ``cost_model``).  The round's budget is the largest rung of a
        power-of-two ladder around ``prefill_chunk`` (``x/4`` up to
        ``4x``) whose predicted prefill cycles fit in the cycle budget
        left after the current decode batch — Sarathi's dynamic split,
        priced on the hardware model: shallow decode rounds take big
        chunks (fewer weight-fetch passes), deep rounds take small ones
        (bounded round latency).  On a fixed paged pool the rung is
        additionally capped to the blocks actually free, so an
        oversized chunk never forces preemptions a smaller one avoids.
        Tokens stay bit-identical (chunk-budget invariance).
    cost_model:
        A :class:`repro.accel.predictor.RoundCostPredictor` pricing the
        decisions above (and ``preempt="model"``).  Its model config
        sets the *cost shapes* — pass Llama-2 7B shapes to steer a
        tiny-model trace by datacenter-scale costs, exactly like the
        co-simulator's ``hw_model`` substitution.
    admission_policy:
        Object with a ``key(request, now) -> sortable`` method ordering
        *arrived* waiting requests for admission (lowest key first; ties
        broken by submission order).  ``None`` = FIFO by arrival.  See
        :mod:`repro.serve.engine` for FIFO/EDF/priority-aging policies.
    preempt:
        ``"off"`` (default): one-way scheduling — admission reserves
        worst case and an admitted sequence holds its slot and blocks to
        retirement.  ``"recompute"`` / ``"swap"``: two-way scheduling —
        admission turns optimistic (immediate prefill need only) and
        slot/pool pressure preempts the victim ranked lowest by
        (priority, latest deadline, fewest generated tokens).  A
        recompute victim is re-admitted by re-prefilling its prompt plus
        the tokens generated so far; a swap victim pages its KV blocks
        and eviction-state snapshot to a modeled host pool and resumes
        bit-exactly.  ``"model"``: two-way scheduling that picks
        recompute *or* swap per victim from predicted cost (requires
        ``cost_model``): the host-link round trip of the victim's
        resident KV vs re-prefilling its prompt plus generated tokens —
        short sequences recompute (transfer-dominated), long ones swap
        (compute grows superlinearly).  Budget-evicted victims always
        swap: only swap resumes a reshaped cache bit-exactly.  Whenever
        capacity suffices, no preemption fires and all settings produce
        bit-identical tokens, eviction logs, and traces.
    auto_fast_forward:
        Jump the round clock over idle gaps to the next queued arrival
        (default, right for a pre-submitted trace).  The serving engine
        disables this to own the clock: with streaming submission a
        request may still arrive *during* the gap.
    draft_model:
        Optional cheap :class:`~repro.models.inference.CachedTransformer`
        (same vocabulary as ``model``) enabling speculative decoding:
        each round it proposes up to ``spec_k`` tokens per running
        sequence, which the target verifies in one multi-token pass.
        Requires the greedy sampler (acceptance is exact argmax match);
        generated tokens and eviction logs stay bit-identical to
        ``draft_model=None``.
    spec_k:
        Draft tokens proposed per sequence per speculative round
        (clipped to the sequence's remaining token budget and to what
        its KV budget allows without mid-window eviction).
    """

    def __init__(
        self,
        model,
        policy_factory=None,
        max_batch_size=8,
        budget=None,
        evictions_per_step=None,
        sampler=greedy,
        paged=False,
        block_size=16,
        num_blocks=None,
        prefix_caching=True,
        prefix_cache_blocks=None,
        prefix_ttl=None,
        prefix_match_mode="token",
        prefill_chunk=None,
        adaptive_chunk=False,
        cost_model=None,
        admission_policy=None,
        auto_fast_forward=True,
        preempt="off",
        draft_model=None,
        spec_k=4,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if preempt not in PREEMPT_MODES:
            raise ValueError(
                f"preempt must be one of {PREEMPT_MODES}, got {preempt!r}"
            )
        if spec_k <= 0:
            raise ValueError(f"spec_k must be positive, got {spec_k}")
        if draft_model is not None:
            if sampler is not greedy:
                raise ValueError(
                    "speculative decoding requires the greedy sampler: "
                    "acceptance is exact-match against the target's argmax, "
                    "which is only deterministic under greedy sampling"
                )
            if draft_model.config.vocab_size != model.config.vocab_size:
                raise ValueError(
                    f"draft vocab {draft_model.config.vocab_size} != "
                    f"target vocab {model.config.vocab_size}: speculative "
                    "proposals must share the target's token space"
                )
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if evictions_per_step is not None and evictions_per_step <= 0:
            raise ValueError("evictions_per_step must be positive")
        if prefill_chunk is not None and prefill_chunk <= 0:
            raise ValueError(
                f"prefill_chunk must be positive, got {prefill_chunk}"
            )
        self.prefill_chunk = (
            None if prefill_chunk is None else int(prefill_chunk)
        )
        self.adaptive_chunk = bool(adaptive_chunk)
        self.cost_model = cost_model
        if self.adaptive_chunk:
            if self.prefill_chunk is None:
                raise ValueError(
                    "adaptive_chunk needs a prefill_chunk to anchor the "
                    "candidate ladder (it is the x1 rung)"
                )
            if cost_model is None:
                raise ValueError(
                    "adaptive_chunk needs a cost_model "
                    "(repro.accel.predictor.RoundCostPredictor) to price "
                    "candidate chunk budgets"
                )
        if preempt == "model" and cost_model is None:
            raise ValueError(
                "preempt='model' needs a cost_model "
                "(repro.accel.predictor.RoundCostPredictor) to price "
                "recompute vs swap per victim"
            )
        #: The chunk budget in force for the current round (equals
        #: ``prefill_chunk`` unless adaptive chunking re-sized it).
        self._round_chunk = self.prefill_chunk
        self.admission_policy = admission_policy
        self.auto_fast_forward = bool(auto_fast_forward)
        self.model = model
        self.policy_factory = policy_factory or (
            lambda: VotingPolicy(model.config.n_layers)
        )
        self.max_batch_size = int(max_batch_size)
        self.budget = budget
        self.evictions_per_step = evictions_per_step
        self.sampler = sampler
        self.preempt = preempt
        self.draft_model = draft_model
        self.spec_k = int(spec_k)

        self.paged = bool(paged)
        #: The one owner of every device resource a sequence can hold:
        #: batch slots, pool blocks, prefix-cache reservations, and the
        #: modeled host swap pool.
        self.manager = KVResourceManager(
            model.config,
            max_batch_size=self.max_batch_size,
            paged=self.paged,
            block_size=block_size,
            num_blocks=num_blocks,
            prefix_caching=prefix_caching,
            prefix_cache_blocks=prefix_cache_blocks,
            prefix_ttl=prefix_ttl,
            prefix_match_mode=prefix_match_mode,
            preempt=preempt,
            policy_factory=self.policy_factory,
        )

        self._waiting = []  # SequenceState, sorted by (arrival, submit order)
        self._running = []  # SequenceState, admission order
        self._finished = []
        self._families = {}  # family id (root request id) -> _ForkFamily
        self._rejected = []  # Rejection records, submission order
        self._submit_count = 0
        #: Throwaway policy instance backing :meth:`prefix_probe` (the
        #: probe only needs its ``prefix_state_key``); built lazily.
        self._probe_policy = None
        #: Per-round hardware trace (:class:`~repro.serve.trace.RoundTrace`
        #: per non-empty round), consumed by
        #: :class:`~repro.serve.cosim.ServingCoSimulator`.
        self.trace = []
        self.round_index = 0
        self._busy_rounds = 0
        self._total_tokens = 0
        self._peak_concurrency = 0
        self._prefill_tokens_saved = 0
        self._peak_kv_slots = 0
        self._utilization_sum = 0.0
        self._utilization_rounds = 0
        self._preemption_count = 0
        self._model_swaps = 0
        self._model_recomputes = 0
        self._verify_passes = 0
        self._spec_proposed = 0
        self._spec_accepted = 0
        self._spec_tokens = 0

    # ------------------------------------------------------------------
    # Resource views (owned by the manager)
    # ------------------------------------------------------------------
    @property
    def block_pool(self):
        return self.manager.block_pool

    @property
    def prefix_cache(self):
        return self.manager.prefix_cache

    @property
    def cache_bank(self):
        return self.manager.cache_bank

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request, strict=True):
        """Queue a :class:`Request` for admission.

        The request becomes visible to the admission loop at its
        ``arrival_time``; the admission policy (default: FIFO by
        arrival) orders arrived requests.  Returns the request's live
        :class:`SequenceState` on acceptance.  An unsatisfiable paged
        request (worst-case block demand exceeding the whole fixed pool
        — it could never be admitted and would stall the queue forever)
        is recorded as a structured :class:`Rejection` in the report
        either way; with ``strict=False`` the rejection is *returned*
        instead of raised, so engine-level admission can retry with a
        smaller budget or degrade gracefully.  A rejected id is not
        reserved: resubmission (e.g. after shrinking the request) is
        allowed.

        Raises
        ------
        TypeError
            If ``request`` is not a :class:`Request`.
        KeyError
            If the id collides with any live *or finished* request
            (results are keyed by request id, so ids are never reused
            within one scheduler).
        ValueError
            In strict mode (default), for an unsatisfiable paged
            request as described above.
        """
        if not isinstance(request, Request):
            raise TypeError(f"expected Request, got {type(request).__name__}")
        # Finished ids stay reserved too: results are keyed by request id
        # (``tokens_for``, report rows), so reuse would make them ambiguous.
        seen = {
            s.request_id
            for s in self._waiting + self._running + self._finished
        }
        if request.request_id in seen or request.request_id in self.cache_bank:
            raise KeyError(f"duplicate request id {request.request_id!r}")
        if request.num_branches > 1:
            if self.draft_model is not None:
                raise ValueError(
                    "fork families (n > 1 / beam_width > 1) are incompatible "
                    "with speculative decoding: a branch's provisional verify "
                    "window would be shared copy-on-write with its siblings, "
                    "so rollback could not stay per-branch exact"
                )
            if request.num_branches > self.max_batch_size:
                raise ValueError(
                    f"request {request.request_id!r} needs "
                    f"{request.num_branches} batch slots for its branches "
                    f"but max_batch_size is {self.max_batch_size}"
                )
        if self.paged and not self.block_pool.growable:
            budget = request.budget if request.budget is not None else self.budget
            # The worst case is also the request's *actual* peak demand
            # (prefill transient or budget steady state, plus the
            # prefix-registration CoW a budgeted shrink performs), so a
            # request beyond the whole pool is unservable in every
            # preempt mode.
            worst = self.manager.sequence_worst_blocks(
                request.prompt.shape[0], request.max_new_tokens, budget
            )
            # A fork family must eventually hold every branch resident at
            # once (branches are never half-admitted), so its unservable
            # threshold is the per-branch worst times the branch count —
            # conservative for paged mode, where branches actually share
            # their prompt blocks, but a family beyond it could deadlock
            # a one-way pool.
            worst *= request.num_branches
            if worst > self.block_pool.num_blocks:
                rejection = Rejection(
                    request_id=request.request_id,
                    reason="pool_too_small",
                    detail=(
                        f"needs up to {worst} blocks but the pool only "
                        f"has {self.block_pool.num_blocks}"
                    ),
                    needed_blocks=worst,
                    pool_blocks=self.block_pool.num_blocks,
                    round_index=self.round_index,
                )
                self._rejected.append(rejection)
                if strict:
                    raise ValueError(
                        f"request {request.request_id!r} {rejection.detail}"
                    )
                return rejection
        state = SequenceState(request=request, submit_index=self._submit_count)
        self._submit_count += 1
        if request.num_branches > 1:
            state.family = request.request_id
            self._families[request.request_id] = _ForkFamily(
                request=request,
                mode="sample" if request.n > 1 else "beam",
                width=request.num_branches,
                branches=[state],
            )
        self._waiting.append(state)
        self._waiting.sort(
            key=lambda s: (s.request.arrival_time, s.submit_index)
        )
        return state

    @property
    def num_waiting(self):
        return len(self._waiting)

    @property
    def num_running(self):
        return len(self._running)

    @property
    def done(self):
        return not self._waiting and not self._running

    # ------------------------------------------------------------------
    # Router introspection (read-only views for fleet placement)
    # ------------------------------------------------------------------
    @property
    def outstanding_tokens(self):
        """Tokens of work still owed to live requests: unprefilled
        prompt rows plus ungenerated decode tokens, summed over the
        waiting queue and the running batch.  The fleet router's
        least-loaded placement signal; read-only."""
        total = 0
        for state in self._waiting + self._running:
            request = state.request
            prompt_rows = (
                state.prompt_tokens.shape[0]
                if state.prompt_tokens is not None
                else request.prompt.shape[0]
            )
            total += max(0, int(prompt_rows) - state.prefilled)
            total += max(0, request.max_new_tokens - state.num_generated)
        return total

    @property
    def free_kv_capacity(self):
        """Free KV capacity for the router's tie-breaks: free pool
        blocks when paged, free batch slots when dense."""
        if self.paged:
            return self.block_pool.num_free
        return self.manager.slots_free

    def prefix_probe(self, request):
        """Longest cached prefix (in tokens) this scheduler's radix trie
        would adopt for ``request``'s prompt — the fleet router's
        prefix-affinity signal.

        A pure read: unlike the admission-time match it touches no LRU
        clocks and no hit counters, so probing every replica before a
        placement decision cannot perturb any replica's cache behavior.
        Returns 0 when prefix sharing cannot apply (dense mode, prefix
        caching off, or a non-shareable eviction policy)."""
        if self.prefix_cache is None:
            return 0
        policy = self._probe_policy
        if policy is None:
            policy = self._probe_policy = self.policy_factory()
        if not policy.prefix_shareable:
            return 0
        budget = request.budget if request.budget is not None else self.budget
        return self.prefix_cache.probe(
            np.asarray(request.prompt),
            policy.prefix_state_key(),
            budgeted=budget is not None,
        )

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def run(self, max_rounds=None):
        """Serve until every submitted request has retired.

        Returns a :class:`ServingReport` aggregating throughput, latency
        and memory statistics over the whole run; per-request tokens
        stay retrievable through :meth:`tokens_for` and the per-round
        hardware trace through :attr:`trace`.  ``max_rounds`` bounds the
        scheduler iterations executed by *this call* (``None`` = drain
        completely) — the horizon valve overload experiments use to show
        one-way scheduling stalling where two-way scheduling retires.
        """
        if max_rounds is not None and max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        start = time.perf_counter()
        executed = 0
        while not self.done:
            if max_rounds is not None and executed >= max_rounds:
                break
            self.run_round()
            executed += 1
        wall = time.perf_counter() - start
        return self._report(wall)

    def run_round(self):
        """One scheduler iteration: continue prefills, admit, sample,
        batched decode.

        Each round appends a :class:`~repro.serve.trace.RoundTrace` to
        :attr:`trace` recording the hardware work performed (prefill row
        counts, per-sequence decode attention lengths), which the
        serving co-simulator prices after the fact.  With
        ``prefill_chunk`` set, in-flight chunked prefills consume the
        round's prompt-token budget before new admissions do.
        """
        # Fast-forward through idle time: nothing running and the next
        # arrival is still in the future.
        if self.auto_fast_forward and not self._running and self._waiting:
            next_arrival = self._waiting[0].request.arrival_time
            if next_arrival > self.round_index:
                self.round_index = next_arrival

        # The round's chunk budget must be fixed before headroom is
        # secured: _round_block_demand sizes this round's prefill claims
        # from it.
        self._round_chunk = (
            self._adaptive_chunk_budget()
            if self.adaptive_chunk
            else self.prefill_chunk
        )
        record = RoundTrace(round_index=self.round_index)
        self._ensure_headroom(record)
        chunk_budget = self._continue_prefills(record, self._round_chunk)
        self._admit(record, chunk_budget)
        self._peak_concurrency = max(self._peak_concurrency, len(self._running))
        self._sample_kv_usage()

        sampled = self._sample(record)
        beam_ready = None
        if self._families:
            beam_tokens, beam_ready = self._advance_beams(record)
            sampled += beam_tokens
            beam_ready = {id(s) for s in beam_ready}
        active = [
            s
            for s in self._running
            if s.status == RUNNING
            and (beam_ready is None or not self._is_beam(s) or id(s) in beam_ready)
        ]
        if active and self.draft_model is not None:
            plain = []
            for state in active:
                k_eff = self._can_speculate(state)
                if k_eff:
                    sampled += self._spec_decode(state, k_eff, record)
                else:
                    plain.append(state)
            if plain:
                self._decode(plain, record)
        elif active:
            self._decode(active, record)
        self._total_tokens += sampled
        if (
            record.prefills
            or record.decodes
            or record.dead_steps
            or record.verifies
            or record.swaps
            or record.forks
        ):
            # Busy = the hardware did work, whether or not a token came
            # out: a chunked-prefill-only round costs compute too, and
            # tokens_per_round must reflect it.  (Unchunked runs are
            # unchanged: every round with work also samples.)
            self._busy_rounds += 1
            self.trace.append(record)
        self._retire()
        self.round_index += 1

    # ------------------------------------------------------------------
    # Round stages
    # ------------------------------------------------------------------
    def _adaptive_chunk_budget(self):
        """Size this round's chunk budget from predicted cycles.

        The candidate ladder spans power-of-two rungs around the
        configured ``prefill_chunk`` (``x/4`` … ``4x`` — a small fixed
        set keeps the predictor's prefill cache hot).  The round's cycle
        budget is the predicted cost of a max-rung prefill alone; the
        chosen rung is the largest whose predicted prefill pass fits the
        budget left after the current decode batch's predicted cycles,
        so the chunk shrinks monotonically as the decode batch deepens
        (Sarathi's dynamic split, decided in modeled cycles).  On a
        fixed paged pool under two-way scheduling, rungs whose block
        demand exceeds the blocks currently free are also skipped — a
        bigger chunk that only fits by preempting someone costs more
        than it saves.  The smallest rung is always available, so
        prefill progress is never starved.
        """
        base = self.prefill_chunk
        ladder = sorted({max(1, base // 4), max(1, base // 2), base, 2 * base, 4 * base})
        cost = self.cost_model
        cycle_budget = cost.prefill_cycles(ladder[-1])
        decode_lengths = [
            state.cache[0].length + 1
            for state in self._running
            if state.status == RUNNING and state.cache is not None
        ]
        decode_cycles = cost.decode_round_cycles(decode_lengths)
        block_cap = None
        if (
            self.paged
            and not self.block_pool.growable
            and self.manager.preemptible
        ):
            block_cap = self.block_pool.num_free
        chunk = ladder[0]
        for candidate in ladder[1:]:
            if cost.prefill_cycles(candidate) + decode_cycles > cycle_budget:
                break
            if (
                block_cap is not None
                and self.manager.blocks_for_rows(candidate) > block_cap
            ):
                break
            chunk = candidate
        return chunk

    def _continue_prefills(self, record, chunk_budget):
        """Advance in-flight chunked prefills (admission order) by up to
        ``chunk_budget`` prompt tokens total; returns the budget left
        for new admissions."""
        for state in self._running:
            if state.status != PREFILLING:
                continue
            if chunk_budget is not None and chunk_budget <= 0:
                break
            request = state.request
            budget = (
                request.budget if request.budget is not None else self.budget
            )
            chunk_budget = self._prefill_state(
                state, budget, chunk_budget, record
            )
        return chunk_budget

    def _next_admission(self):
        """The arrived waiting request the admission policy ranks first
        (``None`` when nothing has arrived yet)."""
        arrived = [
            s
            for s in self._waiting
            if s.request.arrival_time <= self.round_index
        ]
        if not arrived:
            return None
        if self.admission_policy is None:
            # _waiting is kept sorted by (arrival, submit order): FIFO.
            return arrived[0]
        now = self.round_index
        return min(
            arrived,
            key=lambda s: (
                self.admission_policy.key(s.request, now),
                s.submit_index,
            ),
        )

    def _admit(self, record, chunk_budget):
        """Admit arrived requests into free batch slots (prefill them).

        In paged mode, admission additionally *reserves blocks, not
        slabs*: under one-way scheduling (``preempt="off"``) a fixed
        pool must cover the request's worst-case block demand
        (prefix-cache entries are shed first), otherwise the request —
        and everyone ranked behind it — keeps waiting until retirements
        free blocks.  Under two-way scheduling only the immediate
        prefill need is required, and an arrived request that strictly
        outranks a running victim (under the admission policy) may
        preempt it to take its slot or blocks.  A ``SWAPPED`` sequence
        re-admits by paging its saved blocks back in; a ``PREEMPTED``
        one re-prefills its prompt plus generated tokens.  With
        ``prefill_chunk`` set, each (re-)prefilling admission also needs
        prompt-token budget left this round.
        """
        while True:
            if chunk_budget is not None and chunk_budget <= 0:
                break
            state = self._next_admission()
            if state is None:
                break
            if not self._make_room(state, chunk_budget, record):
                break
            self._waiting.remove(state)

            if state.status == SWAPPED:
                image = self.manager.swap_in(state)
                state.swapped_in_slots += image.kv_slots
                record.swaps.append(
                    SwapEvent(
                        state.request_id,
                        SWAP_IN,
                        kv_slots=image.kv_slots,
                        blocks=image.blocks_in,
                    )
                )
                self._running.append(state)
                if state.family is not None:
                    self._sync_family(self._families[state.family])
                continue  # no prefill rows: chunk budget untouched

            request = state.request
            resumed = state.status == PREEMPTED
            budget = request.budget if request.budget is not None else self.budget
            state.prompt_tokens = self._effective_prompt(state)
            capacity = sequence_capacity(
                state.prompt_tokens.shape[0],
                request.max_new_tokens - state.num_generated,
                budget,
            )
            state.reserved_blocks = self.manager.sequence_worst_blocks(
                state.prompt_tokens.shape[0],
                request.max_new_tokens - state.num_generated,
                budget,
            )

            state.policy = self.policy_factory()
            state.policy.reset()
            if not resumed:
                # A recompute resume keeps its RNG: tokens already
                # sampled never consume the stream twice.
                state.rng = np.random.default_rng(request.seed)
            state.cache = self.manager.admit(
                request.request_id, capacity, state.reserved_blocks
            )
            state.status = PREFILLING
            if state.admitted_at is None:
                state.admitted_at = self.round_index
            if state.family is not None:
                family = self._families[state.family]
                if family.branch_worst is None:
                    family.branch_worst = state.reserved_blocks
                self._sync_family(family)

            if self.paged:
                self._attach_prefix(state)
            chunk_budget = self._prefill_state(
                state, budget, chunk_budget, record
            )
            self._running.append(state)

    def _effective_prompt(self, state):
        """The tokens this admission must prefill: the request prompt,
        extended with the already-generated tokens for a recompute
        resume (their KV entries are rebuilt by prefilling them — exact
        when no eviction budget reshaped the cache)."""
        prompt = state.request.prompt
        if not state.tokens:
            return prompt
        generated = np.asarray(state.tokens, dtype=prompt.dtype)
        return np.concatenate([prompt, generated])

    # ------------------------------------------------------------------
    # Two-way scheduling (preemption)
    # ------------------------------------------------------------------
    def _make_room(self, state, chunk_budget, record):
        """Secure a batch slot and the block demand for admitting (or
        resuming) ``state``; under two-way scheduling this may preempt
        running victims the candidate strictly outranks.  Returns False
        when the candidate must keep waiting."""
        manager = self.manager
        # A candidate admitted (or resumed) this round takes its first
        # decode step in the same round — a full provisional verify
        # window when speculating, a single append otherwise.
        step_tokens = 1 if self.draft_model is None else self.spec_k + 1
        if state.status == SWAPPED:
            worst = own_need = manager.swap_resume_demand(
                state.request_id, step_tokens
            )
        else:
            request = state.request
            budget = request.budget if request.budget is not None else self.budget
            prompt_length = request.prompt.shape[0] + state.num_generated
            worst = manager.sequence_worst_blocks(
                prompt_length,
                request.max_new_tokens - state.num_generated,
                budget,
            )
            rows_now = (
                prompt_length
                if chunk_budget is None
                else min(chunk_budget, prompt_length)
            )
            own_need = manager.blocks_for_rows(rows_now)
            if self.paged:
                n_layers = self.model.config.n_layers
                block_size = self.block_pool.block_size
                if budget is not None and self.prefix_cache is not None:
                    # The shrink-to-budget eviction CoWs the *full*
                    # blocks this prefill registers in the prefix cache.
                    own_need += (rows_now // block_size) * n_layers
                elif budget is None:
                    # No eviction will free slack: count the fresh tail
                    # blocks the same-round first step crosses into.
                    fresh = -(-(rows_now + step_tokens) // block_size) - (
                        -(-rows_now // block_size)
                    )
                    own_need += fresh * n_layers
        slots = 1
        if state.family is not None:
            worst = self._family_admission_worst(state, worst)
            slots = self._family_slots_needed(state)

        def immediate():
            # Optimistic admission must not eat the blocks the resident
            # batch still needs this round (its decode appends and CoW)
            # — otherwise a mid-round allocation would fail where
            # round-start headroom had been assured.  Recomputed per
            # check: preempting a victim below removes its share of the
            # round demand along with its blocks.
            if manager.preemptible and self.paged:
                return own_need + self._round_block_demand()
            return own_need

        while not manager.can_admit(worst, immediate(), slots=slots):
            if not manager.preemptible:
                return False
            victim = self._select_victim()
            if victim is None or not self._outranks(state, victim):
                return False
            self._preempt(victim, record)
        return True

    def _victim_rank(self, state):
        """Preemption order: lowest priority first, then latest deadline
        (no deadline = the most slack), then fewest generated tokens
        (least progress lost), then most recent submission."""
        request = state.request
        deadline_rank = (
            -request.deadline if request.deadline is not None else float("-inf")
        )
        return (
            request.priority,
            deadline_rank,
            state.num_generated,
            -state.submit_index,
        )

    def _select_victim(self):
        """The running sequence two-way scheduling would evict next."""
        candidates = [
            s for s in self._running if s.status in (RUNNING, PREFILLING)
        ]
        if not candidates:
            return None
        return min(candidates, key=self._victim_rank)

    def _admission_key(self, request):
        if self.admission_policy is None:
            return (request.arrival_time,)
        return self.admission_policy.key(request, self.round_index)

    def _outranks(self, candidate, victim):
        """Whether ``candidate`` strictly outranks ``victim`` under the
        admission policy — the gate on admission-pressure preemption
        (deadline pressure under EDF, priority pressure under
        priority-with-aging; under FIFO only an older arrival — e.g. a
        previously preempted sequence — outranks).  Strictness prevents
        two equally-ranked requests from trading the same slot forever.
        """
        return self._admission_key(candidate.request) < self._admission_key(
            victim.request
        )

    def _choose_preempt_mode(self, state):
        """Pick recompute or swap for this victim from predicted cost.

        A budget-evicted victim always swaps: recompute re-derives
        eviction state from a fresh prefill of the extended prompt,
        which is deterministic but not bit-identical to the
        uninterrupted schedule — only swap is exact there.  Otherwise
        the cheaper of the modeled host-link round trip (page the
        resident KV out now, back in at resume) and the modeled
        re-prefill of the prompt plus every generated token wins; ties
        go to swap (no recomputed logits to re-derive).
        """
        request = state.request
        budget = request.budget if request.budget is not None else self.budget
        if budget is not None:
            return "swap"
        cost = self.cost_model
        kv_slots = max((layer.length for layer in state.cache), default=0)
        swap_cycles = cost.preempt_swap_cycles(kv_slots)
        rows = request.prompt.shape[0] + state.num_generated
        recompute_cycles = cost.preempt_recompute_cycles(rows)
        return "swap" if swap_cycles <= recompute_cycles else "recompute"

    def _preempt(self, state, record):
        """Evict ``state`` from the batch back into the waiting queue.

        ``preempt="swap"`` pages its cache and eviction state to the
        host pool (resume is bit-exact); ``"recompute"`` drops
        everything and re-derives it from a re-prefill at re-admission;
        ``"model"`` picks whichever the cost model predicts cheaper for
        *this* victim.  Either way the freed slot and blocks are
        immediately available.
        """
        state.preemptions += 1
        self._preemption_count += 1
        self._running.remove(state)
        mode = self.preempt
        if mode == "model":
            mode = self._choose_preempt_mode(state)
            if mode == "swap":
                self._model_swaps += 1
            else:
                self._model_recomputes += 1
        if mode == "swap":
            image = self.manager.swap_out(state)
            state.status = SWAPPED
            state.swapped_out_slots += image.kv_slots
            record.swaps.append(
                SwapEvent(
                    state.request_id,
                    SWAP_OUT,
                    kv_slots=image.kv_slots,
                    blocks=image.blocks_out,
                )
            )
        else:
            self.manager.release(state.request_id)
            state.status = PREEMPTED
            state.cache = None
            state.policy = None
            state.logits = None
            state.position = 0
            state.prefilled = 0
            state.prompt_tokens = None
            state.prefix_node = None
            state.prefix_hit_length = 0
            state.prefix_tainted = False
            # Recompute drops *all* derived state, the (host-resident)
            # draft cache included; a swap victim keeps its draft cache —
            # its contents are committed tokens, still valid at resume.
            state.draft_cache = None
        self._waiting.append(state)
        self._waiting.sort(
            key=lambda s: (s.request.arrival_time, s.submit_index)
        )
        if state.family is not None:
            # Losing residency may drop the family's standing reservation
            # (re-secured wholesale at the next branch's re-admission).
            self._sync_family(self._families[state.family])

    def _ensure_headroom(self, record):
        """Guarantee this round's block demand before any compute runs.

        Optimistic admission means the pool can run dry mid-run; rather
        than unwinding a partially-executed model call, the worst-case
        demand of every resident sequence's next step (fresh tail
        blocks, copy-on-write of adopted blocks) is secured up front,
        preempting victims until it fits.  A single sequence always
        fits: its round demand is bounded by its worst case, which
        admission verified against the whole pool.
        """
        manager = self.manager
        if (
            not manager.preemptible
            or not self.paged
            or self.block_pool.growable
        ):
            return
        while True:
            demand = self._round_block_demand()
            if demand == 0 or manager.has_blocks(demand):
                return
            candidates = [
                s for s in self._running if s.status in (RUNNING, PREFILLING)
            ]
            if len(candidates) <= 1:
                # A lone sequence always fits: its true round demand is
                # bounded by its worst case, which submission verified
                # against the whole pool (the demand estimate above is
                # deliberately conservative — never thrash on it).
                return
            self._preempt(min(candidates, key=self._victim_rank), record)

    def _round_block_demand(self):
        """Upper bound on pool blocks this round's prefill chunks and
        decode steps may claim for the sequences already resident."""
        manager = self.manager
        chunk_budget = self._round_chunk
        demand = 0
        for state in self._running:
            budgeted = (
                state.request.budget is not None or self.budget is not None
            )
            if state.status == PREFILLING:
                remaining = state.prompt_tokens.shape[0] - state.prefilled
                rows = (
                    remaining
                    if chunk_budget is None
                    else min(chunk_budget, remaining)
                )
                if chunk_budget is not None:
                    chunk_budget = max(0, chunk_budget - rows)
                demand += manager.prefill_block_demand(
                    state.cache, rows, budgeted, final=rows >= remaining
                )
            elif state.status == RUNNING:
                # A speculative round appends up to spec_k + 1 provisional
                # tokens before any rollback; cover the worst case even
                # for sequences that may fall back to a one-token step.
                tokens = 1 if self.draft_model is None else self.spec_k + 1
                demand += manager.decode_block_demand(
                    state.cache, budgeted, tokens=tokens
                )
        # A beam family about to advance may fork up to width - 1
        # branches mid-round (after headroom was secured), each taking
        # an append step of its own; bound their demand by the widest
        # live branch's step demand.
        for family in self._families.values():
            if family.mode != "beam":
                continue
            live = self._family_live(family)
            if not live or any(s.status != RUNNING for s in live):
                continue
            budgeted = (
                family.request.budget is not None or self.budget is not None
            )
            per_step = max(
                manager.decode_block_demand(s.cache, budgeted) for s in live
            )
            demand += (family.width - 1) * per_step
        return demand

    def _prefill_state(self, state, budget, chunk_budget, record):
        """Prefill the next chunk (or the whole remainder) of ``state``'s
        effective prompt (the request prompt, plus generated tokens on a
        recompute resume), record the trace event, and complete the
        prefill when the last token lands.  Returns the chunk budget
        left."""
        request = state.request
        total = state.prompt_tokens.shape[0]
        start = state.prefilled
        end = total if chunk_budget is None else min(total, start + chunk_budget)
        logits = self._prefill_compute(state, start, end)
        state.prefilled = end
        if chunk_budget is not None:
            chunk_budget -= end - start
        record.prefills.append(
            PrefillEvent(
                request_id=request.request_id,
                prompt_length=int(total),
                computed_tokens=int(end - start),
                prefix_length=int(start),
                budgeted=budget is not None,
                final=end == total,
            )
        )
        if end == total:
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=0,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = logits
            state.position = total
            state.status = RUNNING
            if (
                state.family is not None
                and state.request.n > 1
                and not state.forked
            ):
                self._fork_family(state, record)
        return chunk_budget

    def _prefill_compute(self, state, start, end):
        """Run the model over prompt rows ``[start, end)`` against the
        populated cache; dispatches dense vs paged."""
        if self.paged:
            return self._prefill_paged_range(state, start, end)
        if start == 0 and end == state.prompt_tokens.shape[0]:
            return self._prefill_dense(state)
        return self._prefill_dense_range(state, start, end)

    def _prefill_dense(self, state):
        """The seed path: one-shot prefill, one observe_block per layer."""
        prompt = state.prompt_tokens
        prefill = self.model.prefill(prompt, state.cache)
        positions = np.arange(prompt.shape[0])
        for layer, attn in enumerate(prefill.attention):
            state.policy.observe_block(layer, attn, positions, PREFILL)
        return prefill.logits

    def _prefill_dense_range(self, state, start, end):
        """Dense chunked prefill: rows ``[start, end)`` over the cache
        populated by earlier chunks.  The model's row-count-invariant
        continuation plus the policy's chunk-invariant
        ``observe_continuation`` make the resulting logits and policy
        state bitwise equal to the one-shot path at any chunking."""
        prompt = state.prompt_tokens
        prefill = self.model.prefill(
            prompt[start:end], state.cache, start_position=start
        )
        positions = np.arange(end)
        for layer, attn in enumerate(prefill.attention):
            state.policy.observe_continuation(layer, attn, positions, PREFILL)
        return prefill.logits

    def _attach_prefix(self, state):
        """Adopt the longest cached prefix of the prompt (paged
        admission, before the first prefill chunk): a radix-trie lookup
        returns full-block coverage plus — for unbudgeted sequences — a
        partial mid-block tail.  The matched blocks attach copy-on-write,
        the deepest pure policy snapshot within the coverage is imported,
        and the trie node is remembered so later chunks keep registering
        blocks from it.

        Budgeted sequences stop at the deepest snapshot-bearing node
        (the shrink-to-budget eviction consults the votes, which must be
        bit-exact).  An unbudgeted sequence may outrun its snapshot —
        rows adopted without their vote contributions taint the policy
        state, which is harmless for its own tokens (the votes are never
        consulted without a budget) but makes its later boundary exports
        impure, so they are registered without snapshots."""
        policy = state.policy
        if self.prefix_cache is None or not policy.prefix_shareable:
            return
        request = state.request
        budget = request.budget if request.budget is not None else self.budget
        prompt = state.prompt_tokens
        n_layers = self.model.config.n_layers
        hit = self.prefix_cache.match(
            prompt, policy.prefix_state_key(), budgeted=budget is not None
        )
        state.prefix_node = hit.parent
        if not hit.shared_length:
            return
        nodes = list(hit.nodes)
        if hit.tail_node is not None:
            nodes.append(hit.tail_node)
        state.cache.attach_prefix(
            [
                [node.layer_block_ids[layer] for node in nodes]
                for layer in range(n_layers)
            ],
            hit.shared_length,
        )
        if hit.policy_length:
            for layer in range(n_layers):
                policy.import_prefill_state(
                    layer, hit.policy_state[layer], hit.policy_length
                )
        state.prefix_tainted = hit.tainted
        assert not (state.prefix_tainted and budget is not None)
        state.prefix_hit_length = hit.shared_length
        state.prefilled = hit.shared_length
        self._prefill_tokens_saved += hit.shared_length

    def _prefill_paged_range(self, state, start, end):
        """Paged prefill of prompt rows ``[start, end)`` with prefix
        registration (the prefix-cache *match* happened at admission in
        :meth:`_attach_prefix`; ``start`` already covers adopted blocks
        and earlier chunks).

        1. Run the model over the range only — the continuation attends
           to the resident keys/values, and prefill's row-count-invariant
           matmuls make the result bitwise equal to a cold prefill.
        2. Feed the new attention rows to the policy in block-sized
           chunks, snapshotting state at every block boundary and
           registering the freshly written full blocks in the prefix
           trie (before eviction can mutate them); the parent node is
           carried in ``state.prefix_node`` across chunks.  A tainted
           sequence (partial/unsnapshotted adoption) registers its
           blocks without snapshots — their KV is still pure, its vote
           state is not.  Registration covers *prompt* rows only, so
           provisional speculative tokens never enter the trie.
        """
        prompt = state.prompt_tokens
        policy = state.policy
        cache = state.cache
        n_layers = self.model.config.n_layers
        block_size = self.block_pool.block_size
        shareable = self.prefix_cache is not None and policy.prefix_shareable

        prefill = self.model.prefill(
            prompt[start:end], cache, start_position=start
        )

        # Chunked observation: rows [row_start, chunk_end) at a time, so
        # the policy's slot state at every block boundary is a pure
        # function of the tokens before it and can be snapshotted.
        positions = np.arange(prompt.shape[0])
        row_start = start
        while row_start < end:
            chunk_end = min((row_start // block_size + 1) * block_size, end)
            for layer, attn in enumerate(prefill.attention):
                rows = attn[:, row_start - start : chunk_end - start, :chunk_end]
                policy.observe_continuation(
                    layer, rows, positions[:chunk_end], PREFILL
                )
            if shareable and chunk_end % block_size == 0:
                block_index = chunk_end // block_size - 1
                state.prefix_node = self.prefix_cache.insert(
                    state.prefix_node,
                    prompt[chunk_end - block_size : chunk_end],
                    [
                        cache[layer].block_ids[block_index]
                        for layer in range(n_layers)
                    ],
                    None
                    if state.prefix_tainted
                    else [
                        policy.export_prefill_state(layer, chunk_end)
                        for layer in range(n_layers)
                    ],
                    self.block_pool,
                )
            row_start = chunk_end
        return prefill.logits

    def _sample(self, record):
        """Sample one token per running sequence; retire EOS/full ones.

        Mirrors the engine's per-step prologue: sample, append, stop on
        EOS or on reaching ``max_new_tokens`` (in which case no further
        decode step is spent on the sequence — the engine's dead step is
        recorded in the trace as such, never executed).
        """
        sampled = 0
        for state in self._running:
            if state.status != RUNNING:
                continue  # chunked prefill still in flight: no logits yet
            if self._is_beam(state):
                continue  # beam branches take tokens from the joint advance
            request = state.request
            token = self.sampler(state.logits, state.rng)
            state.tokens.append(token)
            if state.first_token_round is None:
                state.first_token_round = self.round_index
            sampled += 1
            if request.eos is not None and token == request.eos:
                self._finish(state, "eos")
            elif state.num_generated >= request.max_new_tokens:
                budget = (
                    request.budget if request.budget is not None else self.budget
                )
                record.dead_steps.append(
                    DecodeEvent(
                        request_id=request.request_id,
                        attention_length=int(state.cache[0].length + 1),
                        budgeted=budget is not None,
                        dead=True,
                    )
                )
                self._finish(state, "length")
        return sampled

    def _decode(self, active, record):
        """One batched decode step for every still-active sequence."""
        tokens = [s.tokens[-1] for s in active]
        positions = [s.position for s in active]
        caches = [s.cache for s in active]
        for state in active:
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            # The step appends then attends, so attention runs against
            # the pre-step length plus the new token (append-then-evict).
            record.decodes.append(
                DecodeEvent(
                    request_id=state.request_id,
                    attention_length=int(state.cache[0].length + 1),
                    budgeted=budget is not None,
                )
            )
        result = self.model.step_batch(tokens, positions, caches)

        for b, state in enumerate(active):
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            for layer, rows in enumerate(result.attention):
                state.policy.observe(
                    layer, rows[b], state.cache[layer].positions, GENERATION
                )
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=state.num_generated,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = result.logits[b]
            state.position += 1

    # ------------------------------------------------------------------
    # Fork/join (parallel sampling and beam search)
    # ------------------------------------------------------------------
    def _is_beam(self, state):
        """Whether ``state`` belongs to a beam-search family (its tokens
        come from the joint per-round advance, never from ``_sample``)."""
        if state.family is None:
            return False
        return self._families[state.family].mode == "beam"

    def _family_live(self, family):
        """The family's unfinished branches, creation order."""
        return [s for s in family.branches if s.status != FINISHED]

    def _family_unspawned(self, family):
        """Branches the family may still fork (the reservation target).

        Sample mode spawns exactly once, so after the spawn the answer
        is 0 regardless of later branch deaths; beam mode refills its
        width whenever a branch finishes, so every missing live branch
        is a potential future fork."""
        if family.mode == "sample" and family.spawned:
            return 0
        return max(0, family.width - len(self._family_live(family)))

    def _sync_family(self, family):
        """Reconcile the manager's slot/block reservations with the
        family's state: while any branch is resident the family holds
        its unspawned branches' slots (and, one-way, their worst-case
        blocks); with no resident branch the claim drops — the next
        re-admission re-secures the whole family via
        :meth:`_family_admission_worst` / :meth:`_family_slots_needed`.
        """
        live = self._family_live(family)
        resident = any(s.status in (PREFILLING, RUNNING) for s in live)
        extra = self._family_unspawned(family) if resident else 0
        family_id = family.request.request_id
        self.manager.reserve_slots(family_id, extra)
        blocks = extra * (family.branch_worst or 0)
        self.manager.reserve_blocks(family_id, blocks)

    def _family_slots_needed(self, state):
        """Batch slots ``state``'s admission must find free: one for
        itself, plus — when no family branch is resident, so nothing
        holds the family's reservation — one per branch the family may
        still fork."""
        family = self._families[state.family]
        live = self._family_live(family)
        if any(s.status in (PREFILLING, RUNNING) for s in live):
            return 1
        return 1 + self._family_unspawned(family)

    def _family_admission_worst(self, state, worst):
        """One-way block demand for admitting ``state``: its own worst
        case, plus the unspawned branches' share when this admission
        (re-)arms the family reservation."""
        family = self._families[state.family]
        live = self._family_live(family)
        if any(s.status in (PREFILLING, RUNNING) for s in live):
            return worst
        per_branch = family.branch_worst if family.branch_worst is not None else worst
        return worst + self._family_unspawned(family) * per_branch

    def _fork_family(self, state, record):
        """Spawn a parallel-sampling family's ``n - 1`` sibling branches
        off the freshly prefilled root (one-shot).

        Each branch adopts the root's KV state (CoW blocks when paged, a
        slab copy when dense), a deep copy of its eviction-policy state,
        and a *fresh* RNG seeded ``seed + branch_index`` — the root's own
        RNG, seeded ``seed`` and still unconsumed at this point, makes
        branch 0 the root itself, so branch ``i`` is bit-identical to an
        independent request with seed ``seed + i``."""
        family = self._families[state.family]
        for _ in range(family.width - 1):
            self._fork_branch(state, family, record)
        state.forked = True
        family.spawned = True
        self._sync_family(family)

    def _fork_branch(self, parent, family, record):
        """Fork one branch off ``parent``: duplicate its scheduler-side
        state, let the resource manager duplicate its device state (this
        consumes one reserved family slot), and record the
        :class:`~repro.serve.trace.ForkEvent`.  Returns the branch."""
        root = family.request
        branch_index = family.next_branch
        family.next_branch += 1
        child_id = f"{root.request_id}#{branch_index}"
        child_request = replace(
            root,
            request_id=child_id,
            seed=root.seed + branch_index,
            n=1,
            beam_width=1,
        )
        child = SequenceState(
            request=child_request,
            policy=copy.deepcopy(parent.policy),
            rng=np.random.default_rng(child_request.seed),
            status=RUNNING,
            logits=parent.logits,
            position=parent.position,
            tokens=list(parent.tokens),
            cache_lengths=list(parent.cache_lengths),
            evictions=list(parent.evictions),
            admitted_at=parent.admitted_at,
            first_token_round=parent.first_token_round,
            prefilled=parent.prefilled,
            prompt_tokens=parent.prompt_tokens,
            submit_index=self._submit_count,
            reserved_blocks=parent.reserved_blocks,
            prefix_node=parent.prefix_node,
            prefix_hit_length=parent.prefix_hit_length,
            prefix_tainted=parent.prefix_tainted,
            family=parent.family,
            branch_index=branch_index,
            cum_logprob=parent.cum_logprob,
        )
        self._submit_count += 1
        child.cache = self.manager.fork(
            parent.request_id,
            child_id,
            reserved_blocks=parent.reserved_blocks,
            family=root.request_id,
        )
        family.branches.append(child)
        self._running.append(child)
        kv_slots = max((layer.length for layer in child.cache), default=0)
        record.forks.append(
            ForkEvent(
                request_id=parent.request_id,
                child_id=child_id,
                kv_slots=int(kv_slots),
                blocks=child.cache.num_blocks if self.paged else 0,
                copied_slots=0 if self.paged else int(kv_slots),
            )
        )
        return child

    def _prune(self, state):
        """Beam pruning: retire a losing branch through the join path,
        releasing its cache tail back to the pool immediately."""
        self.manager.join(state.request_id)
        state.finish(self.round_index, "beam_pruned")
        self._sync_family(self._families[state.family])

    def _advance_beams(self, record):
        """Jointly advance every beam family that has all live branches
        holding fresh logits this round; returns ``(tokens appended,
        states whose appended token still needs a decode step)``.

        A family with any branch mid-prefill, preempted, or swapped
        stalls wholesale — beam selection is a joint decision over every
        branch's logits, so advancing a subset would change the search.
        """
        sampled = 0
        ready = []
        for family in self._families.values():
            if family.mode != "beam":
                continue
            live = self._family_live(family)
            if not live:
                continue
            if any(s.status != RUNNING or s.logits is None for s in live):
                continue
            sampled += self._advance_one_beam(family, live, record, ready)
        return sampled, ready

    def _advance_one_beam(self, family, live, record, ready):
        """One beam round: score every (branch, token) successor, keep
        the global top ``width`` by cumulative log-probability, prune
        branches left with no successor, and fork branches keeping
        several.  Ties break deterministically by (score, branch
        creation order, token id).  Pruning runs before forking so a
        fixed pool can fund the forks with the pruned branches' slots
        and blocks.  Returns the number of tokens appended.

        Scoring ranks candidates by their *length-normalized* cumulative
        log-probability ``raw / len ** alpha`` (GNMT length penalty,
        ``alpha = Request.length_penalty``); the branch keeps
        accumulating the raw sum, so normalization is purely a rank-time
        transform and ``alpha = 0`` is bit-identical to raw scoring."""
        width = family.width
        alpha = family.request.length_penalty
        candidates = []
        for order, state in enumerate(live):
            logits = state.logits
            peak = logits.max()
            logprobs = logits - (peak + np.log(np.exp(logits - peak).sum()))
            vocab = logprobs.shape[0]
            top = np.lexsort((np.arange(vocab), -logprobs))[: min(width, vocab)]
            length = state.num_generated + 1
            for token in top:
                raw = float(state.cum_logprob + logprobs[token])
                rank = raw if alpha == 0 else raw / length**alpha
                candidates.append((rank, raw, order, int(token)))
        candidates.sort(key=lambda c: (-c[0], c[2], c[3]))
        by_branch = {}
        for _, raw, order, token in candidates[:width]:
            by_branch.setdefault(order, []).append((raw, token))
        for order, state in enumerate(live):
            if order not in by_branch:
                self._prune(state)
        appended = 0
        for order, state in enumerate(live):
            successors = by_branch.get(order)
            if not successors:
                continue
            # Fork before appending: children must adopt the cache state
            # *without* this round's token, which they replace with their
            # own successor.
            children = [
                self._fork_branch(state, family, record)
                for _ in successors[1:]
            ]
            appended += self._append_beam_token(state, successors[0], record)
            for child, successor in zip(children, successors[1:]):
                appended += self._append_beam_token(child, successor, record)
            if state.status == RUNNING:
                ready.append(state)
            ready.extend(c for c in children if c.status == RUNNING)
        self._sync_family(family)
        self._peak_concurrency = max(self._peak_concurrency, len(self._running))
        return appended

    def _append_beam_token(self, state, successor, record):
        """Commit one beam successor ``(cumulative score, token)`` onto
        ``state``, mirroring ``_sample``'s finish handling (EOS retires
        the branch; the length cap records the engine-compat dead step).
        Returns 1 (the token appended)."""
        score, token = successor
        request = state.request
        state.tokens.append(int(token))
        state.cum_logprob = score
        if state.first_token_round is None:
            state.first_token_round = self.round_index
        if request.eos is not None and token == request.eos:
            self._finish(state, "eos")
        elif state.num_generated >= request.max_new_tokens:
            budget = (
                request.budget if request.budget is not None else self.budget
            )
            record.dead_steps.append(
                DecodeEvent(
                    request_id=request.request_id,
                    attention_length=int(state.cache[0].length + 1),
                    budgeted=budget is not None,
                    dead=True,
                )
            )
            self._finish(state, "length")
        return 1

    # ------------------------------------------------------------------
    # Speculative decoding (draft-propose / target-verify)
    # ------------------------------------------------------------------
    def _can_speculate(self, state):
        """Window size for ``state`` this round, or 0 to fall back to the
        plain decode step.

        Speculation is skipped (never *wrong*, just unprofitable or
        unsafe) when: the remaining token budget clips the window to
        nothing; the sequence's KV eviction budget could fire *inside*
        the verify window (the window must see zero evictions for the
        eviction schedule to stay bit-identical, so speculation requires
        ``prior + k + 1 <= budget``); or either model's RoPE table /
        cache capacity cannot cover the provisional window.
        """
        request = state.request
        k_eff = min(self.spec_k, request.max_new_tokens - state.num_generated)
        if k_eff < 1:
            return 0
        budget = request.budget if request.budget is not None else self.budget
        prior = state.cache[0].length
        if budget is not None and prior + k_eff + 1 > budget:
            return 0
        if prior + k_eff + 1 > state.cache[0].capacity:
            return 0
        if state.position + k_eff >= self.model.config.max_seq_len:
            return 0
        context_length = request.prompt.shape[0] + state.num_generated
        if context_length + k_eff > self.draft_model.config.max_seq_len:
            return 0
        return k_eff

    def _draft_propose(self, state, k_eff):
        """Run the draft model ahead of the target by ``k_eff`` tokens.

        The draft keeps its own (host-resident, unbudgeted) KV cache on
        the sequence state.  Each round it first catches up on the
        tokens committed since it last ran — usually just the token the
        sampling pass appended this round — as a continuation prefill,
        then decodes ``k_eff - 1`` more tokens greedily.  Returns the
        proposals plus the work quantities the trace needs for pricing.
        """
        draft = self.draft_model
        request = state.request
        context = np.concatenate(
            [
                np.asarray(request.prompt, dtype=np.int64),
                np.asarray(state.tokens, dtype=np.int64),
            ]
        )
        if state.draft_cache is None:
            capacity = min(
                context.shape[0]
                + (request.max_new_tokens - state.num_generated)
                + self.spec_k,
                draft.config.max_seq_len,
            )
            state.draft_cache = draft.new_cache(capacity)
        draft_cache = state.draft_cache
        prior = int(draft_cache[0].length)
        rows = context[prior:]
        result = draft.prefill(rows, draft_cache, start_position=prior)
        proposals = [int(np.argmax(result.logits))]
        decode_lengths = []
        position = context.shape[0]
        for _ in range(k_eff - 1):
            step = draft.step(proposals[-1], position, draft_cache)
            decode_lengths.append(int(draft_cache[0].length))
            proposals.append(int(np.argmax(step.logits)))
            position += 1
        return proposals, int(rows.shape[0]), prior, tuple(decode_lengths)

    def _spec_decode(self, state, k_eff, record):
        """One speculative round for ``state``: propose, verify, accept
        the longest exact-match prefix, roll back the rest.

        The verify pass feeds the pending token plus the ``k_eff``
        proposals through :meth:`CachedTransformer.verify`, whose row
        ``i`` logits (and attention rows) are bitwise identical to the
        sequential decode of the same tokens.  Row ``m`` is therefore
        bookkept exactly as :meth:`_decode` would have — scalar policy
        observe over the row's causal width, budget enforcement,
        cache-length log — and ``self.sampler(logits[m])`` *is* the
        token the non-speculative scheduler would sample next; a
        proposal mismatch just means rows past ``m`` are garbage.  On
        mismatch the correction token is deliberately **not** appended:
        the pending logits are set to row ``m`` and the next round's
        sampling pass re-derives the identical token (greedy is
        deterministic), preserving the invariant that the last appended
        token has always been stepped.  Returns the number of extra
        (accepted) tokens appended this round.
        """
        request = state.request
        budget = request.budget if request.budget is not None else self.budget
        proposals, draft_rows, draft_prior, draft_lengths = self._draft_propose(
            state, k_eff
        )
        prior = int(state.cache[0].length)
        inputs = np.concatenate(
            [[state.tokens[-1]], np.asarray(proposals, dtype=np.int64)]
        )
        result = self.model.verify(
            inputs, state.cache, start_position=state.position
        )

        def bookkeep(row):
            # Identical per-step epilogue to _decode: the verify pass
            # appended all rows up front, so the cache views are sliced
            # back to the width this row's sequential step would have
            # seen (row attention already has exactly that width).
            width = prior + row + 1
            for layer in range(self.model.config.n_layers):
                state.policy.observe(
                    layer,
                    result.attention[layer][row],
                    state.cache[layer].positions[:width],
                    GENERATION,
                )
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=state.num_generated,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(width)

        accepted = 0
        finished = False
        pending = None
        for m in range(k_eff):
            bookkeep(m)
            true_token = self.sampler(result.logits[m], state.rng)
            if true_token != proposals[m]:
                pending = m
                break
            state.tokens.append(true_token)
            accepted += 1
            if request.eos is not None and true_token == request.eos:
                self._finish(state, "eos")
                finished = True
                break
            if state.num_generated >= request.max_new_tokens:
                # No dead-step record here: the verify pass already
                # computed (and the co-simulator prices) the rows past
                # the final token — a separate dead step would
                # double-charge that work (see trace module docstring).
                self._finish(state, "length")
                finished = True
                break
        else:
            # Every proposal accepted: the bonus row — the step of the
            # last appended token — is valid too; its logits become the
            # pending logits the next round samples from.
            bookkeep(k_eff)
            pending = k_eff

        if not finished:
            state.cache.truncate(prior + pending + 1)
            state.logits = result.logits[pending]
            state.position += pending + 1
            committed = request.prompt.shape[0] + state.num_generated
            if state.draft_cache[0].length > committed:
                state.draft_cache.truncate(committed)

        tokens_credit = accepted + (0 if finished else 1)
        record.verifies.append(
            VerifyEvent(
                request_id=request.request_id,
                rows=k_eff + 1,
                prior=prior,
                proposed=k_eff,
                accepted=accepted,
                tokens=tokens_credit,
                budgeted=budget is not None,
                draft_prefill_rows=draft_rows,
                draft_prefill_prior=draft_prior,
                draft_decode_lengths=draft_lengths,
            )
        )
        state.spec_rounds += 1
        state.spec_proposed += k_eff
        state.spec_accepted += accepted
        self._verify_passes += 1
        self._spec_proposed += k_eff
        self._spec_accepted += accepted
        self._spec_tokens += tokens_credit
        return accepted

    def _sample_kv_usage(self):
        """Track peak KV memory (and, paged, block utilization).

        Dense slabs pin ``capacity`` slots per layer for a sequence's
        whole lifetime; paged mode pins only the blocks in use, so the
        pool's own high-water mark (updated at every allocation, i.e.
        including the transient prefill peak before eviction shrinks a
        sequence to budget) is the honest comparison point.
        """
        if self.paged:
            pool = self.block_pool
            self._peak_kv_slots = pool.peak_in_use * pool.block_size
            if pool.num_used:
                self._utilization_sum += self.cache_bank.total_entries / (
                    pool.num_used * pool.block_size
                )
                self._utilization_rounds += 1
        else:
            allocated = sum(
                state.cache[0].capacity * self.model.config.n_layers
                for state in self._running
            )
            self._peak_kv_slots = max(self._peak_kv_slots, allocated)

    def _finish(self, state, reason):
        self.manager.retire(state.request_id)
        state.finish(self.round_index, reason)
        if state.family is not None:
            # A finished beam branch frees a width slot the next advance
            # re-forks into; a fully finished family drops every claim.
            self._sync_family(self._families[state.family])

    def release_prefix_cache(self):
        """Drop every prefix-cache entry, returning its blocks to the
        pool (end-of-trace teardown; afterwards an idle fixed pool is
        fully free again)."""
        self.manager.clear_prefix_cache()

    def _retire(self):
        finished = [s for s in self._running if s.status == FINISHED]
        if finished:
            self._finished.extend(finished)
            self._running = [s for s in self._running if s.status != FINISHED]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def results(self):
        """Retired :class:`SequenceState` objects in completion order."""
        return list(self._finished)

    def tokens_for(self, request_id):
        """Generated tokens of a retired request."""
        for state in self._finished:
            if state.request_id == request_id:
                return list(state.tokens)
        raise KeyError(f"request {request_id!r} has not finished")

    def samples_for(self, request_id):
        """The generated token lists of every branch of a fork family,
        in branch order — for ``Request(n=k)`` the ``k`` independent
        continuations; branch ``i`` carries effective seed
        ``seed + i``."""
        family = self._families.get(request_id)
        if family is None:
            raise KeyError(f"request {request_id!r} is not a fork family")
        branches = sorted(family.branches, key=lambda s: s.branch_index)
        return [list(s.tokens) for s in branches]

    def beam_result_for(self, request_id):
        """``(tokens, cum_logprob)`` of the best completed hypothesis of
        a ``Request(beam_width=k)`` family (pruned branches excluded);
        ties break toward the earliest-created branch.

        With ``Request.length_penalty = alpha > 0`` hypotheses compete
        on ``cum_logprob / len(tokens) ** alpha``; the returned score is
        always the raw cumulative log-probability of the winner."""
        family = self._families.get(request_id)
        if family is None or family.mode != "beam":
            raise KeyError(f"request {request_id!r} is not a beam request")
        done = [
            s
            for s in family.branches
            if s.status == FINISHED and s.finish_reason != "beam_pruned"
        ]
        if not done:
            raise KeyError(
                f"beam request {request_id!r} has no finished hypothesis yet"
            )
        alpha = family.request.length_penalty

        def normalized(state):
            if alpha == 0 or not state.tokens:
                return state.cum_logprob
            return state.cum_logprob / len(state.tokens) ** alpha

        best = max(done, key=lambda s: (normalized(s), -s.branch_index))
        return list(best.tokens), best.cum_logprob

    def report(self, wall_seconds=0.0):
        """Snapshot :class:`ServingReport` over the requests retired (and
        rejected) so far.  :meth:`run` calls this once at drain; the
        serving engine calls it at any point of a streaming run."""
        return self._report(wall_seconds)

    def _report(self, wall_seconds):
        rows = [
            {
                "request_id": s.request_id,
                "arrival": s.request.arrival_time,
                "admitted": s.admitted_at,
                "first_token": s.first_token_round,
                "finished": s.finished_at,
                "wait_rounds": s.admitted_at - s.request.arrival_time,
                "ttft_rounds": s.ttft_rounds,
                "inter_token_rounds": s.inter_token_rounds,
                "latency_rounds": s.finished_at - s.request.arrival_time,
                "deadline": s.request.deadline,
                "priority": s.request.priority,
                "deadline_miss": s.deadline_missed,
                "tokens": s.num_generated,
                "finish_reason": s.finish_reason,
                "evictions": len(s.evictions),
                "preemptions": s.preemptions,
            }
            for s in self._finished
        ]
        if self.draft_model is not None:
            for row, s in zip(rows, self._finished):
                row["spec_rounds"] = s.spec_rounds
                row["spec_proposed"] = s.spec_proposed
                row["spec_accepted"] = s.spec_accepted
                row["accept_rate"] = (
                    s.spec_accepted / s.spec_proposed if s.spec_proposed else 0.0
                )
        if self._families:
            for row, s in zip(rows, self._finished):
                row["family"] = s.family
                row["branch"] = s.branch_index
                if self._is_beam(s):
                    row["cum_logprob"] = s.cum_logprob
        manager = self.manager
        report = ServingReport(
            requests=rows,
            rejections=[r.as_row() for r in self._rejected],
            total_rounds=self.round_index,
            busy_rounds=self._busy_rounds,
            total_tokens=self._total_tokens,
            peak_concurrency=self._peak_concurrency,
            wall_seconds=wall_seconds,
            peak_kv_slots=self._peak_kv_slots,
            preempt=self.preempt,
            preemptions=self._preemption_count,
            model_swaps=self._model_swaps,
            model_recomputes=self._model_recomputes,
            swap_outs=manager.swap_outs,
            swap_ins=manager.swap_ins,
            swap_out_blocks=manager.swap_out_blocks,
            swap_in_blocks=manager.swap_in_blocks,
            host_peak_kv_slots=manager.host_peak_kv_slots,
            spec_decode=self.draft_model is not None,
            spec_k=self.spec_k if self.draft_model is not None else 0,
            verify_passes=self._verify_passes,
            spec_proposed=self._spec_proposed,
            spec_accepted=self._spec_accepted,
            spec_tokens=self._spec_tokens,
            forks=manager.forks,
            joins=manager.joins,
            fork_shared_blocks=manager.fork_shared_blocks,
            fork_copied_slots=manager.fork_copied_slots,
        )
        if self.paged:
            report.paged = True
            report.block_size = self.block_pool.block_size
            report.peak_blocks = self.block_pool.peak_in_use
            report.cow_copies = self.block_pool.cow_copies
            if self._utilization_rounds:
                report.mean_block_utilization = (
                    self._utilization_sum / self._utilization_rounds
                )
            if self.prefix_cache is not None:
                report.prefix_lookups = self.prefix_cache.lookups
                report.prefix_hits = self.prefix_cache.hits
                report.prompt_tokens_seen = self.prefix_cache.tokens_seen
                report.prefix_tokens_hit = self.prefix_cache.tokens_hit
            report.prefill_tokens_saved = self._prefill_tokens_saved
        return report

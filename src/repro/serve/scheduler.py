"""Continuous-batching scheduler over the batched decode path.

This is the serving loop the ROADMAP's "heavy traffic" north star asks
for, in the Orca / vLLM mould: requests arrive over time, are admitted
into the running batch as soon as a slot frees up (iteration-level
scheduling, not static batches), decode in lock-step through
:meth:`CachedTransformer.step_batch`, evict from their private KV caches
via their private policy instances, and retire individually on EOS or
token budget — immediately freeing their slot for the next queued
request.

Equivalence guarantee
---------------------
Per sequence, the scheduler performs the token-producing operation
sequence of :meth:`repro.core.engine.GenerationEngine.generate` —
prefill, block observation, budget enforcement, then
sample/step/observe/evict per token — against per-sequence state, and
the batched decode path is bitwise identical to solo decode (see
:func:`repro.models.inference.batch_matmul`).  A request therefore
generates the same tokens whether it is served alone or inside any batch
mix; ``tests/serve/test_serve_scheduler.py`` locks this in.  One
deliberate deviation: when a request retires by hitting
``max_new_tokens``, the engine still spends a decode step on the final
sampled token (its logits are discarded); the scheduler skips that dead
step, so eviction counts and cache-length traces can trail the engine's
by one step even though the tokens are identical.

The clock is discrete: one *round* = one scheduler iteration (admission,
one sampling pass, one batched decode step).  Request arrival times are
expressed in rounds.

Paged mode (``paged=True``) swaps the dense per-sequence slabs for
fixed-size blocks from a shared :class:`~repro.serve.paging.BlockPool`
and shares full prompt-prefix blocks across requests through a
:class:`~repro.serve.prefix_cache.PrefixCache` (copy-on-write, with
eviction-policy state snapshots).  The equivalence guarantee extends to
it: tokens are bit-identical dense vs paged, at any block size, with or
without prefix hits — ``tests/serve/test_paged_equivalence.py`` and the
fuzz suite lock this in.

Every round is also recorded in :attr:`Scheduler.trace` (prefill row
counts, per-sequence decode attention lengths), which
:class:`~repro.serve.cosim.ServingCoSimulator` prices on the
accelerator cycle model after the run.

Worked example — serve three requests at batch cap 2::

    >>> import numpy as np
    >>> from repro.config import tiny_config
    >>> from repro.models.inference import CachedTransformer
    >>> from repro.models.transformer import TransformerLM
    >>> from repro.serve import Request, Scheduler
    >>> model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    >>> scheduler = Scheduler(model, max_batch_size=2)
    >>> for i in range(3):
    ...     scheduler.submit(Request(f"r{i}", np.arange(6) + i,
    ...                              max_new_tokens=4, seed=i))
    >>> report = scheduler.run()
    >>> len(report.requests), report.total_tokens, scheduler.done
    (3, 12, True)
    >>> len(scheduler.tokens_for("r1"))   # same tokens as solo decode
    4
    >>> [r.num_decodes for r in scheduler.trace][:3]   # lock-step rounds
    [2, 2, 2]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import enforce_budget, sequence_capacity
from repro.core.kv_cache import BatchedKVCache
from repro.core.policies.base import GENERATION, PREFILL
from repro.core.policies.voting import VotingPolicy
from repro.core.sampling import greedy
from repro.serve.paging import BlockPool, PagedKVCache
from repro.serve.prefix_cache import PrefixCache
from repro.serve.request import FINISHED, RUNNING, Request, SequenceState
from repro.serve.trace import DecodeEvent, PrefillEvent, RoundTrace

__all__ = ["Scheduler", "ServingReport"]


@dataclass
class ServingReport:
    """Aggregate + per-request outcome of one scheduler run.

    Invariants: ``total_tokens`` equals the sum of per-request token
    counts in ``requests``; ``busy_rounds <= total_rounds``;
    ``peak_concurrency <= max_batch_size``; throughput properties return
    0.0 (never raise) on an empty run.  All ``*_rounds`` quantities are
    in scheduler rounds (the discrete clock), ``wall_seconds`` is host
    wall-clock — hardware-model time lives in
    :class:`~repro.serve.cosim.ServingCoSimReport`, not here.
    """

    #: One dict per retired request (arrival/admission/finish rounds,
    #: wait, latency, token count, finish reason, eviction count).
    requests: list = field(default_factory=list)
    total_rounds: int = 0
    busy_rounds: int = 0
    total_tokens: int = 0
    peak_concurrency: int = 0
    wall_seconds: float = 0.0
    #: Peak KV memory over the run, in slots (one slot = one position's
    #: kv vectors in one layer).  Dense mode counts allocated slab
    #: capacity; paged mode counts slots of blocks actually in use — the
    #: number the paged allocator exists to shrink.
    peak_kv_slots: int = 0
    # ---- paged-mode extras (zero when served dense) ----
    paged: bool = False
    block_size: int = 0
    peak_blocks: int = 0
    #: Mean over busy rounds of occupied slots / allocated block slots.
    #: Can exceed 1.0 when prefix sharing makes several sequences count
    #: the same physical block's slots.
    mean_block_utilization: float = 0.0
    prefix_lookups: int = 0
    prefix_hits: int = 0
    #: Prompt tokens whose prefill was skipped via a prefix-cache hit.
    prefill_tokens_saved: int = 0
    cow_copies: int = 0

    @property
    def prefix_hit_rate(self):
        return self.prefix_hits / self.prefix_lookups if self.prefix_lookups else 0.0

    @property
    def tokens_per_round(self):
        """Decode throughput in tokens per busy round (the batching win)."""
        return self.total_tokens / self.busy_rounds if self.busy_rounds else 0.0

    @property
    def tokens_per_second(self):
        return self.total_tokens / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def mean_latency(self):
        """Mean rounds from arrival to completion."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["latency_rounds"] for row in self.requests]))

    @property
    def mean_wait(self):
        """Mean rounds spent queued before admission."""
        if not self.requests:
            return 0.0
        return float(np.mean([row["wait_rounds"] for row in self.requests]))

    def summary(self):
        """Flat dict of the aggregate metrics (for experiment tables)."""
        summary = {
            "requests": len(self.requests),
            "rounds": self.total_rounds,
            "tokens": self.total_tokens,
            "tokens/round": self.tokens_per_round,
            "tokens/s": self.tokens_per_second,
            "mean_latency_rounds": self.mean_latency,
            "mean_wait_rounds": self.mean_wait,
            "peak_batch": self.peak_concurrency,
            "peak_kv_slots": self.peak_kv_slots,
        }
        if self.paged:
            summary.update(
                {
                    "block_size": self.block_size,
                    "peak_blocks": self.peak_blocks,
                    "block_util": self.mean_block_utilization,
                    "prefix_hit_rate": self.prefix_hit_rate,
                    "prefill_saved": self.prefill_tokens_saved,
                    "cow_copies": self.cow_copies,
                }
            )
        return summary


class Scheduler:
    """Continuous-batching serving loop over one model.

    Parameters
    ----------
    model:
        A :class:`repro.models.inference.CachedTransformer`.
    policy_factory:
        Zero-argument callable producing a fresh eviction-policy instance
        per admitted request (policies hold per-sequence vote state).
        Default: a :class:`VotingPolicy` sized to the model.
    max_batch_size:
        Admission cap on concurrently running sequences.
    budget:
        Default per-sequence KV budget (``None`` = no eviction); a
        request's own ``budget`` field overrides it.
    evictions_per_step:
        Per-layer per-step eviction cap, as in the engine.
    sampler:
        ``sampler(logits, rng) -> token`` (default greedy).
    paged:
        Store KV state in fixed-size blocks from a shared
        :class:`~repro.serve.paging.BlockPool` instead of dense
        per-sequence slabs.  Decoded tokens are bit-identical either way;
        paging changes only where the floats live (and how much memory a
        mixed batch pins).
    block_size:
        Cache slots per block (paged mode).
    num_blocks:
        Fixed pool capacity; admission then waits until the pool can
        cover a request's worst-case block demand (after asking the
        prefix cache to shed idle entries).  ``None`` (default) makes the
        pool growable, matching the dense path's unbounded admission.
    prefix_caching:
        Share full prompt-prefix blocks across requests (paged mode):
        a request whose prompt starts with an already-prefilled block
        chain adopts those blocks copy-on-write and skips their prefill
        compute.  Requires every admitted request's policy to carry the
        same ``prefix_state_key`` for state snapshots to be reused; a
        policy that cannot snapshot (``prefix_shareable = False``) simply
        never shares.
    prefix_cache_blocks:
        LRU capacity bound (in pool blocks) for the prefix cache;
        ``None`` keeps every registered block resident.  Bounding it is
        what keeps never-rehit unique-suffix blocks from pinning pool
        memory across the whole trace.
    """

    def __init__(
        self,
        model,
        policy_factory=None,
        max_batch_size=8,
        budget=None,
        evictions_per_step=None,
        sampler=greedy,
        paged=False,
        block_size=16,
        num_blocks=None,
        prefix_caching=True,
        prefix_cache_blocks=None,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        if evictions_per_step is not None and evictions_per_step <= 0:
            raise ValueError("evictions_per_step must be positive")
        self.model = model
        self.policy_factory = policy_factory or (
            lambda: VotingPolicy(model.config.n_layers)
        )
        self.max_batch_size = int(max_batch_size)
        self.budget = budget
        self.evictions_per_step = evictions_per_step
        self.sampler = sampler

        self.paged = bool(paged)
        if self.paged:
            config = model.config
            self.block_pool = BlockPool(
                config.n_heads, config.head_dim, block_size, num_blocks=num_blocks
            )
            self.prefix_cache = (
                PrefixCache(block_size, max_blocks=prefix_cache_blocks)
                if prefix_caching
                else None
            )
            if self.prefix_cache is not None:
                pool = self.block_pool
                self.block_pool.reclaimer = (
                    lambda needed: self.prefix_cache.reclaim(pool, needed)
                )
            self.cache_bank = BatchedKVCache.for_model(
                config,
                cache_factory=lambda capacity: PagedKVCache(
                    self.block_pool, config.n_layers, capacity
                ),
            )
        else:
            self.block_pool = None
            self.prefix_cache = None
            self.cache_bank = BatchedKVCache.for_model(model.config)

        self._waiting = []  # SequenceState, FIFO by (arrival, submit order)
        self._running = []  # SequenceState, admission order
        self._finished = []
        #: Per-round hardware trace (:class:`~repro.serve.trace.RoundTrace`
        #: per non-empty round), consumed by
        #: :class:`~repro.serve.cosim.ServingCoSimulator`.
        self.trace = []
        self.round_index = 0
        self._busy_rounds = 0
        self._total_tokens = 0
        self._peak_concurrency = 0
        self._prefill_tokens_saved = 0
        self._peak_kv_slots = 0
        self._utilization_sum = 0.0
        self._utilization_rounds = 0

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request):
        """Queue a :class:`Request` for admission.

        The request becomes visible to the admission loop at its
        ``arrival_time``; requests are admitted FIFO by arrival.

        Raises
        ------
        TypeError
            If ``request`` is not a :class:`Request`.
        KeyError
            If the id collides with any live *or finished* request
            (results are keyed by request id, so ids are never reused
            within one scheduler).
        ValueError
            In paged mode with a fixed pool, if the request's worst-case
            block demand exceeds the whole pool (it could never be
            admitted and would stall the FIFO queue forever).
        """
        if not isinstance(request, Request):
            raise TypeError(f"expected Request, got {type(request).__name__}")
        # Finished ids stay reserved too: results are keyed by request id
        # (``tokens_for``, report rows), so reuse would make them ambiguous.
        seen = {
            s.request_id
            for s in self._waiting + self._running + self._finished
        }
        if request.request_id in seen or request.request_id in self.cache_bank:
            raise KeyError(f"duplicate request id {request.request_id!r}")
        if self.paged and not self.block_pool.growable:
            # An unsatisfiable request would stall admission (and the
            # whole FIFO queue behind it) forever; reject it up front.
            budget = request.budget if request.budget is not None else self.budget
            worst = self._worst_case_blocks(
                sequence_capacity(
                    request.prompt.shape[0], request.max_new_tokens, budget
                )
            )
            if worst > self.block_pool.num_blocks:
                raise ValueError(
                    f"request {request.request_id!r} needs up to {worst} "
                    f"blocks but the pool only has "
                    f"{self.block_pool.num_blocks}"
                )
        self._waiting.append(SequenceState(request=request))
        self._waiting.sort(key=lambda s: s.request.arrival_time)

    @property
    def num_waiting(self):
        return len(self._waiting)

    @property
    def num_running(self):
        return len(self._running)

    @property
    def done(self):
        return not self._waiting and not self._running

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def run(self):
        """Serve until every submitted request has retired.

        Returns a :class:`ServingReport` aggregating throughput, latency
        and memory statistics over the whole run; per-request tokens
        stay retrievable through :meth:`tokens_for` and the per-round
        hardware trace through :attr:`trace`.
        """
        start = time.perf_counter()
        while not self.done:
            self.run_round()
        wall = time.perf_counter() - start
        return self._report(wall)

    def run_round(self):
        """One scheduler iteration: admit, sample, batched decode.

        Each round appends a :class:`~repro.serve.trace.RoundTrace` to
        :attr:`trace` recording the hardware work performed (prefill row
        counts, per-sequence decode attention lengths), which the
        serving co-simulator prices after the fact.
        """
        # Fast-forward through idle time: nothing running and the next
        # arrival is still in the future.
        if not self._running and self._waiting:
            next_arrival = self._waiting[0].request.arrival_time
            if next_arrival > self.round_index:
                self.round_index = next_arrival

        record = RoundTrace(round_index=self.round_index)
        self._admit(record)
        self._peak_concurrency = max(self._peak_concurrency, len(self._running))
        self._sample_kv_usage()

        sampled = self._sample(record)
        active = [s for s in self._running if s.status != FINISHED]
        if active:
            self._decode(active, record)
        if sampled:
            self._busy_rounds += 1
            self._total_tokens += sampled
        if record.prefills or record.decodes or record.dead_steps:
            self.trace.append(record)
        self._retire()
        self.round_index += 1

    # ------------------------------------------------------------------
    # Round stages
    # ------------------------------------------------------------------
    def _admit(self, record):
        """Admit arrived requests into free batch slots (prefill them).

        In paged mode, admission additionally *reserves blocks, not
        slabs*: a fixed-size pool must be able to cover the request's
        worst-case block demand (prefix-cache entries are shed first),
        otherwise the request — and, FIFO, everyone behind it — keeps
        waiting until retirements free blocks.
        """
        while (
            self._waiting
            and len(self._running) < self.max_batch_size
            and self._waiting[0].request.arrival_time <= self.round_index
        ):
            request = self._waiting[0].request
            budget = request.budget if request.budget is not None else self.budget
            capacity = sequence_capacity(
                request.prompt.shape[0], request.max_new_tokens, budget
            )
            worst_blocks = self._worst_case_blocks(capacity)
            if self.paged and not self._blocks_available(worst_blocks):
                break
            state = self._waiting.pop(0)
            state.reserved_blocks = worst_blocks

            state.policy = self.policy_factory()
            state.policy.reset()
            state.rng = np.random.default_rng(request.seed)
            state.cache = self.cache_bank.add_sequence(
                request.request_id, capacity
            )
            state.status = RUNNING
            state.admitted_at = self.round_index

            if self.paged:
                logits = self._prefill_paged(state, budget)
            else:
                logits = self._prefill_dense(state)
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=0,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = logits
            state.position = request.prompt.shape[0]
            record.prefills.append(
                PrefillEvent(
                    request_id=request.request_id,
                    prompt_length=int(request.prompt.shape[0]),
                    computed_tokens=int(
                        request.prompt.shape[0] - state.prefix_hit_length
                    ),
                    prefix_length=int(state.prefix_hit_length),
                    budgeted=budget is not None,
                )
            )
            self._running.append(state)

    def _worst_case_blocks(self, capacity):
        """Pool blocks a sequence can ever demand (all layers, all owned)."""
        if not self.paged:
            return 0
        per_layer = -(-capacity // self.block_pool.block_size)  # ceil
        return per_layer * self.model.config.n_layers

    def _blocks_available(self, worst_blocks):
        """Can the pool cover one more sequence's worst-case block need?

        Admission reserves blocks, not slabs: besides the newcomer's
        worst case, the free list must keep covering every running
        sequence's *remaining* demand (``reserved_blocks`` minus the
        blocks it already owns — growth and copy-on-write can claim the
        difference at any decode step).  The prefix cache is asked to
        shed idle entries first.
        """
        pool = self.block_pool
        if pool.growable:
            return True
        outstanding = sum(
            max(0, state.reserved_blocks - state.cache.owned_blocks)
            for state in self._running
        )
        needed = worst_blocks + outstanding
        if pool.num_free < needed and self.prefix_cache is not None:
            self.prefix_cache.reclaim(pool, needed - pool.num_free)
        return pool.num_free >= needed

    def _prefill_dense(self, state):
        """The seed path: one-shot prefill, one observe_block per layer."""
        prompt = state.request.prompt
        prefill = self.model.prefill(prompt, state.cache)
        positions = np.arange(prompt.shape[0])
        for layer, attn in enumerate(prefill.attention):
            state.policy.observe_block(layer, attn, positions, PREFILL)
        return prefill.logits

    def _prefill_paged(self, state, budget):
        """Paged prefill with cross-request prefix sharing.

        1. Look up the longest cached chain of full prompt blocks; adopt
           its blocks copy-on-write and import the policy's snapshotted
           slot state for the shared span.
        2. Run the model prefill over the remaining suffix only — the
           continuation attends to the adopted keys/values, and prefill's
           row-count-invariant matmuls make the result bitwise equal to a
           cold prefill.
        3. Feed the suffix attention rows to the policy in block-sized
           chunks, snapshotting state at every block boundary and
           registering the freshly written full blocks in the prefix
           cache (before eviction can mutate them).
        """
        request = state.request
        prompt = request.prompt
        policy = state.policy
        cache = state.cache
        n_layers = self.model.config.n_layers
        block_size = self.block_pool.block_size

        shareable = self.prefix_cache is not None and policy.prefix_shareable
        shared_length = 0
        parent_key = None
        if shareable:
            policy_key = policy.prefix_state_key()
            entries, parent_key = self.prefix_cache.match(prompt, policy_key)
            if entries:
                shared_length = len(entries) * block_size
                cache.attach_prefix(
                    [
                        [entry.layer_block_ids[layer] for entry in entries]
                        for layer in range(n_layers)
                    ],
                    shared_length,
                )
                snapshot = entries[-1].policy_state
                for layer in range(n_layers):
                    policy.import_prefill_state(
                        layer, snapshot[layer], shared_length
                    )
                state.prefix_hit_length = shared_length
                self._prefill_tokens_saved += shared_length

        prefill = self.model.prefill(
            prompt[shared_length:], cache, start_position=shared_length
        )

        # Chunked observation: rows [row_start, chunk_end) at a time, so
        # the policy's slot state at every block boundary is a pure
        # function of the tokens before it and can be snapshotted.
        positions = np.arange(prompt.shape[0])
        total = prompt.shape[0]
        row_start = shared_length
        while row_start < total:
            chunk_end = min(
                (row_start // block_size + 1) * block_size, total
            )
            for layer, attn in enumerate(prefill.attention):
                rows = attn[
                    :,
                    row_start - shared_length : chunk_end - shared_length,
                    :chunk_end,
                ]
                policy.observe_continuation(
                    layer, rows, positions[:chunk_end], PREFILL
                )
            if shareable and chunk_end % block_size == 0:
                block_index = chunk_end // block_size - 1
                parent_key = self.prefix_cache.insert(
                    parent_key,
                    prompt[chunk_end - block_size : chunk_end],
                    [
                        cache[layer].block_ids[block_index]
                        for layer in range(n_layers)
                    ],
                    [
                        policy.export_prefill_state(layer, chunk_end)
                        for layer in range(n_layers)
                    ],
                    self.block_pool,
                )
            row_start = chunk_end
        return prefill.logits

    def _sample(self, record):
        """Sample one token per running sequence; retire EOS/full ones.

        Mirrors the engine's per-step prologue: sample, append, stop on
        EOS or on reaching ``max_new_tokens`` (in which case no further
        decode step is spent on the sequence — the engine's dead step is
        recorded in the trace as such, never executed).
        """
        sampled = 0
        for state in self._running:
            request = state.request
            token = self.sampler(state.logits, state.rng)
            state.tokens.append(token)
            sampled += 1
            if request.eos is not None and token == request.eos:
                self._finish(state, "eos")
            elif state.num_generated >= request.max_new_tokens:
                budget = (
                    request.budget if request.budget is not None else self.budget
                )
                record.dead_steps.append(
                    DecodeEvent(
                        request_id=request.request_id,
                        attention_length=int(state.cache[0].length + 1),
                        budgeted=budget is not None,
                        dead=True,
                    )
                )
                self._finish(state, "length")
        return sampled

    def _decode(self, active, record):
        """One batched decode step for every still-active sequence."""
        tokens = [s.tokens[-1] for s in active]
        positions = [s.position for s in active]
        caches = [s.cache for s in active]
        for state in active:
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            # The step appends then attends, so attention runs against
            # the pre-step length plus the new token (append-then-evict).
            record.decodes.append(
                DecodeEvent(
                    request_id=state.request_id,
                    attention_length=int(state.cache[0].length + 1),
                    budgeted=budget is not None,
                )
            )
        result = self.model.step_batch(tokens, positions, caches)

        for b, state in enumerate(active):
            budget = (
                state.request.budget
                if state.request.budget is not None
                else self.budget
            )
            for layer, rows in enumerate(result.attention):
                state.policy.observe(
                    layer, rows[b], state.cache[layer].positions, GENERATION
                )
            enforce_budget(
                state.policy,
                state.cache,
                budget,
                step=state.num_generated,
                log=state.evictions,
                evictions_per_step=self.evictions_per_step,
            )
            state.cache_lengths.append(state.cache[0].length)
            state.logits = result.logits[b]
            state.position += 1

    def _sample_kv_usage(self):
        """Track peak KV memory (and, paged, block utilization).

        Dense slabs pin ``capacity`` slots per layer for a sequence's
        whole lifetime; paged mode pins only the blocks in use, so the
        pool's own high-water mark (updated at every allocation, i.e.
        including the transient prefill peak before eviction shrinks a
        sequence to budget) is the honest comparison point.
        """
        if self.paged:
            pool = self.block_pool
            self._peak_kv_slots = pool.peak_in_use * pool.block_size
            if pool.num_used:
                self._utilization_sum += self.cache_bank.total_entries / (
                    pool.num_used * pool.block_size
                )
                self._utilization_rounds += 1
        else:
            allocated = sum(
                state.cache[0].capacity * self.model.config.n_layers
                for state in self._running
            )
            self._peak_kv_slots = max(self._peak_kv_slots, allocated)

    def _finish(self, state, reason):
        self.cache_bank.remove_sequence(state.request_id)
        state.finish(self.round_index, reason)

    def release_prefix_cache(self):
        """Drop every prefix-cache entry, returning its blocks to the
        pool (end-of-trace teardown; afterwards an idle fixed pool is
        fully free again)."""
        if self.prefix_cache is not None:
            self.prefix_cache.clear(self.block_pool)

    def _retire(self):
        finished = [s for s in self._running if s.status == FINISHED]
        if finished:
            self._finished.extend(finished)
            self._running = [s for s in self._running if s.status != FINISHED]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def results(self):
        """Retired :class:`SequenceState` objects in completion order."""
        return list(self._finished)

    def tokens_for(self, request_id):
        """Generated tokens of a retired request."""
        for state in self._finished:
            if state.request_id == request_id:
                return list(state.tokens)
        raise KeyError(f"request {request_id!r} has not finished")

    def _report(self, wall_seconds):
        rows = [
            {
                "request_id": s.request_id,
                "arrival": s.request.arrival_time,
                "admitted": s.admitted_at,
                "finished": s.finished_at,
                "wait_rounds": s.admitted_at - s.request.arrival_time,
                "latency_rounds": s.finished_at - s.request.arrival_time,
                "tokens": s.num_generated,
                "finish_reason": s.finish_reason,
                "evictions": len(s.evictions),
            }
            for s in self._finished
        ]
        report = ServingReport(
            requests=rows,
            total_rounds=self.round_index,
            busy_rounds=self._busy_rounds,
            total_tokens=self._total_tokens,
            peak_concurrency=self._peak_concurrency,
            wall_seconds=wall_seconds,
            peak_kv_slots=self._peak_kv_slots,
        )
        if self.paged:
            report.paged = True
            report.block_size = self.block_pool.block_size
            report.peak_blocks = self.block_pool.peak_in_use
            report.cow_copies = self.block_pool.cow_copies
            if self._utilization_rounds:
                report.mean_block_utilization = (
                    self._utilization_sum / self._utilization_rounds
                )
            if self.prefix_cache is not None:
                report.prefix_lookups = self.prefix_cache.lookups
                report.prefix_hits = self.prefix_cache.hits
            report.prefill_tokens_saved = self._prefill_tokens_saved
        return report

"""Async serving engine: streaming submission, chunked prefill, and
SLA-aware admission.

:class:`~repro.serve.scheduler.Scheduler.run` drains a pre-submitted
queue — fine for replaying a fixed trace, but not a server.  This module
wraps the scheduler in an event-driven :class:`ServingEngine`:

- **Streaming submission.**  :meth:`ServingEngine.submit` may be called
  at any point — before the loop starts, between rounds, from inside a
  ``run_forever`` consumer — and returns a :class:`RequestHandle` with
  incremental token retrieval (:meth:`RequestHandle.new_tokens`), live
  status, and per-request latency metrics.  The engine owns the round
  clock (the scheduler's idle fast-forward is disabled), so a request
  can always still arrive "now".
- **Chunked prefill.**  ``prefill_chunk=N`` bounds the prompt rows any
  round computes (Sarathi-style): long prompts are prefilled in N-token
  chunks interleaved with the running batch's decode rounds instead of
  head-of-line-blocking them.  Generated tokens are bit-identical to
  whole-prompt prefill at every chunk budget (the model's prefill is
  row-count-invariant over a populated cache and every policy's
  ``observe_continuation`` is chunk-invariant).
- **SLA-aware admission.**  Pluggable :class:`AdmissionPolicy` objects
  order arrived requests for admission: :class:`FIFOAdmission` (arrival
  order), :class:`EDFAdmission` (earliest ``Request.deadline`` first),
  :class:`PriorityAdmission` (``Request.priority`` with linear
  starvation aging).  Unsatisfiable requests come back as structured
  rejections on the handle (and in ``ServingReport.rejections``) instead
  of raising, so callers can retry or degrade.

The simulated clock is the scheduler round; arrival processes live in
:func:`repro.experiments.serving.make_workload` (Poisson / bursty
streams, heavy-tailed prompt lengths) and are fed through
:meth:`ServingEngine.play`.  TTFT and deadline-miss metrics flow into
:class:`~repro.serve.scheduler.ServingReport` and — via the per-round
trace's ``final`` prefill markers — into hardware cycles in
:class:`~repro.serve.cosim.ServingCoSimReport`.

Worked example — stream two requests through a chunked-prefill engine::

    >>> import numpy as np
    >>> from repro.config import tiny_config
    >>> from repro.models.inference import CachedTransformer
    >>> from repro.models.transformer import TransformerLM
    >>> from repro.serve import Request
    >>> from repro.serve.engine import ServingEngine
    >>> model = CachedTransformer.from_module(TransformerLM(tiny_config(), seed=0))
    >>> engine = ServingEngine(model, admission="edf", prefill_chunk=8,
    ...                        max_batch_size=2)
    >>> loop = engine.run_forever()
    >>> h0 = engine.submit(Request("r0", np.arange(20), max_new_tokens=4,
    ...                            deadline=30))
    >>> tick = next(loop)           # round 0: first 8-token prompt chunk
    >>> tick.admitted, tick.tokens, h0.status
    (['r0'], {}, 'prefilling')
    >>> ticks = [next(loop) for _ in range(2)]   # chunks land; first token
    >>> h0.new_tokens() == h0.tokens and len(h0.tokens)
    1
    >>> h1 = engine.submit(Request("r1", np.arange(6) + 3, max_new_tokens=2,
    ...                            deadline=12))   # arrives mid-run, at round 3
    >>> engine.close(); remaining = [t for t in loop]    # drain
    >>> h0.done and h1.done, h0.ttft_rounds, h1.deadline_missed
    (True, 2, False)
    >>> report = engine.report()
    >>> report.deadline_misses, len(report.requests)
    (0, 2)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.serve.cosim import ServingCoSimulator
from repro.serve.request import FINISHED, Rejection, Request
from repro.serve.scheduler import Scheduler

__all__ = [
    "AdmissionPolicy",
    "FIFOAdmission",
    "EDFAdmission",
    "CycleEDFAdmission",
    "PriorityAdmission",
    "make_admission",
    "available_admissions",
    "RequestHandle",
    "EngineTick",
    "ServingEngine",
]


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
class AdmissionPolicy:
    """Orders *arrived* waiting requests for admission.

    The scheduler admits the request with the **lowest** ``key`` first
    (ties broken by submission order), re-evaluated every round — so a
    policy may depend on ``now`` (see :class:`PriorityAdmission`'s
    aging).  The base class is FIFO by arrival round.
    """

    name = "fifo"

    def key(self, request, now):
        """Sortable admission rank of ``request`` at round ``now``."""
        return (request.arrival_time,)


class FIFOAdmission(AdmissionPolicy):
    """First-in-first-out by arrival round (the scheduler's default)."""


class EDFAdmission(AdmissionPolicy):
    """Earliest-deadline-first.

    Requests carrying a ``deadline`` are admitted in deadline order,
    ahead of deadline-less requests (which fall back to FIFO among
    themselves).  EDF is the classic optimal single-resource deadline
    scheduler; the property suite asserts it never inverts deadlines.
    """

    name = "edf"

    def key(self, request, now):
        if request.deadline is not None:
            return (0, request.deadline)
        return (1, request.arrival_time)


class CycleEDFAdmission(AdmissionPolicy):
    """Least-laxity-first with deadlines and work priced in *cycles*.

    Plain EDF ranks by deadline round alone, blind to how much compute a
    request still needs: of two requests due the same round, the one
    with the *longer* prompt is objectively more urgent — its prefill
    burns more of the shared machine time before a first token can
    appear.  This policy converts each deadline to a cycle-denominated
    laxity::

        laxity = (deadline - now) * cycles_per_round
                 - predicted_prefill_cycles(prompt)

    and admits the smallest laxity first (ties by deadline, then
    arrival).  Deadline-less requests fall back to FIFO behind every
    deadline-carrying one, as in :class:`EDFAdmission`.

    Parameters
    ----------
    cost_model:
        A :class:`repro.accel.predictor.RoundCostPredictor` pricing
        prompt prefills.  Defaults to VEDA hardware at Llama-2 7B
        shapes — the same datacenter-scale substitution the serving
        co-simulator defaults to.
    cycles_per_round:
        Calibration constant converting the scheduler's abstract round
        clock (deadlines are in rounds) to cycles.  Defaults to the
        cost model's predicted cycles for one reference decode round —
        a half-full batch of eight sequences at cache length 256.
    """

    name = "edf_cycles"

    #: Reference decode round for the ``cycles_per_round`` default.
    REFERENCE_BATCH = 8
    REFERENCE_LENGTH = 256

    def __init__(self, cost_model=None, cycles_per_round=None):
        if cost_model is None:
            from repro.accel.predictor import RoundCostPredictor
            from repro.config import llama2_7b_shapes

            cost_model = RoundCostPredictor(model=llama2_7b_shapes())
        self.cost_model = cost_model
        if cycles_per_round is None:
            cycles_per_round = cost_model.decode_round_cycles(
                [self.REFERENCE_LENGTH] * self.REFERENCE_BATCH
            )
        if cycles_per_round <= 0:
            raise ValueError(
                f"cycles_per_round must be positive, got {cycles_per_round}"
            )
        self.cycles_per_round = float(cycles_per_round)

    def key(self, request, now):
        if request.deadline is not None:
            laxity = (
                request.deadline - now
            ) * self.cycles_per_round - self.cost_model.prefill_cycles(
                int(request.prompt.shape[0])
            )
            return (0, laxity, request.deadline, request.arrival_time)
        return (1, request.arrival_time)


class PriorityAdmission(AdmissionPolicy):
    """Highest ``Request.priority`` first, with linear starvation aging.

    A request's effective priority is ``priority + aging * waited``
    (waited = rounds since arrival), so a low-priority request waiting
    ``(p_max - p) / aging`` rounds outranks any fixed priority ``p_max``
    — aging bounds starvation.  ``aging=0`` is strict priority (can
    starve); the property suite asserts the bound for ``aging > 0``.
    """

    name = "priority"

    def __init__(self, aging=0.05):
        if aging < 0:
            raise ValueError(f"aging must be non-negative, got {aging}")
        self.aging = float(aging)

    def effective_priority(self, request, now):
        return request.priority + self.aging * (now - request.arrival_time)

    def key(self, request, now):
        return (-self.effective_priority(request, now), request.arrival_time)


_ADMISSIONS = {
    "fifo": FIFOAdmission,
    "edf": EDFAdmission,
    "edf_cycles": CycleEDFAdmission,
    "priority": PriorityAdmission,
}


def make_admission(name, **kwargs):
    """Instantiate an admission policy by name (``fifo``/``edf``/
    ``edf_cycles``/``priority``); extra kwargs go to the policy
    constructor."""
    if name not in _ADMISSIONS:
        raise KeyError(
            f"unknown admission policy {name!r}; "
            f"available: {sorted(_ADMISSIONS)}"
        )
    return _ADMISSIONS[name](**kwargs)


def available_admissions():
    """Sorted names of the registered admission policies."""
    return sorted(_ADMISSIONS)


# ----------------------------------------------------------------------
# Handles and ticks
# ----------------------------------------------------------------------
class RequestHandle:
    """Client-side view of one submitted request.

    A handle is live from :meth:`ServingEngine.submit` on: it tracks the
    request through queueing, (chunked) prefill, decode, and retirement,
    exposing generated tokens incrementally while the loop runs — the
    streaming-retrieval half of an async server.  A handle whose
    submission was rejected reports ``status == "rejected"`` and carries
    the structured :class:`~repro.serve.request.Rejection`.
    """

    def __init__(self, request, state, rejection=None):
        self.request = request
        self._state = state
        #: Structured rejection record, or ``None`` when accepted.
        self.rejection = rejection
        self._cursor = 0

    @property
    def request_id(self):
        return self.request.request_id

    @property
    def status(self):
        """``queued`` / ``prefilling`` / ``running`` / ``finished`` /
        ``rejected`` — plus, under two-way scheduling
        (``preempt="recompute"|"swap"``), the transient ``preempted`` /
        ``swapped`` states of a sequence evicted from the batch and
        awaiting re-admission."""
        if self.rejection is not None:
            return "rejected"
        return self._state.status

    @property
    def done(self):
        """Finished or rejected: no further tokens will appear."""
        return self.rejection is not None or self._state.status == FINISHED

    @property
    def tokens(self):
        """All tokens generated so far (empty when rejected)."""
        if self.rejection is not None:
            return []
        return list(self._state.tokens)

    def new_tokens(self):
        """Tokens generated since the previous ``new_tokens`` call — the
        incremental-retrieval primitive (each call advances a cursor)."""
        tokens = self.tokens
        fresh = tokens[self._cursor :]
        self._cursor = len(tokens)
        return fresh

    def result(self):
        """The full generation; raises until :attr:`done`."""
        if self.rejection is not None:
            raise RuntimeError(
                f"request {self.request_id!r} was rejected: "
                f"{self.rejection.detail}"
            )
        if not self.done:
            raise RuntimeError(f"request {self.request_id!r} is still live")
        return self.tokens

    # -- latency metrics (None/False until known) ----------------------
    @property
    def ttft_rounds(self):
        """Rounds from arrival to the first token (``None`` until it
        exists, or when rejected)."""
        return None if self.rejection is not None else self._state.ttft_rounds

    @property
    def inter_token_rounds(self):
        """Mean rounds between consecutive tokens so far."""
        return 0.0 if self.rejection is not None else self._state.inter_token_rounds

    @property
    def deadline_missed(self):
        """True once the request finished after its deadline."""
        return (
            False if self.rejection is not None else self._state.deadline_missed
        )

    @property
    def finish_reason(self):
        return None if self.rejection is not None else self._state.finish_reason


@dataclass
class EngineTick:
    """What one engine round produced (yielded by :meth:`run_forever`)."""

    round_index: int
    #: Request ids admitted into the batch this round.
    admitted: list = field(default_factory=list)
    #: Request ids retired this round.
    finished: list = field(default_factory=list)
    #: ``request_id -> [tokens]`` sampled this round (one each, but kept
    #: as lists so consumers can concatenate without special cases).
    tokens: dict = field(default_factory=dict)

    @property
    def produced(self):
        """Total tokens sampled this round."""
        return sum(len(ts) for ts in self.tokens.values())


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ServingEngine:
    """Event-driven serving loop over a :class:`Scheduler`.

    Parameters
    ----------
    model:
        A :class:`repro.models.inference.CachedTransformer`.
    admission:
        Admission policy: a name (``"fifo"``/``"edf"``/``"priority"``),
        an :class:`AdmissionPolicy` instance, or ``None`` (FIFO).
    prefill_chunk:
        Per-round prompt-token budget (chunked prefill); ``None`` =
        whole-prompt admission, the scheduler's legacy behavior.
    scheduler_kwargs:
        Everything else (``max_batch_size``, ``budget``, ``paged``,
        ``block_size``, ``num_blocks``, ``prefix_caching``,
        ``preempt``, ...) is forwarded to the :class:`Scheduler`.  With
        ``preempt="recompute"`` or ``"swap"``, an arrived request that
        strictly outranks a running sequence under this engine's
        admission policy (earlier deadline under EDF, higher effective
        priority under priority-with-aging) preempts it when no slot or
        blocks are free — deadline pressure becomes two-way scheduling.

    The engine owns the simulated clock: one :meth:`step` = one
    scheduler round, and the scheduler's idle fast-forward is disabled
    so submissions can keep arriving during gaps.  Use :meth:`play` to
    feed a pre-timed workload (an arrival process) through the
    streaming path, or drive :meth:`run_forever` yourself.
    """

    def __init__(self, model, admission="fifo", prefill_chunk=None, **scheduler_kwargs):
        if isinstance(admission, str):
            admission = make_admission(admission)
        self.admission_policy = admission
        self.scheduler = Scheduler(
            model,
            admission_policy=admission,
            prefill_chunk=prefill_chunk,
            auto_fast_forward=False,
            **scheduler_kwargs,
        )
        self._handles = {}
        self._token_counts = {}
        self._finished_seen = 0
        self._closed = False
        self._wall = 0.0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self):
        """The current simulated time (scheduler round index)."""
        return self.scheduler.round_index

    @property
    def drained(self):
        """No live work: every submitted request retired or rejected."""
        return self.scheduler.done

    def skip_to(self, round_index):
        """Jump the idle clock forward (never backward) to
        ``round_index`` — the engine-side replacement for the
        scheduler's disabled idle fast-forward."""
        if round_index > self.scheduler.round_index:
            self.scheduler.round_index = int(round_index)

    # ------------------------------------------------------------------
    # Router introspection (fleet placement signals)
    # ------------------------------------------------------------------
    @property
    def outstanding_tokens(self):
        """Tokens of work still owed to this engine's live requests."""
        return self.scheduler.outstanding_tokens

    @property
    def free_kv_capacity(self):
        """Free KV blocks (paged) or batch slots (dense)."""
        return self.scheduler.free_kv_capacity

    def prefix_probe(self, request):
        """Longest cached prefix (tokens) this engine's radix trie holds
        for ``request``'s prompt; a pure read (no LRU/counter effects)."""
        return self.scheduler.prefix_probe(request)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request) -> RequestHandle:
        """Submit a request — before, during, or between loop rounds.

        A request cannot arrive in the past: an ``arrival_time`` earlier
        than :attr:`now` is bumped to :attr:`now` on a *copy* (the
        caller's request is never mutated, so a workload list can be
        replayed through several engines; a deadline the clock has
        already passed is bumped along — it is due immediately).  Future
        arrivals are honored, becoming visible to admission when the
        clock reaches them.  Returns a live :class:`RequestHandle`; an
        unsatisfiable request yields a handle with ``status ==
        "rejected"`` and the structured reason, rather than raising —
        the engine-level caller decides whether to retry smaller or
        give up.

        Raises
        ------
        RuntimeError
            After :meth:`close`: the loop's forever contract has ended,
            so a new submission would sit queued with nothing left to
            serve it.
        """
        if self._closed:
            raise RuntimeError(
                "engine is closed; submissions would never be served"
            )
        if not isinstance(request, Request):
            raise TypeError(f"expected Request, got {type(request).__name__}")
        if request.arrival_time < self.now:
            deadline = request.deadline
            if deadline is not None and deadline < self.now:
                deadline = self.now
            request = replace(
                request, arrival_time=self.now, deadline=deadline
            )
        outcome = self.scheduler.submit(request, strict=False)
        if isinstance(outcome, Rejection):
            handle = RequestHandle(request, None, rejection=outcome)
        else:
            handle = RequestHandle(request, outcome)
        self._handles[request.request_id] = handle
        return handle

    def handle(self, request_id) -> RequestHandle:
        """The handle of a submitted request."""
        return self._handles[request_id]

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def step(self) -> EngineTick:
        """Advance the simulation by one round; returns what happened."""
        scheduler = self.scheduler
        running_before = {s.request_id for s in scheduler._running}
        start = time.perf_counter()
        scheduler.run_round()
        self._wall += time.perf_counter() - start

        tick = EngineTick(round_index=scheduler.round_index - 1)
        newly_finished = scheduler._finished[self._finished_seen :]
        tick.finished = [s.request_id for s in newly_finished]
        self._finished_seen = len(scheduler._finished)
        for state in list(scheduler._running) + newly_finished:
            rid = state.request_id
            if rid not in running_before and state.admitted_at is not None:
                tick.admitted.append(rid)
            seen = self._token_counts.get(rid, 0)
            if state.num_generated > seen:
                tick.tokens[rid] = list(state.tokens[seen:])
                self._token_counts[rid] = state.num_generated
        return tick

    def run_forever(self):
        """Generator form of the loop: yields an :class:`EngineTick` per
        round, forever — until :meth:`close` is called *and* all live
        work has drained.  Submissions may happen between ``next()``
        calls (that is the point)."""
        while not (self._closed and self.scheduler.done):
            yield self.step()

    def close(self):
        """Stop accepting the loop's forever contract: ``run_forever``
        exits once the backlog drains."""
        self._closed = True

    def run_until_drained(self):
        """Step until every submitted request has retired; returns the
        ticks executed."""
        ticks = []
        while not self.scheduler.done:
            ticks.append(self.step())
        return ticks

    def play(self, requests, drain=True):
        """Feed a pre-timed workload through the streaming path.

        Each request is submitted when the simulated clock reaches its
        ``arrival_time`` (idle gaps are skipped), exactly as an external
        arrival process would drive a server.  Returns the handles, in
        workload order (``requests`` may be any iterable, including a
        generator).  With ``drain=True`` the backlog is served to
        completion; otherwise the caller keeps stepping.
        """
        requests = list(requests)
        pending = sorted(requests, key=lambda r: r.arrival_time)
        handles = {}
        index = 0
        while index < len(pending):
            if self.scheduler.done and pending[index].arrival_time > self.now:
                self.skip_to(pending[index].arrival_time)
            while (
                index < len(pending)
                and pending[index].arrival_time <= self.now
            ):
                request = pending[index]
                handles[request.request_id] = self.submit(request)
                index += 1
            if index < len(pending):
                self.step()
        if drain:
            self.run_until_drained()
        return [handles[r.request_id] for r in requests]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self):
        """The :class:`~repro.serve.scheduler.ServingReport` so far
        (TTFT, per-token latency, deadline misses, rejections)."""
        return self.scheduler.report(self._wall)

    def tokens_for(self, request_id):
        """Generated tokens of a retired request."""
        return self.scheduler.tokens_for(request_id)

    def cosim(
        self,
        hw=None,
        hw_model=None,
        dataflow="auto",
        count_dead_steps=True,
        memoize=False,
    ):
        """Price the run's recorded trace on the accelerator cycle
        model; the returned report includes per-request TTFT in cycles
        (anchored on each request's final prefill event).  ``memoize``
        prices through a bit-identical memoized round-cost predictor."""
        return ServingCoSimulator(
            scheduler=self.scheduler,
            hw=hw,
            hw_model=hw_model,
            dataflow=dataflow,
            count_dead_steps=count_dead_steps,
            memoize=memoize,
        ).replay()

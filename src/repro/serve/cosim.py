"""Serving-scale algorithm/hardware co-simulation.

:class:`repro.cosim.CoSimulator` closes the algorithm/hardware loop for
one sequence: the real engine generates, and the measured cache-length
trajectory is priced by the accelerator cycle model.  This module closes
the same loop for the *serving* path: a
:class:`~repro.serve.scheduler.Scheduler` run leaves behind a per-round
trace (:mod:`repro.serve.trace`) of mixed prefill/decode work with the
real per-sequence cache lengths produced by the eviction policies (dense
or paged), and :class:`ServingCoSimulator` replays that trace through
:meth:`repro.accel.simulator.AcceleratorSimulator.mixed_round`.

Per-phase dataflow selection (paper's flexible PE-array mapping) is the
serving-scale knob: ``dataflow="auto"`` reconfigures the array between
the tiled mapping for prefill rows and the streaming mapping for decode
rows within each round, while ``"prefill"`` / ``"decode"`` pin the array
to one fixed mapping for the whole run.  :func:`compare_dataflows`
quantifies the win of flexibility over either fixed choice on the same
trace.

Latency accounting: every request's TTFT is priced in cycles — from the
cycles accumulated when it arrived to the end of the round pricing its
*final* prefill event (the round whose sampling pass yields its first
token) — and ``max_round_cycles`` exposes the worst single round, the
head-of-line prefill spike that chunked prefill
(``Scheduler(prefill_chunk=...)``) exists to cap.

Preemption accounting: a ``preempt="swap"`` scheduler records
:class:`~repro.serve.trace.SwapEvent` rows, which are priced here as
HBM<->host transfers over the hardware configuration's
:attr:`~repro.accel.config.HardwareConfig.host_link_gb_s` link
(``swap_cycles`` / ``swap_bytes``, serialized into ``total_cycles``).  A
``preempt="recompute"`` scheduler instead re-prefills preempted
sequences, so its overhead shows up as extra prefill rows and compute
cycles — replaying both modes on the same overload trace exposes the
recompute-vs-swap crossover as sequence length grows (transfer bytes
scale linearly with resident KV, re-prefill compute superlinearly).

Speculative-decoding accounting: a ``draft_model`` scheduler records
:class:`~repro.serve.trace.VerifyEvent` rows.  The target's multi-token
verify pass joins the round's ``mixed_round`` as extra *batched decode*
entries at each verify row's exact causal width — the round's one
linear weight fetch is amortized over every decode step *and* every
verify row, while attention stays per-row (exactly how
``CachedTransformer.verify`` computes).  That amortization is the
speculative win: a memory-bound target commits up to ``k + 1`` tokens
per weight fetch instead of one per batch slot.  The draft model's
catch-up prefill and propose steps are priced on a second simulator
built from the draft model's shapes (``hw_draft_model``) and serialized
into ``total_cycles`` (propose must finish before verify can start).
Rejected rows are priced in full but yield no tokens, so
``tokens_per_second`` reflects the *modeled* speedup as a function of
the measured accept rate.

Equivalence anchor: at batch size 1 (and ``count_dead_steps=True``) the
replay is cycle-identical to the solo co-simulator — same per-step
attention cycles, same total decode cycles —
``tests/serve/test_serving_cosim.py`` locks this in.  Dead steps are
validated by their explicit ``dead`` flag (a misfiled event raises) and
are priced as compute only: the replay asserts they contribute zero
tokens.

Worked example — price a hand-written two-round trace on Llama-2 7B
shapes and show flexibility beating both fixed mappings::

    >>> from repro.config import llama2_7b_shapes
    >>> from repro.serve.cosim import ServingCoSimulator
    >>> from repro.serve.trace import DecodeEvent, PrefillEvent, RoundTrace
    >>> trace = [
    ...     RoundTrace(0, prefills=[PrefillEvent("a", 64, 64)],
    ...                decodes=[DecodeEvent("b", 512)]),
    ...     RoundTrace(1, decodes=[DecodeEvent("a", 65),
    ...                            DecodeEvent("b", 513)]),
    ... ]
    >>> report = ServingCoSimulator(hw_model=llama2_7b_shapes()).replay(trace)
    >>> report.total_tokens, report.decode_steps, len(report.rounds)
    (4, 3, 2)
    >>> fixed = [
    ...     ServingCoSimulator(hw_model=llama2_7b_shapes(),
    ...                        dataflow=d).replay(trace).total_cycles
    ...     for d in ("prefill", "decode")
    ... ]
    >>> all(report.total_cycles < cycles for cycles in fixed)
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.area_power import AreaPowerModel
from repro.accel.config import HardwareConfig, veda_config
from repro.accel.predictor import RoundCostPredictor
from repro.accel.scheduler import DATAFLOWS
from repro.accel.simulator import AcceleratorSimulator

__all__ = [
    "ServingCoSimReport",
    "ServingCoSimulator",
    "compare_dataflows",
    "best_dataflow",
]


@dataclass
class ServingCoSimReport:
    """Hardware outcome of replaying one scheduler trace.

    ``rounds`` holds one dict per non-empty scheduler round (keys:
    ``round``, ``prefills``, ``prefill_rows``, ``decodes``, ``cycles``,
    ``attn_cycles``, ``linear_cycles``, ``tokens``) ready for
    :func:`repro.experiments.common.format_table`.  All cycle totals are
    in accelerator clock cycles of the priced hardware configuration.
    """

    dataflow: str = "auto"
    clock_ghz: float = 1.0
    n_pe: int = 128
    rounds: list = field(default_factory=list)
    total_cycles: float = 0.0
    prefill_cycles: float = 0.0
    decode_cycles: float = 0.0
    #: Tokens produced by priced work (one per prefill, one per real
    #: decode step); dead steps never count as tokens.
    total_tokens: int = 0
    #: Prompt rows actually computed (prefix-cache hits excluded).
    prefill_tokens: int = 0
    #: Real decode steps priced (dead steps excluded).
    decode_steps: int = 0
    #: Engine-compatibility dead steps priced (0 when disabled).
    dead_steps: int = 0
    #: Speculative verify passes priced (0 when not speculating).
    verify_passes: int = 0
    #: Target rows computed by verify passes (accepted or not — rejected
    #: rows are priced as wasted work).
    verify_rows: int = 0
    #: Draft tokens proposed / accepted across the trace.
    spec_proposed: int = 0
    spec_accepted: int = 0
    #: Tokens credited to verify passes (their ``tokens`` fields summed).
    spec_tokens: int = 0
    #: Draft-model cycles (catch-up prefills + propose steps), priced on
    #: the draft shapes and serialized into ``total_cycles``.
    draft_cycles: float = 0.0
    macs: float = 0.0
    hbm_bytes: float = 0.0
    #: KV swap transfers priced (``preempt="swap"`` traces only; always
    #: zero for ``off`` and ``recompute`` runs).
    swap_events: int = 0
    #: HBM <-> host bytes moved by KV swapping (keys + values of every
    #: swapped slot, at the priced model's shapes).
    swap_bytes: float = 0.0
    #: Cycles the host link spends on those transfers, serialized into
    #: ``total_cycles`` (swap traffic is never free).
    swap_cycles: float = 0.0
    #: Branch forks priced (fork-family traces only).
    fork_events: int = 0
    #: HBM bytes dense forks spent duplicating KV slabs (read + write of
    #: every copied slot); 0 for paged CoW forks — the sharing win.
    fork_bytes: float = 0.0
    #: HBM cycles of those copies, serialized into ``total_cycles``.
    fork_cycles: float = 0.0
    #: Tensor-parallel degree the trace was priced at (1 = one device).
    tp: int = 1
    #: All-reduce traffic over the inter-cluster link (``tp > 1`` only),
    #: already folded into the per-round cycles by the simulator.
    interconnect_cycles: float = 0.0
    interconnect_bytes: float = 0.0
    #: request_id -> all-layer attention cycles per priced decode step,
    #: in step order (includes the dead step when priced) — directly
    #: comparable to ``CoSimResult.attention_cycles_per_step``.
    per_request_attention: dict = field(default_factory=dict)
    #: All priced decode steps' attention cycles, in replay order.
    decode_attention_per_step: list = field(default_factory=list)
    #: request_id -> time-to-first-token in accelerator cycles: from the
    #: cycles accumulated when the request arrived (0 when arrivals are
    #: unknown) to the end of the round pricing its *final* prefill
    #: event — the round whose sampling pass produces the first token.
    ttft_cycles: dict = field(default_factory=dict)
    #: Modeled energy of the whole trace in joules (PE dynamic per MAC +
    #: DRAM per byte + non-array background power over the modeled
    #: wall-clock; see
    #: :meth:`repro.accel.area_power.AreaPowerModel.run_energy_joules`).
    energy_joules: float = 0.0

    @property
    def wall_seconds(self):
        """Modeled wall-clock of the whole run on the accelerator."""
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def tokens_per_second(self):
        """Batched hardware throughput over the whole trace."""
        return self.total_tokens / self.wall_seconds if self.total_cycles else 0.0

    @property
    def mean_round_cycles(self):
        return self.total_cycles / len(self.rounds) if self.rounds else 0.0

    @property
    def max_round_cycles(self):
        """Worst single round — the head-of-line latency spike a whole
        long-prompt prefill causes (chunked prefill exists to cap it)."""
        return max((r["cycles"] for r in self.rounds), default=0.0)

    @property
    def mean_ttft_cycles(self):
        """Mean time-to-first-token in accelerator cycles (0.0 when no
        prefill completed)."""
        if not self.ttft_cycles:
            return 0.0
        return sum(self.ttft_cycles.values()) / len(self.ttft_cycles)

    @property
    def max_ttft_cycles(self):
        """Worst-case TTFT in cycles (0.0 when no prefill completed)."""
        return max(self.ttft_cycles.values(), default=0.0)

    @property
    def p95_ttft_cycles(self):
        """95th-percentile TTFT in accelerator cycles — the tail-latency
        number cost-guided chunking is judged on (0.0 when empty)."""
        if not self.ttft_cycles:
            return 0.0
        return float(np.percentile(list(self.ttft_cycles.values()), 95))

    @property
    def joules_per_token(self):
        """Modeled energy per produced token (0.0 on an empty trace)."""
        return self.energy_joules / self.total_tokens if self.total_tokens else 0.0

    @property
    def mean_decode_attention_cycles(self):
        """Mean all-layer attention cycles per priced decode step."""
        if not self.decode_attention_per_step:
            raise ValueError("no decode steps priced")
        return sum(self.decode_attention_per_step) / len(
            self.decode_attention_per_step
        )

    @property
    def utilization(self):
        """Achieved MAC-lane occupancy (achieved / peak throughput)."""
        return self.macs / (self.total_cycles * self.n_pe) if self.total_cycles else 0.0

    @property
    def accept_rate(self):
        """Fraction of proposed draft tokens the target accepted (0.0
        without speculation)."""
        return self.spec_accepted / self.spec_proposed if self.spec_proposed else 0.0

    @property
    def tokens_per_target_pass(self):
        """Mean tokens committed per target decode-phase forward pass
        (verify passes and plain decode steps); 1.0 without speculation,
        up to ``spec_k + 1`` at full acceptance."""
        passes = self.verify_passes + self.decode_steps
        if not passes:
            return 0.0
        return (self.spec_tokens + self.decode_steps) / passes

    def request_decode_attention(self, request_id):
        """Per-step attention cycle trace of one request."""
        return list(self.per_request_attention[request_id])

    def summary(self):
        """Flat dict of the aggregate metrics (for experiment tables)."""
        summary = {
            "dataflow": self.dataflow,
            "rounds": len(self.rounds),
            "cycles": self.total_cycles,
            "prefill_cycles": self.prefill_cycles,
            "decode_cycles": self.decode_cycles,
            "tokens": self.total_tokens,
            "hw_tokens/s": self.tokens_per_second,
            "utilization": self.utilization,
            "max_round_cycles": self.max_round_cycles,
            "mean_ttft_cycles": self.mean_ttft_cycles,
            "hbm_gb": self.hbm_bytes / 1e9,
            "joules/token": self.joules_per_token,
        }
        if self.swap_events:
            summary["swap_events"] = self.swap_events
            summary["swap_cycles"] = self.swap_cycles
            summary["swap_mb"] = self.swap_bytes / 1e6
        if self.fork_events:
            summary["fork_events"] = self.fork_events
            summary["fork_cycles"] = self.fork_cycles
            summary["fork_mb"] = self.fork_bytes / 1e6
        if self.verify_passes:
            summary["verify_passes"] = self.verify_passes
            summary["accept_rate"] = self.accept_rate
            summary["tokens/pass"] = self.tokens_per_target_pass
            summary["draft_cycles"] = self.draft_cycles
        if self.tp > 1:
            summary["tp"] = self.tp
            summary["allreduce_cycles"] = self.interconnect_cycles
            summary["allreduce_mb"] = self.interconnect_bytes / 1e6
        return summary


class ServingCoSimulator:
    """Replays a scheduler trace through the accelerator cycle model.

    Parameters
    ----------
    scheduler:
        A :class:`~repro.serve.scheduler.Scheduler` whose ``trace`` to
        replay (optional when traces are passed to :meth:`replay`
        directly, in which case ``hw_model`` is required).
    hw:
        Hardware configuration (default: full VEDA).
    hw_model:
        Model config whose *shapes* are priced; defaults to the
        scheduler's own model config.  Substituting
        :func:`repro.config.llama2_7b_shapes` projects datacenter-scale
        latencies from a small-model serving trace, exactly like the
        solo co-simulator's ``hw_model`` substitution.
    dataflow:
        Round-level PE-array mapping: ``"auto"`` (reconfigure per
        phase — the paper's flexibility), ``"prefill"`` or ``"decode"``
        (pinned).  See :mod:`repro.accel.scheduler`.
    count_dead_steps:
        Price the dead decode step the solo engine spends on the final
        token of a length-capped request (the scheduler's loop skips
        it).  Leave on for cycle-exact comparison against
        :class:`repro.cosim.CoSimulator`; turn off to price only work
        the serving loop actually performs.
    hw_draft_model:
        Model config whose shapes price the *draft* model's work when
        the trace contains speculative verify events; defaults to the
        attached scheduler's ``draft_model`` config.  Replaying a
        speculative trace without draft shapes raises — draft compute is
        the cost side of the speculation trade and must never be
        silently dropped.
    tp:
        Tensor-parallel degree: shard the priced model's heads and FFN
        across ``tp`` PE clusters and price the per-layer all-reduces
        over the hardware configuration's interconnect link.  ``tp=1``
        (default) is bit-identical to the single-device replay.
    memoize:
        Route round pricing through a
        :class:`~repro.accel.predictor.RoundCostPredictor` instead of
        the bare simulator.  The predictor re-assembles cached cost
        fragments in the simulator's own accumulation order, so every
        replayed number — cycles, energy, per-step attention — is
        **bit-identical** to ``memoize=False``; long traces just price
        several times faster (chunk shapes and batch depths repeat).
    predictor / draft_predictor:
        Explicit predictor instances to price with (implies memoized
        pricing for that side).  Passing one lets several replays — e.g.
        the three :func:`compare_dataflows` passes — share one warm
        cache; shapes/tp must match ``hw_model``/``hw_draft_model``.
    """

    def __init__(
        self,
        scheduler=None,
        hw: HardwareConfig = None,
        hw_model=None,
        dataflow="auto",
        count_dead_steps=True,
        hw_draft_model=None,
        tp=1,
        memoize=False,
        predictor=None,
        draft_predictor=None,
    ):
        if dataflow not in DATAFLOWS:
            raise ValueError(
                f"unknown dataflow {dataflow!r}, expected one of {DATAFLOWS}"
            )
        if scheduler is None and hw_model is None:
            raise ValueError("need a scheduler or an explicit hw_model")
        self.scheduler = scheduler
        self.hw = hw or veda_config()
        self.hw_model = hw_model or scheduler.model.config
        self.dataflow = dataflow
        self.count_dead_steps = bool(count_dead_steps)
        self.tp = int(tp)
        if predictor is not None:
            self.simulator = predictor
        elif memoize:
            self.simulator = RoundCostPredictor(self.hw, self.hw_model, tp=self.tp)
        else:
            self.simulator = AcceleratorSimulator(self.hw, self.hw_model, tp=self.tp)
        self.power_model = AreaPowerModel(self.hw)
        if hw_draft_model is None and scheduler is not None:
            draft = getattr(scheduler, "draft_model", None)
            if draft is not None:
                hw_draft_model = draft.config
        self.hw_draft_model = hw_draft_model
        if draft_predictor is not None:
            self.draft_simulator = draft_predictor
        elif hw_draft_model is not None:
            self.draft_simulator = (
                RoundCostPredictor(self.hw, hw_draft_model, tp=self.tp)
                if memoize
                else AcceleratorSimulator(self.hw, hw_draft_model, tp=self.tp)
            )
        else:
            self.draft_simulator = None

    def _scheduler_arrivals(self):
        """``request_id -> arrival round`` of every request the attached
        scheduler knows about (empty when replaying a bare trace)."""
        if self.scheduler is None:
            return {}
        scheduler = self.scheduler
        states = scheduler._finished + scheduler._running + scheduler._waiting
        return {s.request_id: s.request.arrival_time for s in states}

    def replay(self, trace=None, arrivals=None):
        """Price a per-round trace; returns a :class:`ServingCoSimReport`.

        ``trace`` defaults to the constructor scheduler's recorded
        ``trace`` (a list of :class:`~repro.serve.trace.RoundTrace`).
        The model is never re-run: replaying the same trace under
        different hardware configurations or dataflow selections is pure
        arithmetic.

        ``arrivals`` maps ``request_id -> arrival round``; it anchors
        each request's TTFT-in-cycles at the cycles accumulated when the
        simulated clock passed its arrival.  Defaults to the attached
        scheduler's request arrivals; with neither, TTFT is measured
        from the start of the trace.
        """
        if trace is None:
            if self.scheduler is None:
                raise ValueError("no trace given and no scheduler attached")
            trace = self.scheduler.trace
        if arrivals is None:
            arrivals = self._scheduler_arrivals()
        report = ServingCoSimReport(
            dataflow=self.dataflow,
            clock_ghz=self.hw.clock_ghz,
            n_pe=self.hw.n_pe,
            tp=self.tp,
        )
        n_layers = self.hw_model.n_layers
        # Swap transfers move a slot's keys and values for every layer
        # over the host link (preempt="swap"); positions/metadata are
        # negligible next to the KV floats and are not charged.
        swap_bytes_per_slot = (
            2 * self.hw_model.d_model * self.hw.bytes_per_element * n_layers
        )
        has_swaps = any(record.swaps for record in trace)
        has_forks = any(record.forks for record in trace)
        has_verifies = any(record.verifies for record in trace)
        if has_verifies and self.draft_simulator is None:
            raise ValueError(
                "trace contains speculative verify events but no draft-model "
                "shapes are available; pass hw_draft_model= or attach the "
                "speculating scheduler"
            )
        # A request's clock starts at the cycles accumulated before the
        # first priced round at or past its arrival round; trace rounds
        # are in order, so one pointer over arrival-sorted requests
        # anchors everyone in O(requests + rounds).
        arrival_cycles = {}
        pending_arrivals = sorted(arrivals.items(), key=lambda item: item[1])
        next_arrival = 0
        for record in trace:
            while (
                next_arrival < len(pending_arrivals)
                and pending_arrivals[next_arrival][1] <= record.round_index
            ):
                request_id = pending_arrivals[next_arrival][0]
                arrival_cycles[request_id] = report.total_cycles
                next_arrival += 1
            # Dead steps are recognized by their explicit flag, never by
            # which list they sit in; a misfiled event is a trace bug.
            for event in record.decodes:
                if event.dead:
                    raise ValueError(
                        f"round {record.round_index}: dead decode event for "
                        f"{event.request_id!r} misfiled under "
                        "RoundTrace.decodes"
                    )
            for event in record.dead_steps:
                if not event.dead:
                    raise ValueError(
                        f"round {record.round_index}: live decode event for "
                        f"{event.request_id!r} misfiled under "
                        "RoundTrace.dead_steps"
                    )
            decode_events = list(record.decodes)
            if self.count_dead_steps:
                decode_events.extend(record.dead_steps)
            if (
                not record.prefills
                and not decode_events
                and not record.verifies
                and not record.swaps
                and not record.forks
            ):
                continue
            if record.prefills or decode_events or record.verifies:
                # Verify rows join the round's batched decode pass at
                # their exact causal widths: the round's one linear
                # weight fetch is amortized over every decode step and
                # every verify row (the speculative win), while
                # attention is per-row — exactly how
                # `CachedTransformer.verify` computes.  Verify entries
                # ride along after the real decode events so the
                # per-sequence attention zip below stays aligned.
                stats = self.simulator.mixed_round(
                    prefill_lengths=[e.computed_tokens for e in record.prefills],
                    decode_lengths=[e.attention_length for e in decode_events]
                    + [
                        v.prior + i + 1
                        for v in record.verifies
                        for i in range(v.rows)
                    ],
                    dataflow=self.dataflow,
                    prefix_lengths=[e.prefix_length for e in record.prefills],
                )
            else:
                stats = None  # swap-only round: host-link traffic alone
            # Voting-engine vote counts live off-chip (paper Sec. V):
            # UINT16 per position, read + write per step per layer, for
            # every budget-managed sequence.  Each verify row of a
            # budgeted sequence observes at its own causal width.
            vote_bytes = sum(
                2 * 2 * event.attention_length * n_layers
                for event in decode_events
                if event.budgeted
            ) + sum(
                2 * 2 * (v.prior + i + 1) * n_layers
                for v in record.verifies
                if v.budgeted
                for i in range(v.rows)
            )
            # Draft-model work (catch-up prefill + propose steps) is
            # priced at the draft's shapes and serialized into the
            # round: propose must finish before verify can start.
            round_draft_cycles = 0.0
            if record.verifies:
                draft_prefills = [
                    v.draft_prefill_rows
                    for v in record.verifies
                    if v.draft_prefill_rows
                ]
                draft_prefix = [
                    v.draft_prefill_prior
                    for v in record.verifies
                    if v.draft_prefill_rows
                ]
                draft_decodes = [
                    length
                    for v in record.verifies
                    for length in v.draft_decode_lengths
                ]
                if draft_prefills or draft_decodes:
                    draft_stats = self.draft_simulator.mixed_round(
                        prefill_lengths=draft_prefills,
                        decode_lengths=draft_decodes,
                        dataflow=self.dataflow,
                        prefix_lengths=draft_prefix,
                    )
                    round_draft_cycles = draft_stats.cycles
                    report.draft_cycles += draft_stats.cycles
                    report.macs += draft_stats.macs
                    report.hbm_bytes += draft_stats.hbm_bytes
                    report.interconnect_cycles += draft_stats.interconnect_cycles
                    report.interconnect_bytes += draft_stats.interconnect_bytes
                report.verify_passes += record.num_verifies
                report.verify_rows += sum(v.rows for v in record.verifies)
                report.spec_proposed += sum(v.proposed for v in record.verifies)
                report.spec_accepted += sum(v.accepted for v in record.verifies)
                report.spec_tokens += sum(v.tokens for v in record.verifies)
            # Fork traffic: a dense fork duplicates every copied slot's
            # keys and values within HBM (one read + one write pass over
            # the same bytes a swap would move once over the host link);
            # a paged CoW fork copies nothing and is priced at zero —
            # the shared-prompt-blocks win made cycle-visible.
            round_fork_cycles = 0.0
            if record.forks:
                round_fork_bytes = (
                    record.forked_copied_slots * 2 * swap_bytes_per_slot
                )
                round_fork_cycles = round_fork_bytes / self.hw.bytes_per_cycle
                report.fork_events += record.num_forks
                report.fork_bytes += round_fork_bytes
                report.fork_cycles += round_fork_cycles
            round_swap_cycles = 0.0
            if record.swaps:
                round_swap_bytes = (
                    record.swapped_kv_slots * swap_bytes_per_slot
                )
                round_swap_cycles = (
                    round_swap_bytes / self.hw.host_bytes_per_cycle
                )
                report.swap_events += record.num_swaps
                report.swap_bytes += round_swap_bytes
                report.swap_cycles += round_swap_cycles
            if stats is not None:
                report.total_cycles += stats.cycles
                report.prefill_cycles += stats.prefill_cycles
                report.decode_cycles += stats.decode_cycles
                report.macs += stats.macs
                report.hbm_bytes += stats.hbm_bytes + vote_bytes
                report.interconnect_cycles += stats.interconnect_cycles
                report.interconnect_bytes += stats.interconnect_bytes
            report.total_cycles += (
                round_swap_cycles + round_draft_cycles + round_fork_cycles
            )
            # Tokens are recomputed here from the per-event flags so the
            # pricing loop itself guarantees dead rows yield zero tokens
            # (a `record.tokens` regression would trip this, not pass
            # through silently).
            live_tokens = (
                sum(1 for e in record.prefills if e.final)
                + sum(1 for e in record.decodes if not e.dead)
                + sum(v.tokens for v in record.verifies)
            )
            assert live_tokens == record.tokens, (
                f"round {record.round_index}: dead steps priced as tokens "
                f"({record.tokens} recorded vs {live_tokens} live)"
            )
            report.total_tokens += live_tokens
            report.prefill_tokens += record.computed_prefill_tokens
            report.decode_steps += sum(1 for e in decode_events if not e.dead)
            report.dead_steps += sum(1 for e in decode_events if e.dead)
            if stats is not None:
                for event, attention in zip(
                    decode_events, stats.per_sequence_attention
                ):
                    report.per_request_attention.setdefault(
                        event.request_id, []
                    ).append(attention)
                    report.decode_attention_per_step.append(attention)
            for event in record.prefills:
                if event.final:
                    # First token sampled from this round's logits: TTFT
                    # spans arrival to the end of this round.  A
                    # recompute resume replays a final prefill for the
                    # same request later; the first one is the TTFT.
                    report.ttft_cycles.setdefault(
                        event.request_id,
                        report.total_cycles
                        - arrival_cycles.get(event.request_id, 0.0),
                    )
            row = {
                "round": record.round_index,
                "prefills": record.num_prefills,
                "prefill_rows": record.computed_prefill_tokens,
                "decodes": len(decode_events),
                "cycles": (stats.cycles if stats is not None else 0.0)
                + round_swap_cycles
                + round_draft_cycles
                + round_fork_cycles,
                "attn_cycles": stats.attention_cycles if stats is not None else 0.0,
                "linear_cycles": stats.linear_cycles if stats is not None else 0.0,
                "tokens": record.tokens,
            }
            if has_swaps:
                row["swaps"] = record.num_swaps
                row["swap_cycles"] = round_swap_cycles
            if has_forks:
                row["forks"] = record.num_forks
                row["fork_cycles"] = round_fork_cycles
            if has_verifies:
                row["verifies"] = record.num_verifies
                row["verify_rows"] = sum(v.rows for v in record.verifies)
                row["draft_cycles"] = round_draft_cycles
            report.rounds.append(row)
        # Energy over the whole trace: PE dynamic scales with the MACs
        # priced above (target + draft), DRAM with every HBM byte
        # (weights, KV, votes), background with the modeled wall-clock
        # (swap/fork/draft serialization included in total_cycles).
        report.energy_joules = self.power_model.run_energy_joules(
            report.total_cycles, report.macs, report.hbm_bytes
        )
        return report


def compare_dataflows(
    scheduler=None,
    trace=None,
    hw: HardwareConfig = None,
    hw_model=None,
    count_dead_steps=True,
    hw_draft_model=None,
    memoize=False,
):
    """Replay one trace under every dataflow selection.

    Returns ``{"auto": report, "prefill": report, "decode": report}``.
    ``"auto"`` (per-phase reconfiguration) lower-bounds both pinned
    mappings by construction; the cycle gap on a mixed prefill/decode
    trace is the serving-scale value of the paper's flexible PE array.

    On fixed-dataflow hardware (``flexible_dataflow=False``) the array
    cannot express the streaming mapping, so the comparison degrades to
    ``{"auto", "prefill"}`` — both pricing the baseline's tiled
    configuration.

    ``memoize=True`` prices every pass through one *shared*
    :class:`~repro.accel.predictor.RoundCostPredictor` (its caches key
    on the resolved mapping, so the selections never collide), keeping
    the reports bit-identical while the repeat passes run mostly warm.
    """
    effective_hw = hw or veda_config()
    selections = (
        DATAFLOWS if effective_hw.flexible_dataflow else ("auto", "prefill")
    )
    predictor = draft_predictor = None
    if memoize:
        effective_model = hw_model or scheduler.model.config
        predictor = RoundCostPredictor(effective_hw, effective_model)
        effective_draft = hw_draft_model
        if effective_draft is None and scheduler is not None:
            draft = getattr(scheduler, "draft_model", None)
            if draft is not None:
                effective_draft = draft.config
        if effective_draft is not None:
            draft_predictor = RoundCostPredictor(effective_hw, effective_draft)
    reports = {}
    for dataflow in selections:
        cosim = ServingCoSimulator(
            scheduler=scheduler,
            hw=hw,
            hw_model=hw_model,
            dataflow=dataflow,
            count_dead_steps=count_dead_steps,
            hw_draft_model=hw_draft_model,
            predictor=predictor,
            draft_predictor=draft_predictor,
        )
        reports[dataflow] = cosim.replay(trace)
    return reports


def best_dataflow(reports, objective="cycles"):
    """Pick the winning dataflow from a :func:`compare_dataflows` dict.

    ``objective="cycles"`` minimizes ``total_cycles`` (throughput);
    ``"energy"`` minimizes ``energy_joules`` — the two can disagree,
    e.g. when the streaming mapping saves cycles but re-reads KV from
    HBM (every byte pays DRAM access energy).  Ties break toward
    ``"auto"`` then the :data:`~repro.accel.scheduler.DATAFLOWS` order.
    Returns ``(name, report)``.
    """
    if objective not in ("cycles", "energy"):
        raise ValueError(
            f"objective must be 'cycles' or 'energy', got {objective!r}"
        )
    if not reports:
        raise ValueError("no dataflow reports to choose from")
    metric = (
        (lambda r: r.total_cycles)
        if objective == "cycles"
        else (lambda r: r.energy_joules)
    )
    order = {name: rank for rank, name in enumerate(DATAFLOWS)}
    name = min(reports, key=lambda n: (metric(reports[n]), order.get(n, len(order))))
    return name, reports[name]

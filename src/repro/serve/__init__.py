"""Batched serving subsystem: requests, sequence state, the
continuous-batching scheduler, and the paged KV memory layer
(block pool, paged caches, cross-request prefix cache)."""

from repro.serve.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    PagedLayerKVCache,
)
from repro.serve.prefix_cache import PrefixCache, PrefixEntry
from repro.serve.request import (
    FINISHED,
    QUEUED,
    RUNNING,
    Request,
    SequenceState,
)
from repro.serve.scheduler import Scheduler, ServingReport

__all__ = [
    "BlockPool",
    "BlockPoolExhausted",
    "PagedKVCache",
    "PagedLayerKVCache",
    "PrefixCache",
    "PrefixEntry",
    "Request",
    "SequenceState",
    "Scheduler",
    "ServingReport",
    "QUEUED",
    "RUNNING",
    "FINISHED",
]

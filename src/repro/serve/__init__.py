"""Batched serving subsystem: requests, sequence state, and the
continuous-batching scheduler (see :mod:`repro.serve.scheduler`)."""

from repro.serve.request import (
    FINISHED,
    QUEUED,
    RUNNING,
    Request,
    SequenceState,
)
from repro.serve.scheduler import Scheduler, ServingReport

__all__ = [
    "Request",
    "SequenceState",
    "Scheduler",
    "ServingReport",
    "QUEUED",
    "RUNNING",
    "FINISHED",
]

"""Batched serving subsystem: requests, sequence state, the
continuous-batching scheduler (with Sarathi-style chunked prefill), the
async serving engine (streaming submission, per-request handles,
SLA-aware admission), the paged KV memory layer (block pool, paged
caches, cross-request prefix cache), and the serving-scale hardware
co-simulator (per-round trace replay with phase-aware dataflow
selection and TTFT-in-cycles accounting)."""

from repro.serve.cosim import (
    ServingCoSimReport,
    ServingCoSimulator,
    compare_dataflows,
)
from repro.serve.engine import (
    AdmissionPolicy,
    EDFAdmission,
    EngineTick,
    FIFOAdmission,
    PriorityAdmission,
    RequestHandle,
    ServingEngine,
    available_admissions,
    make_admission,
)
from repro.serve.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    PagedLayerKVCache,
)
from repro.serve.prefix_cache import PrefixCache, PrefixEntry
from repro.serve.request import (
    FINISHED,
    PREFILLING,
    QUEUED,
    RUNNING,
    Rejection,
    Request,
    SequenceState,
)
from repro.serve.scheduler import Scheduler, ServingReport
from repro.serve.trace import DecodeEvent, PrefillEvent, RoundTrace

__all__ = [
    "AdmissionPolicy",
    "BlockPool",
    "BlockPoolExhausted",
    "EDFAdmission",
    "EngineTick",
    "FIFOAdmission",
    "PagedKVCache",
    "PagedLayerKVCache",
    "PrefixCache",
    "PrefixEntry",
    "PriorityAdmission",
    "Rejection",
    "Request",
    "RequestHandle",
    "SequenceState",
    "Scheduler",
    "ServingEngine",
    "ServingReport",
    "ServingCoSimReport",
    "ServingCoSimulator",
    "available_admissions",
    "compare_dataflows",
    "make_admission",
    "DecodeEvent",
    "PrefillEvent",
    "RoundTrace",
    "QUEUED",
    "PREFILLING",
    "RUNNING",
    "FINISHED",
]

"""Batched serving subsystem: requests, sequence state, the
continuous-batching scheduler (with Sarathi-style chunked prefill and
two-way preemption/swap scheduling), the unified resource manager
(batch slots, pool blocks, prefix reservations, the modeled host swap
pool), the async serving engine (streaming submission, per-request
handles, SLA-aware admission), the paged KV memory layer (block pool,
paged caches, cross-request prefix cache), the serving-scale hardware
co-simulator (per-round trace replay with phase-aware dataflow
selection, TTFT-in-cycles accounting, and host-link swap pricing), and
the multi-replica fleet (prefix-affinity routing over engine replicas
with fleet-level co-simulation and tensor-parallel pricing)."""

from repro.serve.cosim import (
    ServingCoSimReport,
    ServingCoSimulator,
    best_dataflow,
    compare_dataflows,
)
from repro.serve.fleet import (
    FleetCoSimReport,
    FleetReport,
    FleetRouter,
    LeastLoadedPlacement,
    PlacementPolicy,
    PrefixAffinityPlacement,
    RoundRobinPlacement,
    ServingFleet,
    available_placements,
    make_placement,
)
from repro.serve.engine import (
    AdmissionPolicy,
    CycleEDFAdmission,
    EDFAdmission,
    EngineTick,
    FIFOAdmission,
    PriorityAdmission,
    RequestHandle,
    ServingEngine,
    available_admissions,
    make_admission,
)
from repro.serve.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    PagedLayerKVCache,
)
from repro.serve.prefix_cache import PrefixCache, PrefixMatch, PrefixNode
from repro.serve.request import (
    FINISHED,
    PREEMPTED,
    PREFILLING,
    QUEUED,
    RUNNING,
    SWAPPED,
    Rejection,
    Request,
    SequenceState,
)
from repro.serve.resources import PREEMPT_MODES, KVResourceManager, SwapImage
from repro.serve.scheduler import Scheduler, ServingReport
from repro.serve.trace import (
    DecodeEvent,
    ForkEvent,
    PrefillEvent,
    RoundTrace,
    SwapEvent,
    VerifyEvent,
)

__all__ = [
    "AdmissionPolicy",
    "BlockPool",
    "BlockPoolExhausted",
    "CycleEDFAdmission",
    "EDFAdmission",
    "EngineTick",
    "FIFOAdmission",
    "FleetCoSimReport",
    "FleetReport",
    "FleetRouter",
    "LeastLoadedPlacement",
    "PlacementPolicy",
    "PrefixAffinityPlacement",
    "RoundRobinPlacement",
    "PagedKVCache",
    "PagedLayerKVCache",
    "PrefixCache",
    "PrefixMatch",
    "PrefixNode",
    "PriorityAdmission",
    "Rejection",
    "Request",
    "RequestHandle",
    "SequenceState",
    "Scheduler",
    "ServingEngine",
    "ServingFleet",
    "ServingReport",
    "ServingCoSimReport",
    "ServingCoSimulator",
    "available_admissions",
    "available_placements",
    "best_dataflow",
    "compare_dataflows",
    "make_admission",
    "make_placement",
    "DecodeEvent",
    "ForkEvent",
    "PrefillEvent",
    "RoundTrace",
    "SwapEvent",
    "VerifyEvent",
    "KVResourceManager",
    "SwapImage",
    "PREEMPT_MODES",
    "QUEUED",
    "PREFILLING",
    "RUNNING",
    "FINISHED",
    "PREEMPTED",
    "SWAPPED",
]

"""Batched serving subsystem: requests, sequence state, the
continuous-batching scheduler, the paged KV memory layer (block pool,
paged caches, cross-request prefix cache), and the serving-scale
hardware co-simulator (per-round trace replay with phase-aware dataflow
selection)."""

from repro.serve.cosim import (
    ServingCoSimReport,
    ServingCoSimulator,
    compare_dataflows,
)
from repro.serve.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    PagedLayerKVCache,
)
from repro.serve.prefix_cache import PrefixCache, PrefixEntry
from repro.serve.request import (
    FINISHED,
    QUEUED,
    RUNNING,
    Request,
    SequenceState,
)
from repro.serve.scheduler import Scheduler, ServingReport
from repro.serve.trace import DecodeEvent, PrefillEvent, RoundTrace

__all__ = [
    "BlockPool",
    "BlockPoolExhausted",
    "PagedKVCache",
    "PagedLayerKVCache",
    "PrefixCache",
    "PrefixEntry",
    "Request",
    "SequenceState",
    "Scheduler",
    "ServingReport",
    "ServingCoSimReport",
    "ServingCoSimulator",
    "compare_dataflows",
    "DecodeEvent",
    "PrefillEvent",
    "RoundTrace",
    "QUEUED",
    "RUNNING",
    "FINISHED",
]

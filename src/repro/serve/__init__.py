"""Batched serving subsystem: requests, sequence state, the
continuous-batching scheduler (with Sarathi-style chunked prefill and
two-way preemption/swap scheduling), the unified resource manager
(batch slots, pool blocks, prefix reservations, the modeled host swap
pool), the async serving engine (streaming submission, per-request
handles, SLA-aware admission), the paged KV memory layer (block pool,
paged caches, cross-request prefix cache), and the serving-scale
hardware co-simulator (per-round trace replay with phase-aware dataflow
selection, TTFT-in-cycles accounting, and host-link swap pricing)."""

from repro.serve.cosim import (
    ServingCoSimReport,
    ServingCoSimulator,
    compare_dataflows,
)
from repro.serve.engine import (
    AdmissionPolicy,
    EDFAdmission,
    EngineTick,
    FIFOAdmission,
    PriorityAdmission,
    RequestHandle,
    ServingEngine,
    available_admissions,
    make_admission,
)
from repro.serve.paging import (
    BlockPool,
    BlockPoolExhausted,
    PagedKVCache,
    PagedLayerKVCache,
)
from repro.serve.prefix_cache import PrefixCache, PrefixMatch, PrefixNode
from repro.serve.request import (
    FINISHED,
    PREEMPTED,
    PREFILLING,
    QUEUED,
    RUNNING,
    SWAPPED,
    Rejection,
    Request,
    SequenceState,
)
from repro.serve.resources import PREEMPT_MODES, KVResourceManager, SwapImage
from repro.serve.scheduler import Scheduler, ServingReport
from repro.serve.trace import (
    DecodeEvent,
    ForkEvent,
    PrefillEvent,
    RoundTrace,
    SwapEvent,
    VerifyEvent,
)

__all__ = [
    "AdmissionPolicy",
    "BlockPool",
    "BlockPoolExhausted",
    "EDFAdmission",
    "EngineTick",
    "FIFOAdmission",
    "PagedKVCache",
    "PagedLayerKVCache",
    "PrefixCache",
    "PrefixMatch",
    "PrefixNode",
    "PriorityAdmission",
    "Rejection",
    "Request",
    "RequestHandle",
    "SequenceState",
    "Scheduler",
    "ServingEngine",
    "ServingReport",
    "ServingCoSimReport",
    "ServingCoSimulator",
    "available_admissions",
    "compare_dataflows",
    "make_admission",
    "DecodeEvent",
    "ForkEvent",
    "PrefillEvent",
    "RoundTrace",
    "SwapEvent",
    "VerifyEvent",
    "KVResourceManager",
    "SwapImage",
    "PREEMPT_MODES",
    "QUEUED",
    "PREFILLING",
    "RUNNING",
    "FINISHED",
    "PREEMPTED",
    "SWAPPED",
]

"""Cross-request prefix cache over pool blocks.

Concurrent serving traffic is heavy with shared prompt prefixes (system
prompts, few-shot preambles).  Because a token's key/value vectors depend
only on the tokens before it — RoPE is applied at production time, and
the prefill linear layers are row-count invariant (see
``repro.models.inference``) — the KV blocks of a shared prefix are
bitwise identical across requests and can be computed once.

This cache maps *full* blocks of prompt tokens to the physical pool
blocks that hold their KV vectors, chained vLLM-style: block ``b``'s key
derives from block ``b-1``'s key plus ``b``'s tokens, so a lookup walks
the chain and stops at the first miss.  Two safety properties:

- **Content-checked.**  Hash keys are verified against the stored token
  tuple, so a hash collision degrades to a miss, never to wrong KV reuse.
- **Policy state travels with the blocks.**  Eviction policies accumulate
  per-slot state from prefill attention rows (VEDA's votes, H2O's
  sums).  Rows ``< P`` of a causal prefill depend only on tokens ``< P``,
  so each entry snapshots the policy's slot state at its block boundary
  (``EvictionPolicy.export_prefill_state``); a hit imports the snapshot
  instead of recomputing, keeping eviction decisions — and therefore
  generated tokens — bit-identical to a cold prefill.  The policy
  configuration is folded into the hash chain root, so requests served
  under different policy settings never share snapshots.

Entries hold one pool reference per block per layer; retirement of the
originating request therefore leaves the prefix resident.  ``reclaim``
drops least-recently-used entries whose blocks nobody else references
(deepest chain links first, so parents outlive children), and is wired as
the pool's pressure valve by the scheduler.

Worked example — register one full block, then hit and miss it::

    >>> from repro.serve.paging import BlockPool
    >>> from repro.serve.prefix_cache import PrefixCache
    >>> pool = BlockPool(n_heads=1, head_dim=2, block_size=4, num_blocks=8)
    >>> cache = PrefixCache(block_size=4)
    >>> block = pool.allocate()
    >>> root = PrefixCache.root_key(policy_key=("voting", 1))
    >>> key = cache.insert(root, (1, 2, 3, 4), [block], [None], pool)
    >>> entries, _ = cache.match([1, 2, 3, 4, 9, 9], ("voting", 1))
    >>> len(entries), entries[0].layer_block_ids == (block,)
    (1, True)
    >>> cache.match([5, 6, 7, 8, 9], ("voting", 1))[0]   # content miss
    []
    >>> pool.refcount(block)   # the cache holds its own reference
    2
    >>> cache.clear(pool)
    >>> pool.refcount(block)
    1
"""

from __future__ import annotations

__all__ = ["PrefixCache", "PrefixEntry"]


class PrefixEntry:
    """One cached full block of a prompt-prefix chain."""

    __slots__ = (
        "key",
        "parent_key",
        "tokens",
        "depth",
        "children",
        "layer_block_ids",
        "policy_state",
        "last_used",
    )

    def __init__(self, key, parent_key, tokens, depth, layer_block_ids, policy_state):
        self.key = key
        #: Chain link to the previous block's entry (root key at depth 1).
        self.parent_key = parent_key
        #: The block's token ids (content check against hash collisions).
        self.tokens = tokens
        #: 1-based chain position: ``depth * block_size`` tokens end here.
        self.depth = depth
        #: Resident entries chained directly after this one; an entry
        #: with children is never reclaimed (dropping a parent would
        #: orphan them: a lookup walks from the root, so an orphan can
        #: never match again yet keeps its blocks pinned).
        self.children = 0
        #: Pool block id per layer, index = layer.
        self.layer_block_ids = layer_block_ids
        #: Per-layer policy slot-state snapshot at this block boundary
        #: (cumulative over slots ``[0, depth * block_size)``).
        self.policy_state = policy_state
        self.last_used = 0


class PrefixCache:
    """Block-granular prompt-prefix cache with LRU reclaim.

    ``max_blocks`` bounds the pool references the cache may hold:
    registrations beyond it shed least-recently-used idle entries first
    (blocks still referenced by live sequences are never touched), so hot
    shared prefixes stay resident while never-rehit unique-suffix blocks
    recycle back to the pool.  ``None`` keeps every registration.
    """

    def __init__(self, block_size, max_blocks=None):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if max_blocks is not None and max_blocks <= 0:
            raise ValueError(f"max_blocks must be positive, got {max_blocks}")
        self.block_size = int(block_size)
        self.max_blocks = max_blocks
        self._entries = {}
        self._clock = 0
        self.hits = 0
        self.lookups = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_entries(self):
        return len(self._entries)

    @property
    def num_blocks_held(self):
        """Pool references currently held by the cache (all layers)."""
        return sum(
            len(entry.layer_block_ids) for entry in self._entries.values()
        )

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0

    # ------------------------------------------------------------------
    # Chain walking
    # ------------------------------------------------------------------
    @staticmethod
    def root_key(policy_key):
        """Chain root; folding the policy configuration in keeps requests
        with different eviction settings from sharing state snapshots."""
        return hash(("prefix-root", policy_key))

    @staticmethod
    def chain_key(parent_key, tokens):
        return hash((parent_key, tokens))

    def match(self, prompt, policy_key):
        """Longest cached chain of full blocks covering ``prompt[:-1]``.

        Returns ``(entries, parent_key)``: the matched chain (possibly
        empty) and the key from which registration of this prompt's
        remaining full blocks should continue.  At least one prompt token
        is always left uncached so the consumer still runs a prefill that
        produces next-token logits.
        """
        self.lookups += 1
        self._clock += 1
        entries = []
        parent = self.root_key(policy_key)
        max_blocks = (len(prompt) - 1) // self.block_size
        for index in range(max_blocks):
            tokens = tuple(
                int(t)
                for t in prompt[
                    index * self.block_size : (index + 1) * self.block_size
                ]
            )
            key = self.chain_key(parent, tokens)
            entry = self._entries.get(key)
            if entry is None or entry.tokens != tokens:
                break
            entry.last_used = self._clock
            entries.append(entry)
            parent = key
        if entries:
            self.hits += 1
        return entries, parent

    def insert(self, parent_key, tokens, layer_block_ids, policy_state, pool):
        """Register one full block continuing ``parent_key``.

        Takes one pool reference per block so the entry outlives the
        registering request.  If the chain link already exists (two
        identical prompts prefilled concurrently), the existing entry
        wins and no references are taken.  Returns the entry's key, the
        ``parent_key`` for the next block.
        """
        self._clock += 1
        tokens = tuple(int(t) for t in tokens)
        key = self.chain_key(parent_key, tokens)
        existing = self._entries.get(key)
        if existing is not None and existing.tokens == tokens:
            existing.last_used = self._clock
            return key
        if existing is not None:
            # Hash collision with different content: keep the resident
            # entry (evicting it under a live chain would orphan children)
            # and simply skip registration of the newcomer.
            return key
        entry = PrefixEntry(
            key=key,
            parent_key=parent_key,
            tokens=tokens,
            depth=self._depth_of(parent_key) + 1,
            layer_block_ids=tuple(layer_block_ids),
            policy_state=policy_state,
        )
        entry.last_used = self._clock
        for block_id in entry.layer_block_ids:
            pool.retain(block_id)
        self._entries[key] = entry
        parent = self._entries.get(parent_key)
        if parent is not None:
            parent.children += 1
        if self.max_blocks is not None:
            excess = self.num_blocks_held - self.max_blocks
            if excess > 0:
                self.reclaim(pool, excess)
        return key

    def _depth_of(self, parent_key):
        entry = self._entries.get(parent_key)
        return entry.depth if entry is not None else 0

    # ------------------------------------------------------------------
    # Reclaim
    # ------------------------------------------------------------------
    def reclaim(self, pool, blocks_needed):
        """Drop idle entries until ``blocks_needed`` pool blocks freed.

        Only *leaf* entries (no resident children — chains reclaim tip
        first, so the surviving prefix stays reachable from its root)
        whose blocks nobody else references (refcount 1 = the cache's own
        reference) are droppable; candidates go least recently used
        first.  Dropping a leaf may expose its parent, so candidates are
        rescanned until a pass frees nothing.  Returns the number of pool
        blocks actually freed.
        """
        freed = 0
        progress = True
        while freed < blocks_needed and progress:
            progress = False
            candidates = sorted(
                self._entries.values(), key=lambda e: (e.last_used, -e.depth)
            )
            for entry in candidates:
                if freed >= blocks_needed:
                    break
                if entry.children:
                    continue
                if any(
                    pool.refcount(block_id) > 1
                    for block_id in entry.layer_block_ids
                ):
                    continue
                del self._entries[entry.key]
                parent = self._entries.get(entry.parent_key)
                if parent is not None:
                    parent.children -= 1
                for block_id in entry.layer_block_ids:
                    if pool.release(block_id) == 0:
                        freed += 1
                progress = True
        return freed

    def clear(self, pool):
        """Release every held block (end-of-trace teardown)."""
        for entry in self._entries.values():
            for block_id in entry.layer_block_ids:
                pool.release(block_id)
        self._entries.clear()

    def __repr__(self):
        return (
            f"PrefixCache(entries={self.num_entries}, "
            f"blocks_held={self.num_blocks_held}, hits={self.hits}/"
            f"{self.lookups})"
        )

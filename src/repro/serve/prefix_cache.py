"""Cross-request prefix sharing: a token-level radix trie over KV blocks.

Serving traffic repeats prompt prefixes constantly — system prompts,
few-shot preambles, multi-turn conversations resubmitting their whole
history.  Because a token's key/value vectors depend only on the tokens
before it (RoPE is applied at production time and the prefill linear
layers are row-count invariant, see ``repro.models.inference``), the KV
state of a shared prefix is bitwise identical across requests and can be
computed once.  The paged allocator (:mod:`repro.serve.paging`) makes
that state *shareable* (refcounted blocks, copy-on-write); this module
decides what stays resident and how much of a new prompt it covers.

Design
------
The cache is a radix trie keyed by token content:

- **Nodes are blocks.**  One node per registered KV block; its edge
  label is the block's ``block_size`` tokens (multi-token labels are the
  radix compression — the longest-prefix walk does one node hop per
  block, not per token, so lookup is O(L)).  Children are bucketed by
  first token and disambiguated by *full content comparison*, so two
  blocks whose labels merely hash alike can never be confused (the
  hash-chained predecessor registered new blocks under a
  content-mismatched resident on hash collision, pinning unreachable
  pool blocks until teardown).
- **Longest-prefix walk, token-level tail.**  :meth:`match` walks full
  blocks and then, for unbudgeted adopters, matches a *partial tail*:
  when the prompt diverges mid-block from a resident label, the hit
  still covers the common rows — the adopter attaches the divergent
  block too, and its first write past the covered rows copies the block
  via the pool's ordinary CoW path.  A request sharing all but one
  token of a resident prompt re-prefills exactly one row.
- **Policy snapshots at block boundaries.**  Each node can carry the
  eviction policy's exported per-layer slot state at its boundary
  (:meth:`~repro.core.policies.base.EvictionPolicy.export_prefill_state`
  — VEDA's votes, H2O's sums; rows ``< P`` of a causal prefill depend
  only on tokens ``< P``, so the snapshot is a pure function of the
  prefix).  A *budgeted* adopter needs those votes bit-exact, so its
  coverage stops at the deepest matched node whose snapshot is present;
  an *unbudgeted* adopter never consults the votes and takes the full
  token-level coverage, importing the deepest available snapshot and
  flagging itself *tainted* — its own later exports are impure and are
  registered as ``policy_state=None``, and a later pure registrant
  upgrades such missing snapshots in place.
- **LRU + TTL dual eviction.**  A lazy min-heap orders nodes by last
  use.  Under pool pressure :meth:`reclaim` pops the heap once —
  evictable leaves drop in LRU order, and a parent that loses its last
  child is re-queued so a single scan can drain a whole idle chain (the
  predecessor re-sorted the entire entry table per freed leaf).
  Independently, entries idle longer than ``ttl`` clock ticks are
  expired during registration housekeeping, even without pressure.

Worked example — full-block hit, then a partial mid-block tail::

    >>> from repro.serve.paging import BlockPool
    >>> from repro.serve.prefix_cache import PrefixCache
    >>> pool = BlockPool(n_heads=1, head_dim=2, block_size=4, num_blocks=8)
    >>> cache = PrefixCache(block_size=4)
    >>> root = cache.root(("voting",))
    >>> n1 = cache.insert(root, (1, 2, 3, 4), [pool.allocate()], None, pool)
    >>> n2 = cache.insert(n1, (5, 6, 7, 8), [pool.allocate()], None, pool)
    >>> hit = cache.match([1, 2, 3, 4, 5, 6, 7, 8, 9], ("voting",))
    >>> (len(hit.nodes), hit.tail_length, hit.shared_length)
    (2, 0, 8)
    >>> hit = cache.match([1, 2, 3, 4, 5, 6, 99, 99], ("voting",))
    >>> (len(hit.nodes), hit.tail_length, hit.shared_length)  # mid-block
    (1, 2, 6)
    >>> round(cache.token_hit_rate, 3)  # token-weighted, not per-lookup
    0.824
    >>> cache.clear(pool)
    >>> cache.num_entries, cache.num_blocks_held
    (0, 0)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

__all__ = ["PrefixCache", "PrefixMatch", "PrefixNode"]


class PrefixNode:
    """One registered KV block in the trie.

    The edge label ``tokens`` is the block's ``block_size`` prompt
    tokens; ``depth`` is the token depth at the *end* of the label.
    ``layer_block_ids[l]`` is the pool block holding layer ``l``'s KV
    for those rows (the trie holds one refcount per block).
    ``policy_state`` is the eviction policy's exported per-layer slot
    state at this boundary, or ``None`` when no registrant could
    produce a pure snapshot (see the module docstring on taint).
    """

    __slots__ = (
        "tokens",
        "parent",
        "children",
        "layer_block_ids",
        "policy_state",
        "depth",
        "last_used",
        "detached",
    )

    def __init__(self, tokens, parent, layer_block_ids, policy_state):
        self.tokens = tokens
        self.parent = parent
        self.children = {}  # first token -> [PrefixNode] (content-compared)
        self.layer_block_ids = layer_block_ids
        self.policy_state = policy_state
        self.depth = (0 if parent is None else parent.depth) + len(tokens)
        self.last_used = 0
        self.detached = False

    @property
    def is_root(self):
        return self.parent is None

    def __repr__(self):
        return (
            f"PrefixNode(depth={self.depth}, tokens={self.tokens}, "
            f"children={sum(len(b) for b in self.children.values())})"
        )


@dataclass
class PrefixMatch:
    """Result of one :meth:`PrefixCache.match` lookup.

    ``nodes`` are the fully-adopted blocks (root-to-leaf order);
    ``tail_node``/``tail_length`` describe a partial mid-block hit
    (``None``/``0`` when the divergence is block-aligned, or under
    budgeted/full-block matching).  ``parent`` is where the adopter's
    own registrations continue (the deepest adopted node, or the policy
    root on a miss).  ``policy_state`` is the per-layer snapshot at
    ``policy_length`` tokens — the deepest pure snapshot within the
    coverage; coverage beyond it marks the adopter :attr:`tainted`.
    """

    nodes: list = field(default_factory=list)
    tail_node: PrefixNode | None = None
    tail_length: int = 0
    parent: PrefixNode | None = None
    shared_length: int = 0
    policy_state: list | None = None
    policy_length: int = 0

    @property
    def tainted(self):
        """True when the covered rows outrun the imported snapshot: the
        adopter skipped observing rows it cannot reconstruct, so its own
        later exports are no longer pure functions of the prefix."""
        return self.shared_length > self.policy_length


def _common_prefix(a, b):
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


class PrefixCache:
    """Radix-trie prefix cache over pool blocks (see module docstring).

    Parameters
    ----------
    block_size:
        Cache slots per block — the granularity of registration (edge
        labels) and of policy snapshots.
    max_blocks:
        LRU capacity bound, in pool blocks held by the trie; ``None``
        keeps every registered block resident.  Best-effort: blocks
        pinned by live adopters cannot be shed.
    ttl:
        Idle lifetime in lookup-clock ticks (each :meth:`match` /
        :meth:`insert` advances the clock by one).  Entries idle longer
        are expired during registration housekeeping and under reclaim
        pressure, even when ``max_blocks`` is not exceeded.  ``None``
        (default) disables expiry.
    match_mode:
        ``"token"`` (default) enables partial-tail hits for unbudgeted
        adopters; ``"block"`` restricts every match to full-block
        granularity — the predecessor cache's coverage, kept as the
        ablation baseline for the hit-rate comparison.
    """

    def __init__(self, block_size, max_blocks=None, ttl=None, match_mode="token"):
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        if max_blocks is not None and max_blocks <= 0:
            raise ValueError(f"max_blocks must be positive, got {max_blocks}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if match_mode not in ("token", "block"):
            raise ValueError(
                f"match_mode must be 'token' or 'block', got {match_mode!r}"
            )
        self.block_size = int(block_size)
        self.max_blocks = max_blocks
        self.ttl = ttl
        self.match_mode = match_mode
        self._roots = {}  # policy_key -> PrefixNode
        self._heap = []  # (last_used, tiebreak, node), lazy entries
        self._tiebreak = itertools.count()
        self._clock = 0
        self._num_entries = 0
        self._num_blocks_held = 0
        # ---- metrics ----
        self.lookups = 0
        self.hits = 0  # lookups with any coverage (legacy, per-lookup)
        self.tokens_seen = 0  # prompt tokens presented to match()
        self.tokens_hit = 0  # prompt tokens covered by adopted KV

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_entries(self):
        return self._num_entries

    @property
    def num_blocks_held(self):
        """Pool blocks referenced by the trie, over all layers."""
        return self._num_blocks_held

    @property
    def hit_rate(self):
        """Fraction of lookups with *any* coverage.  Coarse: a one-block
        hit on a thousand-token prompt counts the same as a full hit —
        prefer :attr:`token_hit_rate`."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def token_hit_rate(self):
        """Token-weighted hit rate: covered prompt tokens over prompt
        tokens presented (``prefix_tokens_hit / prompt_tokens_seen``)."""
        return self.tokens_hit / self.tokens_seen if self.tokens_seen else 0.0

    def root(self, policy_key):
        """The trie root for ``policy_key`` (one trie per eviction-policy
        state key: snapshots are only meaningful within one policy
        family/configuration, so differently-configured policies never
        share)."""
        node = self._roots.get(policy_key)
        if node is None:
            node = PrefixNode((), None, [], None)
            self._roots[policy_key] = node
        return node

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def match(self, prompt, policy_key, budgeted=False):
        """Longest-prefix lookup of ``prompt`` in the ``policy_key`` trie.

        At most ``len(prompt) - 1`` tokens are ever covered — the live
        prefill must compute at least the last row to produce next-token
        logits.  ``budgeted`` adopters additionally stop at the deepest
        matched node carrying a pure policy snapshot, at full-block
        granularity (the votes the shrink-to-budget eviction consults
        must be bit-exact).  Returns a :class:`PrefixMatch`; counters
        update whether or not anything matched.
        """
        tokens = tuple(int(t) for t in prompt)
        self._clock += 1
        self.lookups += 1
        self.tokens_seen += len(tokens)
        limit = len(tokens) - 1
        block = self.block_size

        node = self.root(policy_key)
        nodes = []
        pos = 0
        tail_node = None
        tail_length = 0
        while pos < limit:
            bucket = node.children.get(tokens[pos])
            if not bucket:
                break
            label = tokens[pos : pos + block]
            full = None
            if pos + block <= limit:
                for child in bucket:
                    if child.tokens == label:
                        full = child
                        break
            if full is not None:
                self._touch(full)
                nodes.append(full)
                node = full
                pos += block
                continue
            if self.match_mode == "token" and not budgeted:
                # Divergence (or the one-live-row cap) lands mid-block:
                # adopt the resident block with the longest common run.
                window = tokens[pos : min(pos + block, limit)]
                best, best_length = None, 0
                for child in bucket:
                    common = _common_prefix(child.tokens, window)
                    if common > best_length:
                        best, best_length = child, common
                if best is not None:
                    self._touch(best)
                    tail_node, tail_length = best, best_length
            break

        if budgeted:
            # Coverage must end at a pure snapshot: intermediate nodes
            # without one are fine (a deeper snapshot is cumulative over
            # all earlier rows), but the chain is cut after the deepest
            # snapshot-bearing node.
            tail_node, tail_length = None, 0
            while nodes and nodes[-1].policy_state is None:
                nodes.pop()

        snapshot, snapshot_depth = None, 0
        for matched in reversed(nodes):
            if matched.policy_state is not None:
                snapshot = matched.policy_state
                snapshot_depth = matched.depth
                break

        shared = (nodes[-1].depth if nodes else 0) + tail_length
        if shared:
            self.hits += 1
            self.tokens_hit += shared
        return PrefixMatch(
            nodes=nodes,
            tail_node=tail_node,
            tail_length=tail_length,
            parent=nodes[-1] if nodes else self.root(policy_key),
            shared_length=shared,
            policy_state=snapshot,
            policy_length=snapshot_depth,
        )

    def probe(self, prompt, policy_key, budgeted=False):
        """Read-only longest-prefix lookup: the token coverage
        :meth:`match` *would* report for ``prompt``, without touching
        the lookup clock, the hit counters, or LRU recency.

        A fleet router probes every replica's trie before placing a
        request; only the chosen replica's eventual :meth:`match` may
        count as a lookup or refresh recency, otherwise the probes
        themselves would perturb eviction order and metrics.  Returns
        the would-be ``shared_length`` in tokens (0 on a miss).
        """
        tokens = tuple(int(t) for t in prompt)
        limit = len(tokens) - 1
        block = self.block_size

        node = self._roots.get(policy_key)
        if node is None:
            return 0
        depth = 0
        pos = 0
        tail_length = 0
        trail = []  # snapshot-bearing flags for the budgeted cut
        while pos < limit:
            bucket = node.children.get(tokens[pos])
            if not bucket:
                break
            label = tokens[pos : pos + block]
            full = None
            if pos + block <= limit:
                for child in bucket:
                    if child.tokens == label:
                        full = child
                        break
            if full is not None:
                trail.append(full)
                node = full
                depth = full.depth
                pos += block
                continue
            if self.match_mode == "token" and not budgeted:
                window = tokens[pos : min(pos + block, limit)]
                for child in bucket:
                    common = _common_prefix(child.tokens, window)
                    if common > tail_length:
                        tail_length = common
            break

        if budgeted:
            # Mirror match(): budgeted coverage ends at the deepest
            # pure-snapshot node, at full-block granularity.
            tail_length = 0
            while trail and trail[-1].policy_state is None:
                trail.pop()
            depth = trail[-1].depth if trail else 0
        return depth + tail_length

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def insert(self, parent, tokens, layer_block_ids, policy_state, pool):
        """Register one freshly prefilled full block under ``parent``.

        ``tokens`` is the block's ``block_size`` prompt tokens,
        ``layer_block_ids`` the per-layer pool blocks holding its KV
        (the trie takes one refcount per block so the entry outlives the
        registering request), ``policy_state`` the per-layer snapshot at
        the block boundary — or ``None`` when the registrant is tainted.
        If a node with identical content already exists, the existing
        node is returned: no references are taken, and a missing
        snapshot is upgraded in place from a pure registrant.  Returns
        the node to use as the next block's parent.
        """
        if parent.detached:
            raise RuntimeError("insert under an evicted prefix node")
        tokens = tuple(int(t) for t in tokens)
        if len(tokens) != self.block_size:
            raise ValueError(
                f"edge label must be one full block "
                f"({self.block_size} tokens), got {len(tokens)}"
            )
        if policy_state is not None and any(s is None for s in policy_state):
            policy_state = None
        self._clock += 1

        bucket = parent.children.setdefault(tokens[0], [])
        for existing in bucket:
            if existing.tokens == tokens:
                # Content-identical block already resident: never chain
                # under mismatched content (the hash-collision leak of
                # the chained cache), never double-retain.
                self._touch(existing)
                if existing.policy_state is None and policy_state is not None:
                    existing.policy_state = policy_state
                return existing

        node = PrefixNode(tokens, parent, list(layer_block_ids), policy_state)
        for block_id in node.layer_block_ids:
            pool.retain(block_id)
        bucket.append(node)
        self._num_entries += 1
        self._num_blocks_held += len(node.layer_block_ids)
        self._touch(node)

        # Registration housekeeping: expire idle entries, then hold the
        # LRU capacity bound (best-effort — pinned blocks cannot shed).
        if self.ttl is not None:
            self.expire(pool)
        if self.max_blocks is not None and self._num_blocks_held > self.max_blocks:
            self._sweep(
                pool, blocks_needed=self._num_blocks_held - self.max_blocks
            )
        return node

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def reclaim(self, pool, blocks_needed):
        """Release at least ``blocks_needed`` idle blocks if possible
        (the pool's pressure callback).  One heap scan: evictable leaves
        drop in LRU order, a parent orphaned by its last child's drop is
        re-queued into the same scan, pinned entries are deferred.
        Returns the number of pool blocks actually freed."""
        if blocks_needed <= 0:
            return 0
        return self._sweep(pool, blocks_needed=blocks_needed)

    def expire(self, pool):
        """Drop every evictable entry idle for more than ``ttl`` clock
        ticks (no-op when ``ttl`` is None).  Returns blocks freed."""
        if self.ttl is None:
            return 0
        return self._sweep(pool, older_than=self._clock - self.ttl)

    def _sweep(self, pool, blocks_needed=None, older_than=None):
        """One pass over the LRU heap.  Stops once ``blocks_needed``
        blocks are freed (when given) and/or when the heap top is newer
        than ``older_than`` (when given); entries whose blocks live
        adopters still pin are deferred and re-queued afterwards."""
        freed = 0
        deferred = []
        heap = self._heap
        while heap:
            if blocks_needed is not None and freed >= blocks_needed:
                break
            timestamp, tiebreak, node = heap[0]
            if older_than is not None and timestamp > older_than:
                break
            heapq.heappop(heap)
            if node.detached or timestamp != node.last_used:
                continue  # stale: a fresher entry is (or was) in the heap
            if node.children:
                # Unevictable while it has children; _evict_node
                # re-queues it the moment the last child drops.
                continue
            if any(pool.refcount(b) > 1 for b in node.layer_block_ids):
                deferred.append((timestamp, tiebreak, node))
                continue
            freed += len(node.layer_block_ids)
            self._evict_node(node, pool)
        for item in deferred:
            heapq.heappush(heap, item)
        return freed

    def _evict_node(self, node, pool):
        """Drop one childless non-root node: release its blocks, unlink
        it, and re-queue the parent if this orphaned it."""
        assert not node.children and not node.is_root
        for block_id in node.layer_block_ids:
            pool.release(block_id)
        parent = node.parent
        bucket = parent.children[node.tokens[0]]
        bucket.remove(node)
        if not bucket:
            del parent.children[node.tokens[0]]
        node.detached = True
        self._num_entries -= 1
        self._num_blocks_held -= len(node.layer_block_ids)
        if not parent.is_root and not parent.children:
            # Parent re-queue: the freed leaf may expose a whole idle
            # chain — push the parent at its own (older) timestamp so
            # the *same* reclaim scan keeps draining it.
            heapq.heappush(
                self._heap, (parent.last_used, next(self._tiebreak), parent)
            )

    def _touch(self, node):
        node.last_used = self._clock
        heapq.heappush(self._heap, (node.last_used, next(self._tiebreak), node))

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def clear(self, pool):
        """Release every held block and drop all entries (end-of-trace
        teardown; metrics counters are kept)."""
        stack = list(self._roots.values())
        while stack:
            node = stack.pop()
            for bucket in node.children.values():
                stack.extend(bucket)
            node.children = {}
            if not node.is_root:
                node.detached = True
                for block_id in node.layer_block_ids:
                    pool.release(block_id)
        self._roots = {}
        self._heap = []
        self._num_entries = 0
        self._num_blocks_held = 0

    def __repr__(self):
        return (
            f"PrefixCache(block_size={self.block_size}, "
            f"entries={self._num_entries}, blocks={self._num_blocks_held}, "
            f"token_hit_rate={self.token_hit_rate:.3f})"
        )

"""Per-round hardware trace of a scheduler run.

The :class:`~repro.serve.scheduler.Scheduler` records, for every round
it executes, exactly the quantities the accelerator cycle model needs to
price that round: which sequences prefilled (and how many prompt rows
they actually computed, after prefix-cache hits), and which sequences
took a decode step (and the cache length each one's attention ran
against).  The :class:`~repro.serve.cosim.ServingCoSimulator` replays
this trace through :class:`repro.accel.simulator.AcceleratorSimulator`
without re-running the model.

The trace is *honest*: it records work the scheduler performed.  The one
engine/scheduler divergence — the dead decode step the solo
:class:`~repro.core.engine.GenerationEngine` spends on the final token of
a length-capped request, which the scheduler's loop skips — is recorded
separately in ``dead_steps`` so the co-simulator can either price it
(for cycle-exact comparison against the solo co-simulator) or ignore it
(for pure serving throughput).  One caveat under speculative decoding: a
request whose length cap lands *inside* a verify window records no dead
step — the verify pass already computed (and the co-simulator already
prices) the rows past the final token, so a separate dead step would
double-charge that work.

Speculative decoding rounds are recorded as :class:`VerifyEvent` rows —
one per speculating sequence per round — carrying both the draft model's
propose work and the target's multi-token verify pass, with the
accept/reject outcome the co-simulator needs to relate modeled speedup
to measured accept rate.

Worked example — a one-round trace priced by hand::

    >>> from repro.serve.trace import DecodeEvent, PrefillEvent, RoundTrace
    >>> round0 = RoundTrace(round_index=0)
    >>> round0.prefills.append(
    ...     PrefillEvent("r0", prompt_length=16, computed_tokens=12,
    ...                  prefix_length=4, budgeted=True)
    ... )
    >>> round0.decodes.append(
    ...     DecodeEvent("r1", attention_length=33, budgeted=False)
    ... )
    >>> round0.num_prefills, round0.num_decodes, round0.computed_prefill_tokens
    (1, 1, 12)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DecodeEvent",
    "ForkEvent",
    "PrefillEvent",
    "RoundTrace",
    "SwapEvent",
    "VerifyEvent",
    "SWAP_OUT",
    "SWAP_IN",
]

#: :attr:`SwapEvent.direction` values.
SWAP_OUT = "out"
SWAP_IN = "in"


@dataclass
class PrefillEvent:
    """One admission's prefill work within a round.

    Attributes
    ----------
    request_id:
        The admitted request.
    prompt_length:
        Full prompt length of the request (NOT the rows of this event —
        under chunked prefill one prompt spans several events).
    computed_tokens:
        Prompt rows actually computed this round (this chunk's rows).
    prefix_length:
        Context already resident when this event's rows ran: prompt rows
        adopted from the prefix cache plus rows computed by earlier
        chunks.  The co-simulator prices the event as a continuation
        prefill of ``computed_tokens`` rows over ``prefix_length``
        resident entries.
    budgeted:
        Whether a KV budget is active for this sequence.  Recorded for
        trace completeness (e.g. future energy accounting); the
        co-simulator charges vote HBM traffic per *decode* step only,
        matching the solo simulator's accounting.
    final:
        Whether this event completes the prompt — only then does the
        round's sampling pass produce the request's first token.  Always
        true for whole-prompt prefill; under chunked prefill only the
        last chunk is final.  The co-simulator anchors TTFT on it.
    """

    request_id: object
    prompt_length: int
    computed_tokens: int
    prefix_length: int = 0
    budgeted: bool = False
    final: bool = True


@dataclass
class DecodeEvent:
    """One sequence's decode step within a round.

    Attributes
    ----------
    request_id:
        The decoding request.
    attention_length:
        Entries the step's attention ran against: the cache length
        before the step plus the appended token (append-then-evict).
    budgeted:
        Whether a KV budget is active for this sequence (prices the vote
        read/write HBM traffic, paper Sec. V).
    dead:
        True for the engine-compatibility dead step of a length-capped
        request (see module docstring); recorded under
        ``RoundTrace.dead_steps``, never under ``decodes``.
    """

    request_id: object
    attention_length: int
    budgeted: bool = False
    dead: bool = False


@dataclass
class VerifyEvent:
    """One sequence's speculative-decoding round within a scheduler round.

    Covers both halves of the round: the draft model's propose work and
    the target model's multi-token verify pass.  The co-simulator prices
    the verify pass on the *target* simulator as ``rows`` extra entries
    in the round's batched decode pass at their exact causal widths
    (``prior + 1 .. prior + rows``): linear weights are fetched once for
    the whole round and amortized over every row — the speculative win —
    while attention stays per-row, exactly how
    :meth:`repro.models.inference.CachedTransformer.verify` computes.
    Draft work is priced on a second simulator built from the draft
    model's shapes.  Rejected rows are wasted work: they are priced in
    full but contribute no tokens.

    Attributes
    ----------
    request_id:
        The speculating request.
    rows:
        Target verify rows computed: the pending committed token plus
        every draft proposal (``proposed + 1``).
    prior:
        Cache entries resident before the verify pass (its attention
        prefix).
    proposed:
        Draft tokens proposed this round (``k_eff``).
    accepted:
        Draft tokens the target accepted (greedy exact-match prefix).
    tokens:
        Tokens this event's compute is credited with: the accepted
        tokens appended this round, plus one for the pending bonus
        logits the next round's sampling pass consumes (0 extra if the
        sequence finished mid-window).  Summed over a request's rounds
        this telescopes to exactly its generated-token count, keeping
        :attr:`RoundTrace.tokens` consistent with the non-speculative
        accounting.
    budgeted:
        Whether a KV budget is active for this sequence (prices the vote
        read/write HBM traffic per accepted row, as decode steps do).
    draft_prefill_rows:
        Catch-up rows the draft model prefilled this round (tokens
        committed since its cache last ran ahead; at least 1 — the
        pending token).
    draft_prefill_prior:
        Draft-cache entries resident before the catch-up prefill.
    draft_decode_lengths:
        Post-append draft-cache attention lengths of the ``proposed - 1``
        single-token draft steps taken after the catch-up prefill.
    """

    request_id: object
    rows: int
    prior: int
    proposed: int
    accepted: int
    tokens: int
    budgeted: bool = False
    draft_prefill_rows: int = 0
    draft_prefill_prior: int = 0
    draft_decode_lengths: tuple = ()


@dataclass
class SwapEvent:
    """One sequence's KV transfer between HBM and the host pool.

    Recorded when the scheduler preempts with ``preempt="swap"`` (swap
    out) and when a swapped sequence is re-admitted (swap in).  The
    co-simulator prices each event as an HBM<->host transfer over the
    hardware configuration's host link
    (:attr:`repro.accel.config.HardwareConfig.host_link_gb_s`).

    Attributes
    ----------
    request_id:
        The preempted / resumed request.
    direction:
        ``"out"`` (HBM -> host) or ``"in"`` (host -> HBM).
    kv_slots:
        KV slots moved *per layer* (the same per-layer convention as
        :attr:`DecodeEvent.attention_length`); the co-simulator scales by
        the priced model's ``n_layers`` and ``d_model`` to get bytes.
    blocks:
        Pool blocks the sequence released (out) or allocated (in), over
        all layers; 0 when served dense (dense swap moves the same bytes
        but holds no pool blocks).
    """

    request_id: object
    direction: str
    kv_slots: int
    blocks: int = 0


@dataclass
class ForkEvent:
    """One sequence forked into a branch within a round.

    Recorded when a fork family spawns a branch — at prefill completion
    for parallel sampling (``Request(n=)``), or mid-decode when a beam
    branch keeps several surviving successors (``Request(beam_width=)``).
    A fork produces no tokens; its hardware cost is the KV state the
    branch had to *duplicate*.  In paged mode that is zero slots — the
    branch adopts every parent block copy-on-write and pays only block-
    table metadata — while a dense fork copies the whole slab.  The
    co-simulator prices ``copied_slots`` as an HBM read+write pass, which
    is exactly the traffic paging avoids (the shared-prompt-blocks win).

    Attributes
    ----------
    request_id:
        The parent sequence that forked.
    child_id:
        The new branch's request id.
    kv_slots:
        KV slots resident in the parent *per layer* at fork time (the
        same per-layer convention as :attr:`SwapEvent.kv_slots`).
    blocks:
        Pool blocks the branch adopted copy-on-write over all layers
        (0 when served dense).
    copied_slots:
        KV slots per layer the fork physically duplicated: ``kv_slots``
        for a dense fork, 0 for a paged CoW fork.
    """

    request_id: object
    child_id: object
    kv_slots: int
    blocks: int = 0
    copied_slots: int = 0


@dataclass
class RoundTrace:
    """Everything the hardware executed in one scheduler round."""

    round_index: int
    #: Admissions prefilled this round.
    prefills: list = field(default_factory=list)
    #: Batched decode steps taken this round (one per active sequence).
    decodes: list = field(default_factory=list)
    #: Dead steps of requests that retired by ``max_new_tokens`` this
    #: round — work the solo engine performs but the scheduler skips.
    #: Every event here carries ``dead=True``; the co-simulator validates
    #: the flag instead of inferring deadness from list membership.
    dead_steps: list = field(default_factory=list)
    #: Speculative propose/verify rounds taken this round (one per
    #: speculating sequence; ``draft_model`` mode only).
    verifies: list = field(default_factory=list)
    #: KV swap transfers performed this round (``preempt="swap"`` only).
    swaps: list = field(default_factory=list)
    #: Branch forks performed this round (``Request(n=)`` /
    #: ``Request(beam_width=)`` families only).  Forks yield no tokens;
    #: see :class:`ForkEvent` for what the co-simulator prices.
    forks: list = field(default_factory=list)

    @property
    def num_prefills(self):
        return len(self.prefills)

    @property
    def num_decodes(self):
        return len(self.decodes)

    @property
    def num_verifies(self):
        return len(self.verifies)

    @property
    def num_swaps(self):
        return len(self.swaps)

    @property
    def num_forks(self):
        return len(self.forks)

    @property
    def swapped_kv_slots(self):
        """Per-layer KV slots moved over the host link this round."""
        return sum(event.kv_slots for event in self.swaps)

    @property
    def forked_copied_slots(self):
        """Per-layer KV slots physically duplicated by this round's
        forks (0 for paged CoW forks — the whole point of sharing)."""
        return sum(event.copied_slots for event in self.forks)

    @property
    def computed_prefill_tokens(self):
        """Prompt rows computed this round (prefix hits excluded)."""
        return sum(event.computed_tokens for event in self.prefills)

    @property
    def tokens(self):
        """Tokens attributable to this round's compute: every *final*
        prefill and every live (``dead=False``) decode step produces
        logits that get sampled, and every verify pass is credited its
        accepted-plus-bonus token count.  Non-final chunked-prefill
        events and dead steps do work but yield no token."""
        return (
            sum(1 for event in self.prefills if event.final)
            + sum(1 for event in self.decodes if not event.dead)
            + sum(event.tokens for event in self.verifies)
        )

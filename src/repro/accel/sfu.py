"""Special Function Unit: streaming softmax and layernorm (paper Fig. 6).

The paper's observation is that both softmax and layernorm decompose into
a *reduction* stage (max & exp-sum, or mean & variance) and a
*normalization* stage (elementwise subtract/exp/divide).  Element-serial
scheduling runs the reduction on the serial **output** of an
inner-product GEMV and the normalization on the serial **input** of an
outer-product GEMV, so one SFU (O(1) cost) suffices and the PE array
never idles.

This module provides the functional units (bit-true against
:mod:`repro.numerics.online`) and the latency model for both scheduling
disciplines:

- *conventional* (pipeline stage): the PE array stalls for the exposed
  normalization pass — ``ceil(l / n_exp)`` cycles of exp/divide
  throughput plus a fixed pipeline/FIFO overhead;
- *element-serial*: the stall collapses to a small drain (the FIFO tile
  boundary of Fig. 6c).
"""

from __future__ import annotations

import math

import numpy as np

from repro.numerics.fp16 import fp16_quantize
from repro.numerics.online import OnlineSoftmaxNormalizer, WelfordAccumulator

__all__ = [
    "SoftmaxUnit",
    "LayerNormUnit",
    "softmax_stall_cycles",
    "layernorm_stall_cycles",
    "OpCounters",
]


class OpCounters:
    """Counts of expensive SFU operations, for the energy model."""

    def __init__(self):
        self.exp_ops = 0
        self.div_ops = 0
        self.sqrt_ops = 0

    def merge(self, other):
        self.exp_ops += other.exp_ops
        self.div_ops += other.div_ops
        self.sqrt_ops += other.sqrt_ops


def softmax_stall_cycles(length, hw, element_serial):
    """PE-array stall cycles caused by one softmax over ``length`` elements.

    Conventional scheduling exposes the normalization pass (exp + divide,
    throughput-limited by ``n_exp_units``) plus a fixed stage overhead;
    element-serial scheduling hides everything except a small drain.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if element_serial:
        return hw.element_serial_drain
    return math.ceil(length / hw.n_exp_units) + hw.softmax_stage_overhead


def layernorm_stall_cycles(dim, hw, element_serial):
    """PE-array stall cycles for one layernorm/RMSnorm over ``dim`` elements."""
    if dim <= 0:
        raise ValueError("dim must be positive")
    if element_serial:
        return hw.element_serial_drain
    # Reduction pass (multiply-accumulate for sum of squares) then a
    # divide/sqrt-normalized elementwise pass.
    reduction = math.ceil(dim / hw.n_sfu_mult)
    normalize = math.ceil(dim / hw.n_div_units)
    return reduction + normalize + hw.softmax_stage_overhead


class SoftmaxUnit:
    """Functional streaming softmax (reduction + normalization stages).

    ``quantize=True`` rounds the FIFO contents and outputs to FP16 like
    the hardware datapath; reduction-internal state (max, exp-sum) is
    kept wide, as accumulators typically are.
    """

    def __init__(self, quantize=True):
        self.quantize = bool(quantize)
        self.counters = OpCounters()

    def _q(self, x):
        return fp16_quantize(x) if self.quantize else x

    def reduce(self, scores):
        """Reduction stage: consume the serial stream, return (max, exp_sum)."""
        normalizer = OnlineSoftmaxNormalizer()
        for value in np.asarray(scores, dtype=np.float64).ravel():
            normalizer.update(self._q(value))
            self.counters.exp_ops += 1
        return normalizer

    def normalize(self, scores, normalizer):
        """Normalization stage: emit softmax outputs element-serially."""
        scores = np.asarray(scores, dtype=np.float64)
        out = np.empty_like(scores, dtype=np.float64)
        flat = scores.ravel()
        result = out.ravel()
        for i, value in enumerate(flat):
            exp_val = math.exp(self._q(value) - normalizer.max)
            self.counters.exp_ops += 1
            self.counters.div_ops += 1
            result[i] = self._q(exp_val / normalizer.exp_sum)
        return out

    def __call__(self, scores):
        """Full streaming softmax of a vector."""
        normalizer = self.reduce(scores)
        return self.normalize(scores, normalizer)


class LayerNormUnit:
    """Functional streaming layernorm (reduction + normalization stages)."""

    def __init__(self, eps=1e-5, quantize=True):
        self.eps = float(eps)
        self.quantize = bool(quantize)
        self.counters = OpCounters()

    def _q(self, x):
        return fp16_quantize(x) if self.quantize else x

    def reduce(self, values):
        acc = WelfordAccumulator()
        for value in np.asarray(values, dtype=np.float64).ravel():
            acc.update(self._q(value))
        self.counters.sqrt_ops += 1
        return acc

    def normalize(self, values, acc):
        values = np.asarray(values, dtype=np.float64)
        scale = 1.0 / math.sqrt(acc.variance + self.eps)
        out = np.empty_like(values)
        flat, result = values.ravel(), out.ravel()
        for i, value in enumerate(flat):
            self.counters.div_ops += 1
            result[i] = self._q((self._q(value) - acc.mean) * scale)
        return out

    def __call__(self, values):
        acc = self.reduce(values)
        return self.normalize(values, acc)

"""Technology-node scaling (DeepScaleTool substitute).

Table II compares accelerators built in different nodes (Sanger 55 nm,
SpAtten 40 nm, VEDA 28 nm); the paper notes VEDA's advantage "remains
true after technology scaling [13]" (DeepScaleTool).  This module
provides published-style scaling factors between planar CMOS nodes for
logic area and energy, normalized to 28 nm.

Factors follow the DeepScaleTool methodology (Sarangi & Baas, ISCAS
2021): area scales roughly with the square of the drawn feature size
(with a sub-quadratic correction at older nodes), and energy per
operation scales roughly linearly with node (capacitance dominates once
voltage scaling stalls below ~1 V).
"""

from __future__ import annotations

__all__ = ["area_factor", "energy_factor", "scale_area", "scale_energy_efficiency", "SUPPORTED_NODES"]

#: Relative logic density and energy per op, normalized to 28 nm = 1.0.
#: area_rel: how many times LARGER the same logic is at that node.
#: energy_rel: how many times MORE energy one operation costs.
_NODE_TABLE = {
    65: {"area_rel": 5.10, "energy_rel": 2.75},
    55: {"area_rel": 3.86, "energy_rel": 2.20},
    40: {"area_rel": 2.04, "energy_rel": 1.60},
    28: {"area_rel": 1.00, "energy_rel": 1.00},
    16: {"area_rel": 0.42, "energy_rel": 0.62},
}

SUPPORTED_NODES = sorted(_NODE_TABLE)


def _lookup(node):
    if node not in _NODE_TABLE:
        raise KeyError(
            f"unsupported node {node} nm; supported: {SUPPORTED_NODES}"
        )
    return _NODE_TABLE[node]


def area_factor(from_node, to_node):
    """Multiplier converting a logic area from ``from_node`` to ``to_node``."""
    return _lookup(to_node)["area_rel"] / _lookup(from_node)["area_rel"]


def energy_factor(from_node, to_node):
    """Multiplier converting energy/op from ``from_node`` to ``to_node``."""
    return _lookup(to_node)["energy_rel"] / _lookup(from_node)["energy_rel"]


def scale_area(area_mm2, from_node, to_node):
    """Scale a die area between nodes."""
    if area_mm2 < 0:
        raise ValueError("area must be non-negative")
    return area_mm2 * area_factor(from_node, to_node)


def scale_energy_efficiency(gops_per_watt, from_node, to_node):
    """Scale an energy-efficiency figure between nodes.

    Efficiency is inverse energy, so it *improves* moving to a smaller
    node.
    """
    if gops_per_watt < 0:
        raise ValueError("efficiency must be non-negative")
    return gops_per_watt / energy_factor(from_node, to_node)
